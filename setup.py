"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (pip then uses the ``setup.py develop`` code path
instead of PEP 517 editable wheels).  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro-dc = repro.cli:main"]},
)
