"""Unit tests for the per-tuple evidence index bookkeeping."""

from repro.evidence import TupleEvidenceIndex


class TestTupleEvidenceIndex:
    def test_record_and_lookup(self):
        index = TupleEvidenceIndex()
        index.record_contexts(0, {0b101: 0b0110, 0b011: 0b1000})
        assert index.owned_evidence(0) == {0b101: 2, 0b011: 1}
        assert index.partners(0) == 0b1110
        assert 0 in index and 5 not in index
        assert len(index) == 1

    def test_record_accumulates(self):
        index = TupleEvidenceIndex()
        index.record_contexts(2, {0b1: 0b0001})
        index.record_contexts(2, {0b1: 0b1000})
        assert index.owned_evidence(2) == {0b1: 2}
        assert index.partners(2) == 0b1001

    def test_empty_context_bits_skipped(self):
        index = TupleEvidenceIndex()
        index.record_contexts(0, {0b1: 0})
        assert index.owned_evidence(0) == {}
        assert index.partners(0) == 0

    def test_unknown_tuple_lookup(self):
        index = TupleEvidenceIndex()
        assert index.owned_evidence(9) == {}
        assert index.partners(9) == 0

    def test_drop_tuple(self):
        index = TupleEvidenceIndex()
        index.record_contexts(0, {0b1: 0b0110})
        index.record_contexts(4, {0b1: 0b0010})
        index.drop_tuple(0)
        assert 0 not in index
        assert index.partners(0) == 0
        assert 4 in index
        index.drop_tuple(0)  # idempotent
