"""Hypothesis property tests over the whole stack.

These are the deep invariants of DESIGN.md §7: pipeline-vs-oracle evidence
equality, symmetry involution, multiplicity conservation, dynamic-equals-
static discovery, and exact insert/delete reversibility.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, relation_from_rows
from repro.enumeration import invert_evidence
from repro.evidence import build_evidence_state, naive_evidence_set
from repro.predicates import build_predicate_space

# Tight domains so ties, FDs, and interesting DCs all occur.
row_strategy = st.tuples(
    st.integers(0, 3),
    st.sampled_from("ab"),
    st.integers(0, 2),
)
rows_strategy = st.lists(row_strategy, min_size=2, max_size=14)


def _relation(rows):
    return relation_from_rows(["A", "B", "C"], rows)


@given(rows=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_pipeline_evidence_equals_oracle(rows):
    relation = _relation(rows)
    space = build_predicate_space(relation)
    state = build_evidence_state(relation, space, maintain_tuple_index=True)
    assert state.evidence == naive_evidence_set(relation, space)
    assert state.evidence.total_pairs() == len(rows) * (len(rows) - 1)


@given(rows=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_symmetrize_is_involution_on_real_evidence(rows):
    relation = _relation(rows)
    space = build_predicate_space(relation)
    state = build_evidence_state(relation, space)
    for mask in state.evidence:
        assert space.symmetrize(space.symmetrize(mask)) == mask
        assert space.satisfiable(mask)


@given(rows=rows_strategy)
@settings(max_examples=25, deadline=None)
def test_multiplicity_symmetry(rows):
    """Ordered pairs come in swapped twins: count(e) == count(sym(e))."""
    relation = _relation(rows)
    space = build_predicate_space(relation)
    state = build_evidence_state(relation, space)
    for mask, count in state.evidence.counts.items():
        assert state.evidence.count(space.symmetrize(mask)) == count


@given(rows=rows_strategy)
@settings(max_examples=20, deadline=None)
def test_discovered_dcs_hold_and_are_minimal(rows):
    relation = _relation(rows)
    space = build_predicate_space(relation)
    evidence = list(naive_evidence_set(relation, space))
    masks = invert_evidence(space, evidence)
    for mask in masks:
        assert not any(mask & e == mask for e in evidence), "DC violated"
    for i, mask in enumerate(masks):
        for other in masks[i + 1 :]:
            assert mask & other != mask and mask & other != other, "not antichain"


@given(
    initial=rows_strategy,
    batch=st.lists(row_strategy, min_size=1, max_size=5),
    delete_seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_dynamic_discovery_equals_static(initial, batch, delete_seed):
    relation = _relation(initial)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    discoverer.insert(batch)
    alive = list(discoverer.relation.rids())
    doomed = random.Random(delete_seed).sample(alive, min(3, len(alive) - 1))
    discoverer.delete(doomed)
    static = invert_evidence(
        discoverer.space,
        list(naive_evidence_set(discoverer.relation, discoverer.space)),
    )
    assert discoverer.dc_masks == sorted(m for m in static if m)


@given(initial=rows_strategy, batch=st.lists(row_strategy, min_size=1, max_size=5))
@settings(max_examples=20, deadline=None)
def test_insert_then_delete_restores_state_exactly(initial, batch):
    relation = _relation(initial)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    evidence_before = discoverer.evidence_set.copy()
    dcs_before = discoverer.dc_masks
    result = discoverer.insert(batch)
    discoverer.delete(result.rids)
    assert discoverer.evidence_set == evidence_before
    assert discoverer.dc_masks == dcs_before
