"""Tests for the worker-pool evidence execution layer.

The contract under test: any worker count produces *byte-identical*
results — same serialized state document, same evidence multiset, same Σ —
because the shard kernels replicate the serial algorithms exactly and the
shard merge is a deterministic sorted-key fold.
"""

import json

import pytest

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_dict
from repro.evidence import parallel
from repro.evidence.builder import build_evidence_state
from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.parallel import (
    ShardResult,
    merge_shard_counts,
    resolve_workers,
    should_parallelize,
    stripe,
)
from repro.relational.loader import relation_from_rows
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import pick_delete_rids, split_for_insert

DATASET = "Tax"
WORKER_COUNTS = (1, 2, 4)


# -- helpers ------------------------------------------------------------------


def _workload(seed=1, rows=80):
    raw = DATASETS[DATASET].rows(rows, seed=0)
    return split_for_insert(raw, ratio=0.25, retain=0.7, seed=seed)


def _run_cycle(workers, **discoverer_kwargs):
    """fit → insert → delete with the given worker count; return the
    discoverer and its canonical serialized state."""
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=workers, **discoverer_kwargs)
    discoverer.fit()
    discoverer.insert(list(workload.delta_rows))
    discoverer.delete(pick_delete_rids(discoverer.relation, 0.15, seed=3))
    return discoverer, json.dumps(state_to_dict(discoverer))


# -- the determinism guarantee ------------------------------------------------


def test_worker_counts_produce_byte_identical_states():
    """Same dataset + seed, workers ∈ {1, 2, 4}: identical serialized
    evidence sets and identical Σ (the deterministic-merge guard)."""
    discoverers, payloads = zip(
        *(_run_cycle(workers) for workers in WORKER_COUNTS)
    )
    assert payloads[0] == payloads[1] == payloads[2]
    reference = discoverers[0]
    for other in discoverers[1:]:
        assert other.evidence_set.counts == reference.evidence_set.counts
        assert set(other.dc_masks) == set(reference.dc_masks)


def test_worker_counts_identical_for_base_and_recompute_strategies():
    payloads = [
        _run_cycle(
            workers, infer_within_delta=False, delete_strategy="recompute"
        )[1]
        for workers in WORKER_COUNTS
    ]
    assert payloads[0] == payloads[1] == payloads[2]


def test_parallel_static_build_matches_serial():
    relation = relation_from_rows(
        DATASETS[DATASET].header, DATASETS[DATASET].rows(60, seed=0)
    )
    serial = DCDiscoverer(relation)
    serial.fit()
    parallel_state = build_evidence_state(
        relation, serial.space, maintain_tuple_index=True, workers=3
    )
    assert parallel_state.evidence.counts == serial.evidence_set.counts
    assert (
        parallel_state.tuple_index.owned
        == serial.engine_state.tuple_index.owned
    )
    assert (
        parallel_state.tuple_index.partners_of
        == serial.engine_state.tuple_index.partners_of
    )


def test_workers_zero_means_cpu_count():
    _, payload = _run_cycle(0)
    assert payload == _run_cycle(1)[1]


# -- knob resolution and sharding ---------------------------------------------


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1
    assert resolve_workers(-2) >= 1


def test_stripe_covers_all_items_deterministically():
    items = list(range(10))
    shards = stripe(items, 3)
    assert len(shards) == 3
    assert sorted(value for shard in shards for value in shard) == items
    assert shards == stripe(items, 3)
    assert shards[0] == [0, 3, 6, 9]
    # Never more shards than items; degenerate inputs stay valid.
    assert stripe([7], 4) == [[7]]
    assert stripe([], 4) == [[]]


def test_should_parallelize_gates():
    assert not should_parallelize(1, 100)
    assert not should_parallelize(4, 1)
    if parallel.fork_available():
        assert should_parallelize(4, 100)


def test_fork_unavailable_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
    # ``auto`` re-resolves to the spawn pool — still parallel.
    assert not parallel.fork_available()
    assert should_parallelize(4, 100)
    # An explicitly requested fork pool cannot run: loud serial fallback
    # (the parallel.fallback counter is asserted in test_executors.py).
    assert not should_parallelize(4, 100, executor="fork")
    _, payload = _run_cycle(4, executor="fork")  # runs serially, same result
    assert payload == _run_cycle(1)[1]


# -- merge --------------------------------------------------------------------


def test_merge_shard_counts_is_sorted_and_signed():
    shards = [
        ShardResult(counts={5: 2, 3: 1}),
        ShardResult(counts={3: -1, 1: 4, 7: 0}),
    ]
    merged = merge_shard_counts(shards)
    assert merged.counts == {1: 4, 5: 2}
    assert list(merged.counts) == [1, 5]  # ascending-mask insertion order


def test_merge_shard_counts_rejects_negative_totals():
    with pytest.raises(ValueError, match="negative merged multiplicity"):
        merge_shard_counts([ShardResult(counts={3: -2}), ShardResult(counts={3: 1})])


def test_merge_empty_shards():
    assert merge_shard_counts([]) == EvidenceSet()


# -- observability ------------------------------------------------------------


def test_parallel_run_reports_shard_metrics():
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=2)
    result = discoverer.fit()
    assert result.report.metric("parallel.shards") >= 2
    assert result.report.metric("parallel.batches") == 1
    assert result.report.metric("evidence.pairs_compared") > 0
    histograms = discoverer.instrumentation.metrics.histograms
    assert "parallel.shard_seconds" in histograms
    insert_report = discoverer.insert(list(workload.delta_rows)).report
    assert insert_report.metric("parallel.batches") == 1
