"""Tests for state serialization: the 'intermediates' of Figure 2."""

import json
import random

import pytest

from repro import (
    DCDiscoverer,
    StateFormatError,
    StateVersionError,
    load_state,
    relation_from_rows,
    save_state,
)
from repro.core.state_io import (
    FORMAT_VERSION,
    state_from_dict,
    state_to_bytes,
    state_to_dict,
)
from repro.durability import SimulatedCrash
from tests.conftest import random_rows


@pytest.fixture
def fitted(staff):
    discoverer = DCDiscoverer(staff)
    discoverer.fit()
    return discoverer


class TestRoundTrip:
    def test_equal_after_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        assert loaded.dc_masks == fitted.dc_masks
        assert loaded.evidence_set == fitted.evidence_set
        assert len(loaded.relation) == len(fitted.relation)
        assert loaded.relation.schema == fitted.relation.schema

    def test_maintenance_continues_identically(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        fitted.insert([(5, "Ema", 2002, 3, 1)])
        save_state(fitted, path)
        loaded = load_state(path)
        for discoverer in (fitted, loaded):
            discoverer.insert([(6, "Bo", 2003, 1, 2)])
            discoverer.delete([2])
        assert loaded.dc_masks == fitted.dc_masks
        assert loaded.evidence_set == fitted.evidence_set

    def test_roundtrip_preserves_dead_rids(self, fitted, tmp_path):
        fitted.delete([1])
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        assert not loaded.relation.is_alive(1)
        assert loaded.relation.next_rid == fitted.relation.next_rid
        # New inserts get the same rids on both sides.
        assert loaded.insert([(7, "Cy", 2004, 2, 1)]).rids == fitted.insert(
            [(7, "Cy", 2004, 2, 1)]
        ).rids

    def test_tuple_index_survives(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        # Both must support the index-based delete strategy afterwards.
        fitted.delete([0])
        loaded.delete([0])
        assert loaded.evidence_set == fitted.evidence_set

    def test_float_columns_roundtrip(self, tmp_path):
        relation = relation_from_rows(["F", "S"], [(1.5, "a"), (2.0, "b"), (3.5, "a")])
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        # json turns 2.0 into 2; the loader must coerce back to float.
        assert loaded.evidence_set == discoverer.evidence_set
        loaded.insert([(2.5, "c")])
        discoverer.insert([(2.5, "c")])
        assert loaded.dc_masks == discoverer.dc_masks

    def test_random_relation_roundtrip(self, tmp_path):
        rng = random.Random(4)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 18))
        discoverer = DCDiscoverer(relation, delete_strategy="recompute")
        discoverer.fit()
        discoverer.delete(rng.sample(list(relation.rids()), 5))
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        batch = random_rows(rng, 4)
        discoverer.insert(batch)
        loaded.insert(batch)
        assert loaded.dc_masks == discoverer.dc_masks


class TestFormatValidation:
    def test_unfitted_rejected(self, staff):
        with pytest.raises(RuntimeError, match="unfitted"):
            state_to_dict(DCDiscoverer(staff))

    def test_wrong_format_rejected(self, fitted):
        payload = state_to_dict(fitted)
        payload["format"] = "something-else"
        with pytest.raises(ValueError, match="not a 3dc-state"):
            state_from_dict(payload)

    def test_wrong_version_rejected(self, fitted):
        payload = state_to_dict(fitted)
        payload["version"] = 999
        with pytest.raises(ValueError, match="unsupported"):
            state_from_dict(payload)

    @pytest.mark.parametrize(
        "version", [FORMAT_VERSION - 1, FORMAT_VERSION + 1, None, "1"]
    )
    def test_version_mismatch_both_directions(self, fitted, version):
        """Both an older and a newer (or missing/mistyped) version raise
        the dedicated error, which names the found and supported values."""
        payload = state_to_dict(fitted)
        payload["version"] = version
        with pytest.raises(StateVersionError) as excinfo:
            state_from_dict(payload)
        assert excinfo.value.found == version
        assert excinfo.value.supported == FORMAT_VERSION
        assert str(FORMAT_VERSION) in str(excinfo.value)

    def test_foreign_json_raises_format_error_not_keyerror(self, tmp_path):
        """A structurally foreign JSON document must fail with a clear
        StateFormatError, never an opaque KeyError."""
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"rows": [1, 2, 3]}))
        with pytest.raises(StateFormatError, match="not a 3dc-state"):
            load_state(path)

    def test_truncated_fields_raise_format_error(self, fitted):
        payload = state_to_dict(fitted)
        del payload["evidence"]
        del payload["sigma"]
        with pytest.raises(StateFormatError, match="evidence, sigma"):
            state_from_dict(payload)

    def test_non_json_file_raises_format_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\x01 not json")
        with pytest.raises(StateFormatError, match="not valid JSON"):
            load_state(path)

    def test_errors_are_valueerrors(self):
        # Callers that caught ValueError before the dedicated classes
        # existed keep working.
        assert issubclass(StateFormatError, ValueError)
        assert issubclass(StateVersionError, ValueError)

    def test_payload_is_json_serializable(self, fitted):
        json.dumps(state_to_dict(fitted))

    def test_config_preserved(self, staff, tmp_path):
        discoverer = DCDiscoverer(
            staff,
            cross_column_ratio=0.5,
            delete_strategy="recompute",
            infer_within_delta=False,
        )
        discoverer.fit()
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        assert loaded.cross_column_ratio == 0.5
        assert loaded.delete_strategy == "recompute"
        assert loaded.infer_within_delta is False


class TestAtomicSave:
    """Regression: save_state used to truncate-write in place, so a crash
    mid-save destroyed the previous state.  It now routes through the
    atomic temp+fsync+rename writer — a simulated failure at any instant
    of the save leaves the previous file byte-intact."""

    @pytest.mark.parametrize(
        "point", ["state_save.pre_fsync", "state_save.pre_rename"]
    )
    def test_failed_save_keeps_previous_state(
        self, fitted, tmp_path, fault_injector, point
    ):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        before = path.read_bytes()
        fitted.insert([(5, "Ema", 2002, 3, 1)])
        with fault_injector.armed(point):
            with pytest.raises(SimulatedCrash):
                save_state(fitted, path)
        assert path.read_bytes() == before
        # The survivor is a fully loadable state, not a torn hybrid.
        assert load_state(path).dc_masks

    def test_save_after_rename_is_the_new_state(
        self, fitted, tmp_path, fault_injector
    ):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        fitted.insert([(5, "Ema", 2002, 3, 1)])
        with fault_injector.armed("state_save.post_rename"):
            with pytest.raises(SimulatedCrash):
                save_state(fitted, path)
        assert path.read_bytes() == state_to_bytes(fitted)

    def test_no_temp_residue_after_successful_save(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_saved_bytes_are_canonical(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        assert path.read_bytes() == state_to_bytes(fitted)


class TestStaleIndexAcrossRoundTrip:
    """Regression: the tuple index's lazy corrections must be settled at
    save time — dead rows reload as placeholders, so a post-load delete
    would otherwise subtract wrong evidence (found via the
    session_persistence example)."""

    def test_delete_after_roundtrip_with_dead_partners(self, tmp_path):
        import random

        from repro.evidence import naive_evidence_set

        rng = random.Random(0)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 16))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        discoverer.delete([1, 4, 7])  # leaves stale partner bits behind
        path = tmp_path / "stale.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        loaded.delete([0, 2])  # owners of pairs with the dead rows
        discoverer.delete([0, 2])
        assert loaded.evidence_set == discoverer.evidence_set
        assert loaded.evidence_set == naive_evidence_set(
            loaded.relation, loaded.space
        )
        assert loaded.dc_masks == discoverer.dc_masks

    def test_repeated_sessions_with_mixed_updates(self, tmp_path):
        import random

        from repro.evidence import naive_evidence_set

        rng = random.Random(1)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 14))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        path = tmp_path / "sessions.json"
        for _ in range(3):
            discoverer.insert(random_rows(rng, 4))
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 3))
            save_state(discoverer, path)
            discoverer = load_state(path)
        assert discoverer.evidence_set == naive_evidence_set(
            discoverer.relation, discoverer.space
        )
