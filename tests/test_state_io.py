"""Tests for state serialization: the 'intermediates' of Figure 2."""

import json
import random

import pytest

from repro import DCDiscoverer, load_state, relation_from_rows, save_state
from repro.core.state_io import state_from_dict, state_to_dict
from tests.conftest import random_rows


@pytest.fixture
def fitted(staff):
    discoverer = DCDiscoverer(staff)
    discoverer.fit()
    return discoverer


class TestRoundTrip:
    def test_equal_after_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        assert loaded.dc_masks == fitted.dc_masks
        assert loaded.evidence_set == fitted.evidence_set
        assert len(loaded.relation) == len(fitted.relation)
        assert loaded.relation.schema == fitted.relation.schema

    def test_maintenance_continues_identically(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        fitted.insert([(5, "Ema", 2002, 3, 1)])
        save_state(fitted, path)
        loaded = load_state(path)
        for discoverer in (fitted, loaded):
            discoverer.insert([(6, "Bo", 2003, 1, 2)])
            discoverer.delete([2])
        assert loaded.dc_masks == fitted.dc_masks
        assert loaded.evidence_set == fitted.evidence_set

    def test_roundtrip_preserves_dead_rids(self, fitted, tmp_path):
        fitted.delete([1])
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        assert not loaded.relation.is_alive(1)
        assert loaded.relation.next_rid == fitted.relation.next_rid
        # New inserts get the same rids on both sides.
        assert loaded.insert([(7, "Cy", 2004, 2, 1)]).rids == fitted.insert(
            [(7, "Cy", 2004, 2, 1)]
        ).rids

    def test_tuple_index_survives(self, fitted, tmp_path):
        path = tmp_path / "state.json"
        save_state(fitted, path)
        loaded = load_state(path)
        # Both must support the index-based delete strategy afterwards.
        fitted.delete([0])
        loaded.delete([0])
        assert loaded.evidence_set == fitted.evidence_set

    def test_float_columns_roundtrip(self, tmp_path):
        relation = relation_from_rows(["F", "S"], [(1.5, "a"), (2.0, "b"), (3.5, "a")])
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        # json turns 2.0 into 2; the loader must coerce back to float.
        assert loaded.evidence_set == discoverer.evidence_set
        loaded.insert([(2.5, "c")])
        discoverer.insert([(2.5, "c")])
        assert loaded.dc_masks == discoverer.dc_masks

    def test_random_relation_roundtrip(self, tmp_path):
        rng = random.Random(4)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 18))
        discoverer = DCDiscoverer(relation, delete_strategy="recompute")
        discoverer.fit()
        discoverer.delete(rng.sample(list(relation.rids()), 5))
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        batch = random_rows(rng, 4)
        discoverer.insert(batch)
        loaded.insert(batch)
        assert loaded.dc_masks == discoverer.dc_masks


class TestFormatValidation:
    def test_unfitted_rejected(self, staff):
        with pytest.raises(RuntimeError, match="unfitted"):
            state_to_dict(DCDiscoverer(staff))

    def test_wrong_format_rejected(self, fitted):
        payload = state_to_dict(fitted)
        payload["format"] = "something-else"
        with pytest.raises(ValueError, match="not a 3dc-state"):
            state_from_dict(payload)

    def test_wrong_version_rejected(self, fitted):
        payload = state_to_dict(fitted)
        payload["version"] = 999
        with pytest.raises(ValueError, match="unsupported"):
            state_from_dict(payload)

    def test_payload_is_json_serializable(self, fitted):
        json.dumps(state_to_dict(fitted))

    def test_config_preserved(self, staff, tmp_path):
        discoverer = DCDiscoverer(
            staff,
            cross_column_ratio=0.5,
            delete_strategy="recompute",
            infer_within_delta=False,
        )
        discoverer.fit()
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        assert loaded.cross_column_ratio == 0.5
        assert loaded.delete_strategy == "recompute"
        assert loaded.infer_within_delta is False


class TestStaleIndexAcrossRoundTrip:
    """Regression: the tuple index's lazy corrections must be settled at
    save time — dead rows reload as placeholders, so a post-load delete
    would otherwise subtract wrong evidence (found via the
    session_persistence example)."""

    def test_delete_after_roundtrip_with_dead_partners(self, tmp_path):
        import random

        from repro.evidence import naive_evidence_set

        rng = random.Random(0)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 16))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        discoverer.delete([1, 4, 7])  # leaves stale partner bits behind
        path = tmp_path / "stale.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        loaded.delete([0, 2])  # owners of pairs with the dead rows
        discoverer.delete([0, 2])
        assert loaded.evidence_set == discoverer.evidence_set
        assert loaded.evidence_set == naive_evidence_set(
            loaded.relation, loaded.space
        )
        assert loaded.dc_masks == discoverer.dc_masks

    def test_repeated_sessions_with_mixed_updates(self, tmp_path):
        import random

        from repro.evidence import naive_evidence_set

        rng = random.Random(1)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 14))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        path = tmp_path / "sessions.json"
        for _ in range(3):
            discoverer.insert(random_rows(rng, 4))
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 3))
            save_state(discoverer, path)
            discoverer = load_state(path)
        assert discoverer.evidence_set == naive_evidence_set(
            discoverer.relation, discoverer.space
        )
