"""Property tests for the extension layers (watcher, monitor, SQL).

The core engine has deep hypothesis coverage in test_properties.py; this
file gives the extensions the same treatment: random relations and random
update sequences, checked against first-principles oracles.
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, relation_from_rows
from repro.dcs import DenialConstraint, find_violations
from repro.dcs.approximate import violation_count
from repro.dcs.implication import dc_implies, semantic_minimize
from repro.dcs.sql import create_table_statement, insert_rows, violations_query
from repro.predicates import build_predicate_space

row_strategy = st.tuples(
    st.integers(0, 3), st.sampled_from("ab"), st.integers(0, 2)
)
rows_strategy = st.lists(row_strategy, min_size=3, max_size=12)
HEADER = ["A", "B", "C"]


def random_dc_masks(space, seed, count=5):
    import random

    rng = random.Random(seed)
    masks = []
    for _ in range(count):
        mask = 0
        for _ in range(rng.randint(1, 2)):
            mask |= 1 << rng.randrange(space.n_bits)
        if space.satisfiable(mask):
            masks.append(mask)
    return masks


@given(rows=rows_strategy, batch=st.lists(row_strategy, min_size=1, max_size=4),
       seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_watcher_matches_violation_oracle(rows, batch, seed):
    relation = relation_from_rows(HEADER, rows)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    space = discoverer.space
    dcs = [DenialConstraint(m, space) for m in random_dc_masks(space, seed)]
    if not dcs:
        return
    watcher = discoverer.attach_violation_watcher(dcs)
    discoverer.insert(batch)
    alive = list(discoverer.relation.rids())
    discoverer.delete(alive[: min(2, len(alive) - 1)])
    for dc in dcs:
        assert watcher.violations(dc) == set(
            find_violations(dc, discoverer.relation)
        )


@given(rows=rows_strategy, batch=st.lists(row_strategy, min_size=1, max_size=4),
       epsilon=st.sampled_from([0.0, 0.05, 0.2]))
@settings(max_examples=15, deadline=None)
def test_monitor_counters_exact_and_tracked_dcs_within_budget(rows, batch, epsilon):
    relation = relation_from_rows(HEADER, rows)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    monitor = discoverer.attach_approximate_monitor(epsilon)
    discoverer.insert(batch)
    alive = list(discoverer.relation.rids())
    discoverer.delete(alive[: min(2, len(alive) - 1)])
    budget = monitor.budget
    for mask in monitor.dc_masks[:25]:
        exact = violation_count(discoverer.evidence_set, mask)
        assert monitor.violations(mask) == exact
        assert exact <= budget  # soundness of the tracked set


@given(rows=rows_strategy, seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_sql_violations_match_oracle(rows, seed):
    relation = relation_from_rows(HEADER, rows)
    space = build_predicate_space(relation)
    connection = sqlite3.connect(":memory:")
    connection.execute(create_table_statement(relation, "t"))
    insert_rows(connection, relation, "t")
    for mask in random_dc_masks(space, seed, count=4):
        dc = DenialConstraint(mask, space)
        via_sql = sorted(
            tuple(row)
            for row in connection.execute(violations_query(dc, "t")).fetchall()
        )
        assert via_sql == sorted(find_violations(dc, relation))


@given(rows=rows_strategy)
@settings(max_examples=15, deadline=None)
def test_semantic_minimize_preserves_constraint_semantics(rows):
    """Every dropped DC must be implied by some kept DC, and kept DCs must
    be pairwise non-equivalent."""
    from repro.enumeration import invert_evidence
    from repro.evidence import naive_evidence_set

    relation = relation_from_rows(HEADER, rows)
    space = build_predicate_space(relation)
    masks = [
        m
        for m in invert_evidence(space, list(naive_evidence_set(relation, space)))
        if m
    ][:60]
    kept = semantic_minimize(space, masks)
    kept_set = set(kept)
    for mask in masks:
        if mask not in kept_set:
            assert any(dc_implies(space, keeper, mask) for keeper in kept)
    for i, a in enumerate(kept):
        for b in kept[i + 1 :]:
            assert not (dc_implies(space, a, b) and dc_implies(space, b, a))
