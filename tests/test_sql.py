"""Tests for the DC→SQL compiler, executed against sqlite3."""

import random
import sqlite3

import pytest

from repro.dcs import DenialConstraint, find_violations
from repro.dcs.sql import (
    create_table_statement,
    deploy_checks,
    insert_rows,
    quote_identifier,
    sql_condition,
    violation_count_query,
    violations_query,
)
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.predicates import build_predicate_space, parse_dc
from repro.relational import relation_from_rows

from tests.conftest import random_rows


@pytest.fixture
def staff_db(staff):
    connection = sqlite3.connect(":memory:")
    connection.execute(create_table_statement(staff, "staff"))
    insert_rows(connection, staff, "staff")
    return staff, connection


class TestRendering:
    def test_quote_identifier(self):
        assert quote_identifier("plain") == '"plain"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_sql_condition_operators(self, staff):
        space = build_predicate_space(staff)
        dc = DenialConstraint(
            parse_dc("!(t.Hired <= t'.Hired & t.Name != t'.Name)", space), space
        )
        condition = sql_condition(dc)
        assert 't."Hired" <= u."Hired"' in condition
        assert 't."Name" <> u."Name"' in condition
        assert " AND " in condition

    def test_create_table_types(self, staff):
        statement = create_table_statement(staff, "staff")
        assert '"_rid" INTEGER PRIMARY KEY' in statement
        assert '"Name" TEXT' in statement
        assert '"Level" INTEGER' in statement

    def test_float_column_type(self):
        relation = relation_from_rows(["F"], [(1.5,)])
        assert '"F" REAL' in create_table_statement(relation, "x")


class TestExecutionAgainstOracle:
    def test_known_violation_pairs(self, staff_db):
        staff, connection = staff_db
        space = build_predicate_space(staff)
        dc = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        rows = connection.execute(violations_query(dc, "staff")).fetchall()
        assert rows == [(0, 2), (2, 0)]

    def test_valid_dcs_return_empty(self, staff_db):
        staff, connection = staff_db
        space = build_predicate_space(staff)
        evidence = list(naive_evidence_set(staff, space))
        for mask in invert_evidence(space, evidence)[:20]:
            if not mask:
                continue
            dc = DenialConstraint(mask, space)
            assert connection.execute(violations_query(dc, "staff")).fetchall() == []

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dcs_match_find_violations(self, seed):
        rng = random.Random(seed)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 15))
        space = build_predicate_space(relation)
        connection = sqlite3.connect(":memory:")
        connection.execute(create_table_statement(relation, "data"))
        assert insert_rows(connection, relation, "data") == 15
        for _ in range(10):
            bits = rng.sample(range(space.n_bits), 2)
            mask = (1 << bits[0]) | (1 << bits[1])
            if not space.satisfiable(mask):
                continue
            dc = DenialConstraint(mask, space)
            via_sql = connection.execute(violations_query(dc, "data")).fetchall()
            oracle = sorted(find_violations(dc, relation))
            assert [tuple(row) for row in via_sql] == oracle
            count = connection.execute(
                violation_count_query(dc, "data")
            ).fetchone()[0]
            assert count == len(oracle)

    def test_rids_survive_deletes(self):
        relation = relation_from_rows(["A"], [(1,), (2,), (1,)])
        relation.delete([1])
        connection = sqlite3.connect(":memory:")
        connection.execute(create_table_statement(relation, "data"))
        insert_rows(connection, relation, "data")
        space = build_predicate_space(relation)
        dc = DenialConstraint(parse_dc("!(t.A = t'.A)", space), space)
        rows = connection.execute(violations_query(dc, "data")).fetchall()
        assert rows == [(0, 2), (2, 0)]


class TestDeployChecks:
    def test_views_are_executable(self, staff_db):
        staff, connection = staff_db
        space = build_predicate_space(staff)
        dcs = [
            DenialConstraint(parse_dc("!(t.Id = t'.Id)", space), space),
            DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space),
        ]
        connection.executescript(deploy_checks(dcs, "staff"))
        assert connection.execute(
            'SELECT COUNT(*) FROM "dc_0_violations"'
        ).fetchone()[0] == 0
        assert connection.execute(
            'SELECT COUNT(*) FROM "dc_1_violations"'
        ).fetchone()[0] == 2
