"""Tests for the DC model layer: objects, violations, ranking,
approximation, and canonicalization."""

import random
from itertools import combinations

import pytest

from repro.bitmaps.bitutils import iter_bits
from repro.dcs import (
    DenialConstraint,
    approximate_dcs,
    coverage,
    find_violations,
    iter_violating_pairs,
    partners_satisfying,
    rank_dcs,
    score_dc,
    succinctness,
    violating_partners,
    violation_count,
)
from repro.dcs.canonical import canonicalize_mask, canonicalize_masks
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.evidence.indexes import ColumnIndexes
from repro.predicates import Operator, build_predicate_space, parse_dc
from repro.relational import relation_from_rows
from tests.conftest import random_rows


@pytest.fixture
def staff_setup(staff):
    space = build_predicate_space(staff)
    evidence = naive_evidence_set(staff, space)
    return staff, space, evidence


class TestDenialConstraint:
    def test_basics(self, staff_setup):
        staff, space, _ = staff_setup
        mask = parse_dc("!(t.Id = t'.Id)", space)
        dc = DenialConstraint(mask, space)
        assert len(dc) == 1
        assert not dc.is_trivial
        assert str(dc) == "¬(t.Id = t'.Id)"
        assert dc.predicates[0].op is Operator.EQ

    def test_trivial_detection(self, staff_setup):
        _, space, _ = staff_setup
        eq = 1 << space.bit("Level", Operator.EQ, "Level")
        ne = 1 << space.bit("Level", Operator.NE, "Level")
        assert DenialConstraint(eq | ne, space).is_trivial
        assert not DenialConstraint(eq, space).is_trivial

    def test_implies(self, staff_setup):
        _, space, _ = staff_setup
        small = DenialConstraint(parse_dc("!(t.Id = t'.Id)", space), space)
        big = DenialConstraint(
            parse_dc("!(t.Id = t'.Id & t.Level = t'.Level)", space), space
        )
        assert small.implies(big)
        assert not big.implies(small)

    def test_holds_on_pair_and_evidence_violation(self, staff_setup):
        staff, space, _ = staff_setup
        dc = DenialConstraint(
            parse_dc("!(t.Name = t'.Name)", space), space
        )
        rows = list(staff.rows())
        assert not dc.holds_on_pair(rows[0], rows[2])  # both Ana
        assert dc.holds_on_pair(rows[0], rows[1])
        evidence = space.evidence_of_pair(rows[0], rows[2])
        assert dc.is_violated_by_evidence(evidence)

    def test_ordering_and_hash(self, staff_setup):
        _, space, _ = staff_setup
        a = DenialConstraint(0b01, space)
        b = DenialConstraint(0b10, space)
        assert a < b
        assert len({a, DenialConstraint(0b01, space)}) == 1


class TestViolations:
    def test_valid_dcs_have_no_violations(self, staff_setup):
        staff, space, evidence = staff_setup
        for mask in invert_evidence(space, list(evidence))[:25]:
            if not mask:
                continue
            dc = DenialConstraint(mask, space)
            assert find_violations(dc, staff) == []

    def test_known_violation(self, staff_setup):
        staff, space, _ = staff_setup
        dc = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        assert set(find_violations(dc, staff)) == {(0, 2), (2, 0)}

    def test_limit(self, staff_setup):
        staff, space, _ = staff_setup
        dc = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        assert len(find_violations(dc, staff, limit=1)) == 1

    def test_partners_satisfying_all_operators(self):
        relation = relation_from_rows(["N"], [(5,), (3,), (5,), (7,)])
        indexes = ColumnIndexes(relation)
        assert partners_satisfying(indexes, 0, Operator.EQ, 5) == 0b0101
        assert partners_satisfying(indexes, 0, Operator.NE, 5) == 0b1010
        assert partners_satisfying(indexes, 0, Operator.GT, 5) == 0b1000
        assert partners_satisfying(indexes, 0, Operator.GE, 5) == 0b1101
        assert partners_satisfying(indexes, 0, Operator.LT, 5) == 0b0010
        assert partners_satisfying(indexes, 0, Operator.LE, 5) == 0b0111

    def test_range_probe_on_categorical_raises(self):
        relation = relation_from_rows(["S"], [("a",), ("b",)])
        indexes = ColumnIndexes(relation)
        with pytest.raises(ValueError, match="categorical"):
            partners_satisfying(indexes, 0, Operator.LT, "a")

    @pytest.mark.parametrize("seed", range(4))
    def test_index_violations_match_naive(self, seed):
        rng = random.Random(seed)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 14))
        space = build_predicate_space(relation)
        indexes = ColumnIndexes(relation)
        for _ in range(8):
            bits = rng.sample(range(space.n_bits), 2)
            mask = (1 << bits[0]) | (1 << bits[1])
            if not space.satisfiable(mask):
                continue
            dc = DenialConstraint(mask, space)
            naive = set(find_violations(dc, relation))
            indexed = set()
            for rid in relation.rids():
                as_first, as_second = violating_partners(dc, relation, indexes, rid)
                for partner in iter_bits(as_first):
                    indexed.add((rid, partner))
                for partner in iter_bits(as_second):
                    indexed.add((partner, rid))
            assert indexed == naive
            assert set(iter_violating_pairs(dc, relation, indexes)) == naive


class TestRanking:
    def test_succinctness(self, staff_setup):
        _, space, _ = staff_setup
        single = DenialConstraint(0b1, space)
        double = DenialConstraint(0b11, space)
        assert succinctness(single) == 1.0
        assert succinctness(double) == 0.5

    def test_coverage_bounds(self, staff_setup):
        staff, space, evidence = staff_setup
        for mask in invert_evidence(space, list(evidence))[:30]:
            if not mask:
                continue
            value = coverage(DenialConstraint(mask, space), evidence)
            assert 0.0 <= value <= 1.0

    def test_rank_order_and_top_k(self, staff_setup):
        _, space, evidence = staff_setup
        masks = invert_evidence(space, list(evidence))
        dcs = [DenialConstraint(m, space) for m in masks if m][:40]
        ranked = rank_dcs(dcs, evidence, top_k=10)
        assert len(ranked) == 10
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_score_weights(self, staff_setup):
        _, space, evidence = staff_setup
        dc = DenialConstraint(0b1, space)
        only_succ = score_dc(dc, evidence, succinctness_weight=1.0, coverage_weight=0.0)
        assert only_succ.score == pytest.approx(only_succ.succinctness)


class TestApproximateDCs:
    def test_epsilon_zero_is_exact(self, abc_factory):
        relation = abc_factory(10, 3)
        space = build_predicate_space(relation)
        evidence = naive_evidence_set(relation, space)
        assert approximate_dcs(space, evidence, 0.0) == invert_evidence(
            space, list(evidence)
        )

    def test_epsilon_validation(self, staff_setup):
        _, space, evidence = staff_setup
        with pytest.raises(ValueError):
            approximate_dcs(space, evidence, 1.0)
        with pytest.raises(ValueError):
            approximate_dcs(space, evidence, -0.1)

    @pytest.mark.parametrize("epsilon", [0.05, 0.15])
    def test_matches_bruteforce(self, abc_factory, epsilon):
        relation = abc_factory(8, 5, int_range=2, letters="ab")
        space = build_predicate_space(relation)
        evidence = naive_evidence_set(relation, space)
        budget = int(epsilon * evidence.total_pairs())
        brute = []
        for size in range(0, 4):
            for bits in combinations(range(space.n_bits), size):
                mask = 0
                for bit in bits:
                    mask |= 1 << bit
                if not space.satisfiable(mask):
                    continue
                if violation_count(evidence, mask) > budget:
                    continue
                if any(kept & mask == kept for kept in brute):
                    continue
                brute.append(mask)
        mine = [m for m in approximate_dcs(space, evidence, epsilon)
                if m.bit_count() <= 3]
        assert mine == sorted(brute)

    def test_monotone_in_epsilon(self, abc_factory):
        relation = abc_factory(10, 6)
        space = build_predicate_space(relation)
        evidence = naive_evidence_set(relation, space)
        tight = approximate_dcs(space, evidence, 0.0)
        loose = approximate_dcs(space, evidence, 0.2)
        # Every strict result must be implied by (superset of) some loose one.
        for mask in tight:
            assert any(mask & small == small for small in loose)

    def test_violation_count_matches_find_violations(self, staff_setup):
        staff, space, evidence = staff_setup
        mask = parse_dc("!(t.Name = t'.Name)", space)
        dc = DenialConstraint(mask, space)
        assert violation_count(evidence, mask) == len(find_violations(dc, staff))


class TestCanonicalization:
    def test_le_ge_becomes_eq(self, staff_setup):
        _, space, _ = staff_setup
        le = 1 << space.bit("Level", Operator.LE, "Level")
        ge = 1 << space.bit("Level", Operator.GE, "Level")
        eq = 1 << space.bit("Level", Operator.EQ, "Level")
        assert canonicalize_mask(le | ge, space) == eq

    def test_ne_le_becomes_lt(self, staff_setup):
        _, space, _ = staff_setup
        ne = 1 << space.bit("Hired", Operator.NE, "Hired")
        le = 1 << space.bit("Hired", Operator.LE, "Hired")
        lt = 1 << space.bit("Hired", Operator.LT, "Hired")
        assert canonicalize_mask(ne | le, space) == lt

    def test_other_bits_preserved(self, staff_setup):
        _, space, _ = staff_setup
        other = 1 << space.bit("Name", Operator.EQ, "Name")
        ne = 1 << space.bit("Level", Operator.NE, "Level")
        ge = 1 << space.bit("Level", Operator.GE, "Level")
        gt = 1 << space.bit("Level", Operator.GT, "Level")
        assert canonicalize_mask(other | ne | ge, space) == other | gt

    def test_canonicalize_masks_dedupes(self, staff_setup):
        staff, space, evidence = staff_setup
        masks = [m for m in invert_evidence(space, list(evidence)) if m]
        canonical = canonicalize_masks(masks, space)
        assert len(canonical) <= len(masks)
        assert len(set(canonical)) == len(canonical)
        # Canonical DCs remain valid and satisfiable.
        for mask in canonical:
            assert space.satisfiable(mask)
            assert not any(mask & e == mask for e in evidence)
