"""Tests for equality and range column indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evidence.indexes import ColumnIndexes, EqualityIndex, RangeIndex
from repro.relational import relation_from_rows


class TestEqualityIndex:
    def test_add_probe_remove(self):
        index = EqualityIndex()
        index.add(0, "x")
        index.add(3, "x")
        index.add(1, "y")
        assert index.probe("x") == 0b1001
        assert index.probe("y") == 0b0010
        assert index.probe("zz") == 0
        index.remove(0, "x")
        assert index.probe("x") == 0b1000
        index.remove(3, "x")
        assert index.probe("x") == 0
        assert len(index) == 1


class TestRangeIndex:
    def _reference(self, values_by_rid, probe):
        eq = 0
        gt = 0
        for rid, value in values_by_rid.items():
            if value == probe:
                eq |= 1 << rid
            elif value > probe:
                gt |= 1 << rid
        return eq, gt

    def test_eq_gt_basic(self):
        index = RangeIndex(step=2)
        values = {0: 5, 1: 3, 2: 8, 3: 3, 4: 10}
        for rid, value in values.items():
            index.add(rid, value)
        for probe in [2, 3, 5, 8, 9, 10, 11]:
            assert index.eq_gt(probe) == self._reference(values, probe), probe

    def test_mutation_rebuilds_checkpoints(self):
        index = RangeIndex(step=3)
        values = {}
        rng = random.Random(0)
        for rid in range(40):
            value = rng.randint(0, 15)
            index.add(rid, value)
            values[rid] = value
        for rid in list(values)[:10]:
            index.remove(rid, values.pop(rid))
        for rid in range(40, 50):
            value = rng.randint(0, 15)
            index.add(rid, value)
            values[rid] = value
        for probe in range(-1, 17):
            assert index.eq_gt(probe) == self._reference(values, probe), probe

    def test_empty_index(self):
        index = RangeIndex()
        assert index.eq_gt(5) == (0, 0)
        assert len(index) == 0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            RangeIndex(step=0)

    @given(
        values=st.lists(st.integers(-20, 20), min_size=1, max_size=60),
        probes=st.lists(st.integers(-25, 25), min_size=1, max_size=10),
        step=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_model(self, values, probes, step):
        index = RangeIndex(step=step)
        values_by_rid = dict(enumerate(values))
        for rid, value in values_by_rid.items():
            index.add(rid, value)
        for probe in probes:
            assert index.eq_gt(probe) == self._reference(values_by_rid, probe)


class TestColumnIndexes:
    def _relation(self):
        return relation_from_rows(
            ["N", "S"], [(5, "a"), (3, "b"), (5, "a"), (7, "c")]
        )

    def test_build_and_probe(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        assert indexes.indexed_bits == 0b1111
        group = _single_group(relation, "N")
        assert indexes.probe_group(group, 5) == (0b0101, 0b1000)
        sgroup = _single_group(relation, "S")
        assert indexes.probe_group(sgroup, "a") == (0b0101, 0)

    def test_add_remove_rows(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        new_rids = relation.insert([(4, "b")])
        indexes.add_rows(new_rids)
        group = _single_group(relation, "N")
        assert indexes.probe_group(group, 3) == (0b00010, 0b11101)
        indexes.remove_rows([0])
        eq_bits, gt_bits = indexes.probe_group(group, 3)
        assert eq_bits == 0b00010
        assert gt_bits == 0b11100

    def test_double_add_raises(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        with pytest.raises(ValueError):
            indexes.add_rows([0])

    def test_remove_unindexed_raises(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        with pytest.raises(ValueError):
            indexes.remove_rows([99])


def _single_group(relation, name):
    from repro.predicates import build_predicate_space

    space = build_predicate_space(relation)
    return next(
        g
        for g in space.groups
        if g.is_single_column and g.predicates[0].lhs == name
    )
