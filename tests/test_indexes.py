"""Tests for equality and range column indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evidence.indexes import ColumnIndexes, EqualityIndex, RangeIndex
from repro.relational import relation_from_rows


class TestEqualityIndex:
    def test_add_probe_remove(self):
        index = EqualityIndex()
        index.add(0, "x")
        index.add(3, "x")
        index.add(1, "y")
        assert index.probe("x") == 0b1001
        assert index.probe("y") == 0b0010
        assert index.probe("zz") == 0
        index.remove(0, "x")
        assert index.probe("x") == 0b1000
        index.remove(3, "x")
        assert index.probe("x") == 0
        assert len(index) == 1


class TestRangeIndex:
    def _reference(self, values_by_rid, probe):
        eq = 0
        gt = 0
        for rid, value in values_by_rid.items():
            if value == probe:
                eq |= 1 << rid
            elif value > probe:
                gt |= 1 << rid
        return eq, gt

    def test_eq_gt_basic(self):
        index = RangeIndex(step=2)
        values = {0: 5, 1: 3, 2: 8, 3: 3, 4: 10}
        for rid, value in values.items():
            index.add(rid, value)
        for probe in [2, 3, 5, 8, 9, 10, 11]:
            assert index.eq_gt(probe) == self._reference(values, probe), probe

    def test_mutation_rebuilds_checkpoints(self):
        index = RangeIndex(step=3)
        values = {}
        rng = random.Random(0)
        for rid in range(40):
            value = rng.randint(0, 15)
            index.add(rid, value)
            values[rid] = value
        for rid in list(values)[:10]:
            index.remove(rid, values.pop(rid))
        for rid in range(40, 50):
            value = rng.randint(0, 15)
            index.add(rid, value)
            values[rid] = value
        for probe in range(-1, 17):
            assert index.eq_gt(probe) == self._reference(values, probe), probe

    def test_empty_index(self):
        index = RangeIndex()
        assert index.eq_gt(5) == (0, 0)
        assert len(index) == 0

    def test_remove_to_empty_and_reprobe(self):
        """Draining the index leaves a probeable empty structure whose
        checkpoints rebuild to nothing (no stale suffix bitmap)."""
        index = RangeIndex(step=2)
        values = {0: 4, 1: 7, 2: 4}
        for rid, value in values.items():
            index.add(rid, value)
        assert index.eq_gt(4) == (0b101, 0b010)  # force a rebuild first
        for rid, value in values.items():
            index.remove(rid, value)
        assert len(index) == 0
        assert index.values == [] and index.entries == {}
        for probe in (-1, 4, 7, 100):
            assert index.eq_gt(probe) == (0, 0), probe

    def test_readd_after_drain(self):
        """Values re-added after a full drain probe correctly — the
        rebuilt checkpoints reflect only the second population."""
        index = RangeIndex(step=2)
        for rid, value in [(0, 1), (1, 2), (2, 3)]:
            index.add(rid, value)
        index.eq_gt(0)  # rebuild on the first population
        for rid, value in [(0, 1), (1, 2), (2, 3)]:
            index.remove(rid, value)
        second = {3: 2, 4: 9, 5: 2}
        for rid, value in second.items():
            index.add(rid, value)
        for probe in (0, 1, 2, 3, 9, 10):
            assert index.eq_gt(probe) == self._reference(second, probe), probe

    def test_duplicates_straddling_checkpoint_boundary(self):
        """Duplicate values landing exactly at a checkpoint position must
        union into the checkpoint once, not per-rid: many rids share few
        distinct values, so positions (which index *distinct* values) and
        rids diverge."""
        step = 4
        index = RangeIndex(step=step)
        values_by_rid = {}
        rid = 0
        # 10 distinct values (2.5 checkpoint blocks), each held by 3 rids,
        # so every block boundary has a duplicated value on both sides.
        for value in range(10):
            for _ in range(3):
                values_by_rid[rid] = value
                index.add(rid, value)
                rid += 1
        for probe in range(-1, 11):
            assert index.eq_gt(probe) == self._reference(values_by_rid, probe)
        # Remove one rid of a boundary value (position step-1 and step):
        # the value keeps its other holders and the checkpoints re-union.
        for victim_value in (step - 1, step):
            victim_rid = next(
                r for r, v in values_by_rid.items() if v == victim_value
            )
            index.remove(victim_rid, values_by_rid.pop(victim_rid))
            for probe in range(-1, 11):
                assert index.eq_gt(probe) == self._reference(
                    values_by_rid, probe
                )

    def test_nan_rids_survive_drain_of_numbers(self):
        """NaN lives in the side bitmap: removing every number leaves the
        NaN rids probeable (NaN = NaN, NaN > every number)."""
        nan = float("nan")
        index = RangeIndex(step=2)
        index.add(0, 1.5)
        index.add(1, nan)
        index.add(2, nan)
        assert index.eq_gt(1.5) == (0b001, 0b110)
        assert index.eq_gt(nan) == (0b110, 0)
        index.remove(0, 1.5)
        assert len(index) == 1  # the NaN class
        assert index.eq_gt(0.0) == (0, 0b110)
        assert index.eq_gt(nan) == (0b110, 0)
        index.remove(1, nan)
        index.remove(2, nan)
        assert len(index) == 0
        assert index.eq_gt(nan) == (0, 0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            RangeIndex(step=0)

    @given(
        values=st.lists(st.integers(-20, 20), min_size=1, max_size=60),
        probes=st.lists(st.integers(-25, 25), min_size=1, max_size=10),
        step=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_model(self, values, probes, step):
        index = RangeIndex(step=step)
        values_by_rid = dict(enumerate(values))
        for rid, value in values_by_rid.items():
            index.add(rid, value)
        for probe in probes:
            assert index.eq_gt(probe) == self._reference(values_by_rid, probe)


class TestColumnIndexes:
    def _relation(self):
        return relation_from_rows(
            ["N", "S"], [(5, "a"), (3, "b"), (5, "a"), (7, "c")]
        )

    def test_build_and_probe(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        assert indexes.indexed_bits == 0b1111
        group = _single_group(relation, "N")
        assert indexes.probe_group(group, 5) == (0b0101, 0b1000)
        sgroup = _single_group(relation, "S")
        assert indexes.probe_group(sgroup, "a") == (0b0101, 0)

    def test_add_remove_rows(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        new_rids = relation.insert([(4, "b")])
        indexes.add_rows(new_rids)
        group = _single_group(relation, "N")
        assert indexes.probe_group(group, 3) == (0b00010, 0b11101)
        indexes.remove_rows([0])
        eq_bits, gt_bits = indexes.probe_group(group, 3)
        assert eq_bits == 0b00010
        assert gt_bits == 0b11100

    def test_double_add_raises(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        with pytest.raises(ValueError):
            indexes.add_rows([0])

    def test_remove_unindexed_raises(self):
        relation = self._relation()
        indexes = ColumnIndexes(relation)
        with pytest.raises(ValueError):
            indexes.remove_rows([99])


def _single_group(relation, name):
    from repro.predicates import build_predicate_space

    space = build_predicate_space(relation)
    return next(
        g
        for g in space.groups
        if g.is_single_column and g.predicates[0].lhs == name
    )
