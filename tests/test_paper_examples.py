"""Executable specification of the paper's worked examples.

Covers Table I (the staff relation under updates), Figure 1 (the sample
predicate space), Section V's evidence-context walkthrough for tuple t5
(Figure 3), the evidence-inference example (e₁ ↔ e₂), and the DynEI trace
of Figure 4.
"""

import pytest

from repro import DCDiscoverer
from repro.evidence import ColumnIndexes, build_contexts
from repro.predicates import Operator, build_predicate_space, parse_dc, parse_predicate
from repro.workloads import staff_relation

T5 = (5, "Ema", 2002, 3, 1)


@pytest.fixture
def staff():
    return staff_relation()


@pytest.fixture
def space(staff):
    return build_predicate_space(staff)


class TestFigure1PredicateSpace:
    """The sample predicate space for staff."""

    def test_single_column_predicates_present(self, space):
        # p1..p18 of Figure 1: single-column predicates.
        for text in [
            "t.Id = t'.Id", "t.Id != t'.Id",
            "t.Name = t'.Name", "t.Name != t'.Name",
            "t.Hired < t'.Hired", "t.Hired >= t'.Hired",
            "t.Level <= t'.Level", "t.Level > t'.Level",
            "t.Mgr = t'.Mgr", "t.Mgr != t'.Mgr",
        ]:
            parse_predicate(text, space)  # raises if absent

    def test_cross_column_mgr_id_present(self, space):
        # p19/p20 of Figure 1: Mgr and Id share all their values.
        parse_predicate("t.Mgr = t'.Id", space)
        parse_predicate("t.Mgr != t'.Id", space)

    def test_no_string_order_predicates(self, space):
        with pytest.raises(ValueError):
            parse_predicate("t.Name < t'.Name", space)

    def test_predicate_groups_partition_by_column_pair(self, space):
        # Figure 1's G1..G6 generalize to one group per ordered column pair.
        seen = set()
        for group in space.groups:
            pair = (group.lhs_position, group.rhs_position)
            assert pair not in seen
            seen.add(pair)


class TestSelectivityPrinciple:
    """Section V-A: counts of pairs satisfying = vs ≠ predicates."""

    def test_equality_vs_inequality_selectivity(self, staff, space):
        # All 12 ordered pairs satisfy t.Id != t'.Id, none satisfy =.
        eq_bit = space.bit("Id", Operator.EQ, "Id")
        ne_bit = space.bit("Id", Operator.NE, "Id")
        rows = list(staff.rows())
        eq_pairs = ne_pairs = 0
        for i, row_t in enumerate(rows):
            for j, row_u in enumerate(rows):
                if i == j:
                    continue
                evidence = space.evidence_of_pair(row_t, row_u)
                eq_pairs += (evidence >> eq_bit) & 1
                ne_pairs += (evidence >> ne_bit) & 1
        assert eq_pairs == 0
        assert ne_pairs == 12


class TestFigure3EvidenceContexts:
    """Incremental evidence contexts for the insert of t5, on the paper's
    predicate-space subset {p1..p16} (columns Id, Name, Hired, Level,
    single-column predicates only)."""

    @pytest.fixture
    def subspace(self, staff):
        return build_predicate_space(
            staff,
            column_names=["Id", "Name", "Hired", "Level"],
            allow_cross_columns=False,
        )

    def test_t5_context_classes(self, staff, subspace):
        rids = staff.insert([T5])
        indexes = ColumnIndexes(staff)
        partner_bits = staff.alive_bits & ~(1 << rids[0])
        contexts = build_contexts(subspace, staff, rids[0], partner_bits, indexes)
        # Figure 3 ends with three contexts: ec1 covering {t3}, ec2 fixing
        # the Hired equality with {t4}, ec3 fixing the Level order with
        # {t1, t2}.
        partner_sets = sorted(bits for bits in contexts.values())
        assert partner_sets == sorted([0b1000, 0b0100, 0b0011])

    def test_t4_context_has_hired_equality(self, staff, subspace):
        rids = staff.insert([T5])
        indexes = ColumnIndexes(staff)
        partner_bits = staff.alive_bits & ~(1 << rids[0])
        contexts = build_contexts(subspace, staff, rids[0], partner_bits, indexes)
        t4_evidence = next(e for e, bits in contexts.items() if bits == 0b1000)
        hired_eq = subspace.bit("Hired", Operator.EQ, "Hired")
        assert (t4_evidence >> hired_eq) & 1

    def test_t1_t2_context_has_level_order(self, staff, subspace):
        rids = staff.insert([T5])
        indexes = ColumnIndexes(staff)
        partner_bits = staff.alive_bits & ~(1 << rids[0])
        contexts = build_contexts(subspace, staff, rids[0], partner_bits, indexes)
        ec3 = next(e for e, bits in contexts.items() if bits == 0b0011)
        # t1, t2 have higher Levels than t5: t.Level < t'.Level holds.
        assert (ec3 >> subspace.bit("Level", Operator.LT, "Level")) & 1


class TestEvidenceInferenceExample:
    """Section V-B3: inferring e₂ = e(t3, t5) from e₁ = e(t5, t3)."""

    def test_swapped_evidence_inferred(self, staff, space):
        staff.insert([T5])
        rows = {rid: staff.row(rid) for rid in staff.rids()}
        e1 = space.evidence_of_pair(rows[4], rows[2])  # (t5, t3)
        e2 = space.evidence_of_pair(rows[2], rows[4])  # (t3, t5)
        assert space.symmetrize(e1) == e2
        # Spot-check the paper's predicates: e1 has Hired >/≥, e2 has </≤.
        assert (e1 >> space.bit("Hired", Operator.GT, "Hired")) & 1
        assert (e2 >> space.bit("Hired", Operator.LT, "Hired")) & 1


class TestTableINarrative:
    """The full Table I update sequence (also in test_discoverer, kept
    here as the single-page executable version of the paper's Section I)."""

    def test_full_story(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        space = discoverer.space
        phi = {
            1: parse_dc("!(t.Id = t'.Id)", space),
            2: parse_dc("!(t.Level = t'.Level & t.Mgr != t'.Mgr)", space),
            3: parse_dc("!(t.Hired < t'.Hired & t.Level < t'.Level)", space),
            4: parse_dc("!(t.Mgr = t'.Id & t.Level > t'.Level)", space),
            5: parse_dc(
                "!(t.Mgr = t'.Mgr & t.Hired < t'.Hired & t.Level < t'.Level)",
                space,
            ),
            6: parse_dc("!(t.Level = t'.Level)", space),
        }
        masks = set(discoverer.dc_masks)

        def holds(mask):
            return any(dc & mask == dc for dc in masks)

        # Initial state: φ1-φ4 hold; φ5 holds but is NOT minimal (φ3 ⊂ φ5);
        # φ6 does not hold (t3 and t4 share Level 2 with equal Mgr... it is
        # violated by (t3, t4)).
        assert all(holds(phi[k]) for k in (1, 2, 3, 4))
        assert phi[5] not in masks and holds(phi[5])
        assert not holds(phi[6])

        # Insert t5: φ3 violated by (t3, t5); φ5 becomes minimal.
        discoverer.insert([T5])
        masks = set(discoverer.dc_masks)
        assert phi[3] not in masks
        assert phi[5] in masks

        # Delete t4: φ2 becomes non-minimal; φ6 emerges.
        discoverer.delete([3])
        masks = set(discoverer.dc_masks)
        assert phi[6] in masks
        assert phi[2] not in masks  # subsumed by the minimal φ6
