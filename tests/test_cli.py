"""Tests for the repro-dc command-line interface (in-process)."""

import csv

import pytest

from repro.cli import main


@pytest.fixture
def staff_csv(tmp_path):
    path = tmp_path / "staff.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
        writer.writerows(
            [
                (1, "Ana", 2000, 5, 1),
                (2, "Sam", 2001, 4, 1),
                (3, "Ana", 2001, 2, 2),
                (4, "Kai", 2002, 2, 2),
            ]
        )
    return path


def test_discover_prints_dcs(staff_csv, capsys):
    assert main(["discover", str(staff_csv), "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "DiscoveryResult" in out
    assert "¬(" in out


def test_discover_insert_delete_rank_cycle(staff_csv, tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(["discover", str(staff_csv), "--state", str(state)]) == 0
    assert state.exists()

    new_rows = tmp_path / "new.csv"
    with open(new_rows, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
        writer.writerow((5, "Ema", 2002, 3, 1))
    assert main(["insert", str(new_rows), "--state", str(state)]) == 0
    out = capsys.readouterr().out
    assert "insert |Δr|=1" in out

    assert main(["delete", "--state", str(state), "--rids", "3"]) == 0
    out = capsys.readouterr().out
    assert "delete |Δr|=1" in out

    assert main(["rank", "--state", str(state), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "score=" in out


class TestVerifyCommand:
    def test_exit_zero_when_all_hold(self, staff_csv, capsys):
        assert (
            main(
                [
                    "verify",
                    str(staff_csv),
                    "--dc",
                    "!(t.Id = t'.Id)",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "holds" in out
        assert "1/1 constraints hold" in out

    def test_exit_one_with_violating_pairs(self, staff_csv, capsys):
        assert (
            main(
                [
                    "verify",
                    str(staff_csv),
                    "--dc",
                    "!(t.Name = t'.Name)",  # two Anas
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "2 pairs" in out
        assert "t0 ⋈ t2" in out

    def test_dcs_file_with_comments(self, staff_csv, tmp_path, capsys):
        dcs_file = tmp_path / "rules.txt"
        dcs_file.write_text(
            "# keys\n!(t.Id = t'.Id)\n\n!(t.Name = t'.Name)\n"
        )
        assert (
            main(["verify", str(staff_csv), "--dcs-file", str(dcs_file)]) == 1
        )
        out = capsys.readouterr().out
        assert "1/2 constraints hold" in out

    def test_requires_constraints(self, staff_csv, capsys):
        assert main(["verify", str(staff_csv)]) == 2
        assert "pass --dc" in capsys.readouterr().err

    def test_unparseable_dc_is_usage_error(self, staff_csv, capsys):
        assert (
            main(["verify", str(staff_csv), "--dc", "!(t.Nope = t'.Nope)"])
            == 2
        )
        assert "verify:" in capsys.readouterr().err

    def test_saved_state_resumes_incrementally(self, staff_csv, tmp_path, capsys):
        state = tmp_path / "verify.state.json"
        assert (
            main(
                [
                    "verify",
                    str(staff_csv),
                    "--dc",
                    "!(t.Id = t'.Id)",
                    "--state",
                    str(state),
                ]
            )
            == 0
        )
        assert state.exists()
        # The saved verify-mode state maintains verdicts through the
        # ordinary insert command: a duplicate Id flips the constraint.
        import csv as csv_module

        new_rows = tmp_path / "dup.csv"
        with open(new_rows, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
            writer.writerow((1, "Dup", 2003, 1, 1))
        assert main(["insert", str(new_rows), "--state", str(state)]) == 0
        from repro.core.state_io import load_state

        restored = load_state(state)
        assert restored.mode == "verify"
        report = restored.verification_report()
        assert report["n_violated"] == 1


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Adult" in out and "UCE" in out


def test_datasets_generation(tmp_path, capsys):
    out_path = tmp_path / "dit.csv"
    assert main(["datasets", "Dit", "--rows", "25", "--out", str(out_path)]) == 0
    with open(out_path) as handle:
        rows = list(csv.reader(handle))
    assert len(rows) == 26  # header + 25
    assert rows[0][0] == "id"


def test_workers_flag_produces_identical_state(staff_csv, tmp_path, capsys):
    serial_state = tmp_path / "serial.json"
    pooled_state = tmp_path / "pooled.json"
    assert main(["discover", str(staff_csv), "--state", str(serial_state)]) == 0
    assert main(
        ["discover", str(staff_csv), "--workers", "2", "--state", str(pooled_state)]
    ) == 0
    assert serial_state.read_bytes() == pooled_state.read_bytes()

    assert main(
        ["delete", "--state", str(pooled_state), "--rids", "1", "2",
         "--workers", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "delete |Δr|=2" in out


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


class TestSessionCommands:
    """The durable-session life cycle through the CLI."""

    def _init(self, staff_csv, tmp_path, extra=()):
        session_dir = tmp_path / "sess"
        assert main(
            ["session", "init", str(staff_csv), "--dir", str(session_dir),
             "--checkpoint-every", "2", "--top", "3", *extra]
        ) == 0
        return session_dir

    def test_init_creates_recoverable_directory(self, staff_csv, tmp_path, capsys):
        session_dir = self._init(staff_csv, tmp_path)
        out = capsys.readouterr().out
        assert "durable session initialized" in out
        assert (session_dir / "session.json").exists()
        assert (session_dir / "wal.log").exists()
        assert list((session_dir / "checkpoints").glob("ckpt-*.json"))

    def test_insert_delete_status_cycle(self, staff_csv, tmp_path, capsys):
        session_dir = self._init(staff_csv, tmp_path)
        new_rows = tmp_path / "new.csv"
        with open(new_rows, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
            writer.writerow((5, "Ema", 2002, 3, 1))
        assert main(
            ["session", "insert", str(session_dir), str(new_rows), "--top", "3"]
        ) == 0
        assert "insert |Δr|=1" in capsys.readouterr().out

        assert main(
            ["session", "delete", str(session_dir), "--rids", "2", "--top", "3"]
        ) == 0
        assert "delete |Δr|=1" in capsys.readouterr().out

        assert main(["session", "status", str(session_dir)]) == 0
        out = capsys.readouterr().out
        assert "rows                 4" in out
        assert "pending WAL records" in out

    def test_recover_replays_wal_tail(self, staff_csv, tmp_path, capsys):
        from repro.durability import DurableSession

        session_dir = self._init(staff_csv, tmp_path)
        # One batch past the checkpoint cadence stays pending in the WAL.
        with DurableSession.recover(session_dir) as session:
            session.insert([(5, "Ema", 2002, 3, 1)])
        capsys.readouterr()
        assert main(
            ["session", "recover", str(session_dir), "--checkpoint"]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 1 WAL records" in out
        assert "checkpoint written to" in out
        assert main(["session", "status", str(session_dir)]) == 0
        assert "pending WAL records  0" in capsys.readouterr().out

    def test_session_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["session"])


def test_discover_without_cross_columns(staff_csv, capsys):
    assert main(
        ["discover", str(staff_csv), "--no-cross-columns", "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "DiscoveryResult" in out


def test_discover_null_policy(tmp_path, capsys):
    path = tmp_path / "holes.csv"
    path.write_text("A,B\n1,x\n?,y\n3,z\n")
    assert main(["discover", str(path), "--null-policy", "drop"]) == 0
    assert "rows=2" in capsys.readouterr().out


def test_profile_command(staff_csv, capsys):
    assert main(["profile", str(staff_csv)]) == 0
    out = capsys.readouterr().out
    assert "distinct evidences" in out
    assert "key-like" in out  # the Id column


def test_discover_trace_prints_span_tree(staff_csv, capsys):
    assert main(["discover", str(staff_csv), "--trace", "--top", "0"]) == 0
    out = capsys.readouterr().out
    # Nested span tree with the evidence sub-steps, then the metrics block.
    assert "fit" in out
    for span in ("space", "evidence", "enumeration", "indexes", "scan"):
        assert span in out
    assert "metrics:" in out
    assert "evidence.pairs_compared" in out


def test_metrics_out_json(staff_csv, tmp_path, capsys):
    import json

    path = tmp_path / "run.json"
    assert main(
        ["discover", str(staff_csv), "--metrics-out", str(path)]
    ) == 0
    payload = json.loads(path.read_text())
    assert payload["operation"] == "fit"
    assert payload["spans"]["name"] == "fit"
    assert payload["metrics"]["counters"]["evidence.pairs_compared"] > 0
    assert f"metrics written to {path}" in capsys.readouterr().out


def test_metrics_out_prometheus(staff_csv, tmp_path):
    from repro.observability import parse_prometheus

    path = tmp_path / "run.prom"
    assert main(
        ["discover", str(staff_csv), "--metrics-out", str(path)]
    ) == 0
    samples = parse_prometheus(path.read_text())
    assert samples["repro_evidence_pairs_compared_total"] > 0
    assert "repro_discoverer_rows" in samples


def test_stats_on_csv(staff_csv, capsys):
    assert main(["stats", str(staff_csv)]) == 0
    out = capsys.readouterr().out
    assert "minimal DCs" in out
    assert "tuple index" in out
    assert "column indexes:" in out
    assert "evidence.pairs_compared" in out  # pipeline metrics block


def test_stats_on_state(staff_csv, tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(["discover", str(staff_csv), "--state", str(state)]) == 0
    capsys.readouterr()
    assert main(["stats", "--state", str(state)]) == 0
    out = capsys.readouterr().out
    assert "rows                 4" in out
    assert "distinct evidences" in out


def test_stats_requires_exactly_one_input(staff_csv, tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(["discover", str(staff_csv), "--state", str(state)]) == 0
    assert main(["stats"]) == 2
    assert main(["stats", str(staff_csv), "--state", str(state)]) == 2
    assert "not both/neither" in capsys.readouterr().err


def test_log_level_flag(staff_csv, capsys):
    import logging

    assert main(
        ["--log-level", "debug", "discover", str(staff_csv), "--top", "0"]
    ) == 0
    root = logging.getLogger("repro")
    assert root.level == logging.DEBUG
    assert len(root.handlers) == 1
    assert root.propagate is False
    # Repeated invocations must not stack handlers.
    assert main(["--log-level", "info", "datasets"]) == 0
    assert len(root.handlers) == 1
