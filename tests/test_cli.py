"""Tests for the repro-dc command-line interface (in-process)."""

import csv

import pytest

from repro.cli import main


@pytest.fixture
def staff_csv(tmp_path):
    path = tmp_path / "staff.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
        writer.writerows(
            [
                (1, "Ana", 2000, 5, 1),
                (2, "Sam", 2001, 4, 1),
                (3, "Ana", 2001, 2, 2),
                (4, "Kai", 2002, 2, 2),
            ]
        )
    return path


def test_discover_prints_dcs(staff_csv, capsys):
    assert main(["discover", str(staff_csv), "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "DiscoveryResult" in out
    assert "¬(" in out


def test_discover_insert_delete_rank_cycle(staff_csv, tmp_path, capsys):
    state = tmp_path / "state.json"
    assert main(["discover", str(staff_csv), "--state", str(state)]) == 0
    assert state.exists()

    new_rows = tmp_path / "new.csv"
    with open(new_rows, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
        writer.writerow((5, "Ema", 2002, 3, 1))
    assert main(["insert", str(new_rows), "--state", str(state)]) == 0
    out = capsys.readouterr().out
    assert "insert |Δr|=1" in out

    assert main(["delete", "--state", str(state), "--rids", "3"]) == 0
    out = capsys.readouterr().out
    assert "delete |Δr|=1" in out

    assert main(["rank", "--state", str(state), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "score=" in out


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Adult" in out and "UCE" in out


def test_datasets_generation(tmp_path, capsys):
    out_path = tmp_path / "dit.csv"
    assert main(["datasets", "Dit", "--rows", "25", "--out", str(out_path)]) == 0
    with open(out_path) as handle:
        rows = list(csv.reader(handle))
    assert len(rows) == 26  # header + 25
    assert rows[0][0] == "id"


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_discover_without_cross_columns(staff_csv, capsys):
    assert main(
        ["discover", str(staff_csv), "--no-cross-columns", "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "DiscoveryResult" in out


def test_discover_null_policy(tmp_path, capsys):
    path = tmp_path / "holes.csv"
    path.write_text("A,B\n1,x\n?,y\n3,z\n")
    assert main(["discover", str(path), "--null-policy", "drop"]) == 0
    assert "rows=2" in capsys.readouterr().out


def test_profile_command(staff_csv, capsys):
    assert main(["profile", str(staff_csv)]) == 0
    out = capsys.readouterr().out
    assert "distinct evidences" in out
    assert "key-like" in out  # the Id column
