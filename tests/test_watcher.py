"""Tests for the incremental violation watcher."""

import random

import pytest

from repro import DCDiscoverer, relation_from_rows
from repro.dcs import DenialConstraint, find_violations
from repro.dcs.watcher import ViolationWatcher
from repro.evidence.indexes import ColumnIndexes
from repro.predicates import build_predicate_space, parse_dc
from tests.conftest import random_rows


def watched_dcs(space, texts):
    return [DenialConstraint(parse_dc(text, space), space) for text in texts]


class TestInitialScan:
    def test_matches_oracle(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(
            space, ["!(t.Name = t'.Name)", "!(t.Level = t'.Level)"]
        )
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        for dc in dcs:
            assert watcher.violations(dc) == set(find_violations(dc, staff))

    def test_valid_dc_has_no_violations(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Id = t'.Id)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        assert watcher.violations(dcs[0]) == set()
        assert watcher.violated_dcs() == []

    def test_unwatched_dc_raises(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Id = t'.Id)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        other = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        with pytest.raises(KeyError, match="not watched"):
            watcher.violations(other)


class TestIncrementalMaintenance:
    @pytest.mark.parametrize("seed", range(4))
    def test_tracks_oracle_across_updates(self, seed):
        rng = random.Random(seed)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 12))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        space = discoverer.space
        dcs = watched_dcs(
            space,
            ["!(t.A = t'.A)", "!(t.B = t'.B & t.C != t'.C)", "!(t.A < t'.C)"],
        )
        watcher = discoverer.attach_violation_watcher(dcs)
        for _ in range(3):
            discoverer.insert(random_rows(rng, 3))
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 2))
            for dc in dcs:
                assert watcher.violations(dc) == set(
                    find_violations(dc, discoverer.relation)
                )

    def test_insert_report_contains_only_new_pairs(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        indexes = ColumnIndexes(staff)
        watcher = ViolationWatcher(staff, indexes, dcs)
        before = watcher.violations(dcs[0])
        new_rids = staff.insert([(9, "Ana", 2005, 1, 1)])
        indexes.add_rows(new_rids)
        report = watcher.on_insert(new_rids)
        fresh = report[dcs[0].mask]
        assert all(new_rids[0] in pair for pair in fresh)
        assert watcher.violations(dcs[0]) == before | fresh
        # Two Ana rows existed; the new Ana clashes with both.
        assert len(fresh) == 4

    def test_intra_batch_pairs_reported_once(self):
        relation = relation_from_rows(["A"], [(1,), (2,)])
        space = build_predicate_space(relation)
        dcs = [DenialConstraint(parse_dc("!(t.A = t'.A)", space), space)]
        indexes = ColumnIndexes(relation)
        watcher = ViolationWatcher(relation, indexes, dcs)
        new_rids = relation.insert([(7,), (7,)])
        indexes.add_rows(new_rids)
        report = watcher.on_insert(new_rids)
        assert report[dcs[0].mask] == {(2, 3), (3, 2)}

    def test_delete_report(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        indexes = ColumnIndexes(staff)
        watcher = ViolationWatcher(staff, indexes, dcs)
        report = watcher.on_delete([2])  # one of the two Anas
        assert report[dcs[0].mask] == {(0, 2), (2, 0)}
        assert watcher.violations(dcs[0]) == set()
        assert watcher.total_violations() == 0

class TestDirectMixedWorkloads:
    """Drive ``on_insert`` / ``on_delete`` by hand — no discoverer in the
    loop — and hold the watcher to the ``find_violations`` oracle after
    every single step of mixed insert→delete→insert workloads."""

    DC_TEXTS = ["!(t.A = t'.A)", "!(t.B = t'.B & t.C != t'.C)", "!(t.A <= t'.C)"]

    @staticmethod
    def oracle(dcs, relation):
        return {dc.mask: set(find_violations(dc, relation)) for dc in dcs}

    def build(self, rng, n_rows=10):
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, n_rows))
        space = build_predicate_space(relation)
        dcs = watched_dcs(space, self.DC_TEXTS)
        indexes = ColumnIndexes(relation)
        return relation, dcs, indexes, ViolationWatcher(relation, indexes, dcs)

    def apply_insert(self, relation, indexes, watcher, rows):
        rids = relation.insert(rows)
        indexes.add_rows(rids)
        return rids, watcher.on_insert(rids)

    def apply_delete(self, relation, indexes, watcher, rids):
        relation.delete(rids)
        indexes.remove_rows(rids)
        return watcher.on_delete(rids)

    def test_reinserted_value_pairs_use_the_new_rid(self):
        relation = relation_from_rows(["A", "B", "C"], [(1, "a", 0), (1, "b", 1)])
        space = build_predicate_space(relation)
        dcs = watched_dcs(space, ["!(t.A = t'.A)"])
        indexes = ColumnIndexes(relation)
        watcher = ViolationWatcher(relation, indexes, dcs)
        assert watcher.violations(dcs[0]) == {(0, 1), (1, 0)}

        # Delete rid 1, then insert a row with the very same values: the
        # clash reappears, but keyed to the fresh rid (rids never recycle).
        removed = self.apply_delete(relation, indexes, watcher, [1])
        assert removed[dcs[0].mask] == {(0, 1), (1, 0)}
        assert watcher.violations(dcs[0]) == set()
        new_rids, report = self.apply_insert(
            relation, indexes, watcher, [(1, "b", 1)]
        )
        assert new_rids == [2]
        assert report[dcs[0].mask] == {(0, 2), (2, 0)}
        assert watcher.violations(dcs[0]) == {(0, 2), (2, 0)}

    def test_insert_report_is_exactly_the_oracle_delta(self):
        rng = random.Random(21)
        relation, dcs, indexes, watcher = self.build(rng)
        before = self.oracle(dcs, relation)
        _, report = self.apply_insert(
            relation, indexes, watcher, random_rows(rng, 3)
        )
        after = self.oracle(dcs, relation)
        for dc in dcs:
            assert report.get(dc.mask, set()) == after[dc.mask] - before[dc.mask]
            assert watcher.violations(dc) == after[dc.mask]

    def test_delete_report_is_exactly_the_oracle_delta(self):
        rng = random.Random(22)
        relation, dcs, indexes, watcher = self.build(rng)
        before = self.oracle(dcs, relation)
        victims = rng.sample(list(relation.rids()), 3)
        report = self.apply_delete(relation, indexes, watcher, victims)
        after = self.oracle(dcs, relation)
        for dc in dcs:
            assert report.get(dc.mask, set()) == before[dc.mask] - after[dc.mask]
            assert watcher.violations(dc) == after[dc.mask]

    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_workload_tracks_oracle_stepwise(self, seed):
        rng = random.Random(100 + seed)
        relation, dcs, indexes, watcher = self.build(rng)
        deleted_rows = []  # value-payloads of dropped rows, for re-insertion
        for step in range(12):
            alive = list(relation.rids())
            move = rng.random()
            if move < 0.4 or len(alive) < 4:
                rows = random_rows(rng, rng.randint(1, 3))
                if deleted_rows and rng.random() < 0.5:
                    rows.append(deleted_rows.pop())  # insert→delete→insert
                self.apply_insert(relation, indexes, watcher, rows)
            else:
                victims = rng.sample(alive, rng.randint(1, 2))
                deleted_rows.extend(relation.row(rid) for rid in victims)
                self.apply_delete(relation, indexes, watcher, victims)
            expected = self.oracle(dcs, relation)
            for dc in dcs:
                assert watcher.violations(dc) == expected[dc.mask], (
                    f"seed={seed} step={step} dc={dc}"
                )
        assert watcher.total_violations() == sum(
            len(pairs) for pairs in self.oracle(dcs, relation).values()
        )


class TestRepr:
    def test_repr(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        assert "1 DCs" in repr(watcher) and "2 violating pairs" in repr(watcher)
