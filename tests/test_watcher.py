"""Tests for the incremental violation watcher."""

import random

import pytest

from repro import DCDiscoverer, relation_from_rows
from repro.dcs import DenialConstraint, find_violations
from repro.dcs.watcher import ViolationWatcher
from repro.evidence.indexes import ColumnIndexes
from repro.predicates import build_predicate_space, parse_dc
from tests.conftest import random_rows


def watched_dcs(space, texts):
    return [DenialConstraint(parse_dc(text, space), space) for text in texts]


class TestInitialScan:
    def test_matches_oracle(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(
            space, ["!(t.Name = t'.Name)", "!(t.Level = t'.Level)"]
        )
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        for dc in dcs:
            assert watcher.violations(dc) == set(find_violations(dc, staff))

    def test_valid_dc_has_no_violations(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Id = t'.Id)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        assert watcher.violations(dcs[0]) == set()
        assert watcher.violated_dcs() == []

    def test_unwatched_dc_raises(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Id = t'.Id)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        other = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        with pytest.raises(KeyError, match="not watched"):
            watcher.violations(other)


class TestIncrementalMaintenance:
    @pytest.mark.parametrize("seed", range(4))
    def test_tracks_oracle_across_updates(self, seed):
        rng = random.Random(seed)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 12))
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        space = discoverer.space
        dcs = watched_dcs(
            space,
            ["!(t.A = t'.A)", "!(t.B = t'.B & t.C != t'.C)", "!(t.A < t'.C)"],
        )
        watcher = discoverer.attach_violation_watcher(dcs)
        for _ in range(3):
            discoverer.insert(random_rows(rng, 3))
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 2))
            for dc in dcs:
                assert watcher.violations(dc) == set(
                    find_violations(dc, discoverer.relation)
                )

    def test_insert_report_contains_only_new_pairs(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        indexes = ColumnIndexes(staff)
        watcher = ViolationWatcher(staff, indexes, dcs)
        before = watcher.violations(dcs[0])
        new_rids = staff.insert([(9, "Ana", 2005, 1, 1)])
        indexes.add_rows(new_rids)
        report = watcher.on_insert(new_rids)
        fresh = report[dcs[0].mask]
        assert all(new_rids[0] in pair for pair in fresh)
        assert watcher.violations(dcs[0]) == before | fresh
        # Two Ana rows existed; the new Ana clashes with both.
        assert len(fresh) == 4

    def test_intra_batch_pairs_reported_once(self):
        relation = relation_from_rows(["A"], [(1,), (2,)])
        space = build_predicate_space(relation)
        dcs = [DenialConstraint(parse_dc("!(t.A = t'.A)", space), space)]
        indexes = ColumnIndexes(relation)
        watcher = ViolationWatcher(relation, indexes, dcs)
        new_rids = relation.insert([(7,), (7,)])
        indexes.add_rows(new_rids)
        report = watcher.on_insert(new_rids)
        assert report[dcs[0].mask] == {(2, 3), (3, 2)}

    def test_delete_report(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        indexes = ColumnIndexes(staff)
        watcher = ViolationWatcher(staff, indexes, dcs)
        report = watcher.on_delete([2])  # one of the two Anas
        assert report[dcs[0].mask] == {(0, 2), (2, 0)}
        assert watcher.violations(dcs[0]) == set()
        assert watcher.total_violations() == 0

    def test_repr(self, staff):
        space = build_predicate_space(staff)
        dcs = watched_dcs(space, ["!(t.Name = t'.Name)"])
        watcher = ViolationWatcher(staff, ColumnIndexes(staff), dcs)
        assert "1 DCs" in repr(watcher) and "2 violating pairs" in repr(watcher)
