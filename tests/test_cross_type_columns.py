"""Mixed int/float cross-column behaviour.

Python hashes ``2`` and ``2.0`` identically, so cross-column predicates
between INTEGER and FLOAT columns must agree between the hash-probing
pipeline and direct evaluation — a classic source of silent drift.
"""

import random

import pytest

from repro.enumeration import DynHS, invert_evidence
from repro.evidence import build_evidence_state, naive_evidence_set
from repro.predicates import Operator, build_predicate_space
from repro.relational import relation_from_rows


@pytest.fixture
def mixed_relation():
    rows = [
        (1, 1.0), (2, 2.5), (2, 2.0), (3, 1.0),
        (1, 3.0), (3, 3.0), (2, 1.0), (1, 2.0),
    ]
    return relation_from_rows(["I", "F"], rows)


class TestMixedTypes:
    def test_cross_group_admitted(self, mixed_relation):
        space = build_predicate_space(mixed_relation)
        pairs = {
            (g.predicates[0].lhs, g.predicates[0].rhs)
            for g in space.groups
            if not g.is_single_column
        }
        assert ("I", "F") in pairs and ("F", "I") in pairs

    def test_pipeline_matches_oracle(self, mixed_relation):
        space = build_predicate_space(mixed_relation)
        state = build_evidence_state(mixed_relation, space)
        assert state.evidence == naive_evidence_set(mixed_relation, space)

    def test_int_float_equality_in_evidence(self, mixed_relation):
        space = build_predicate_space(mixed_relation)
        bit = space.bit("I", Operator.EQ, "F")
        # Pair (rid 0: I=1) with (rid 3: F=1.0): 1 == 1.0 must register.
        evidence = space.evidence_of_pair(
            mixed_relation.row(0), mixed_relation.row(3)
        )
        assert (evidence >> bit) & 1

    def test_dynamic_maintenance_with_mixed_types(self, mixed_relation):
        from repro import DCDiscoverer

        discoverer = DCDiscoverer(mixed_relation)
        discoverer.fit()
        rng = random.Random(0)
        discoverer.insert(
            [(rng.randint(1, 3), float(rng.randint(1, 3))) for _ in range(4)]
        )
        discoverer.delete(list(discoverer.relation.rids())[:3])
        static = invert_evidence(
            discoverer.space,
            list(naive_evidence_set(discoverer.relation, discoverer.space)),
        )
        assert discoverer.dc_masks == sorted(m for m in static if m)


class TestDynHSIncrementalBootstrap:
    def test_matches_mmcs_bootstrap(self, abc_factory):
        relation = abc_factory(10, 4)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        via_mmcs = DynHS(space, evidence, bootstrap="mmcs")
        via_incremental = DynHS(space, evidence, bootstrap="incremental")
        assert via_mmcs.dc_masks == via_incremental.dc_masks
        # And both continue identically under a delete.
        removed = [evidence[0]]
        remaining = evidence[1:]
        via_mmcs.delete_evidence(removed, remaining)
        via_incremental.delete_evidence(removed, remaining)
        assert via_mmcs.dc_masks == via_incremental.dc_masks
