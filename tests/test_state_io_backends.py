"""State round trips across enumeration backends and edge shapes."""



from repro import DCDiscoverer, load_state, relation_from_rows, save_state
from repro.workloads import staff_relation


class TestDynHSBackendState:
    def test_roundtrip_rebootstraps_dynhs(self, tmp_path):
        discoverer = DCDiscoverer(staff_relation(), enumeration_backend="dynhs")
        discoverer.fit()
        path = tmp_path / "state.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        assert loaded.enumeration_backend == "dynhs"
        assert loaded.dc_masks == discoverer.dc_masks
        loaded.insert([(5, "Ema", 2002, 3, 1)])
        discoverer.insert([(5, "Ema", 2002, 3, 1)])
        assert loaded.dc_masks == discoverer.dc_masks


class TestEdgeShapes:
    def test_single_row_state(self, tmp_path):
        relation = relation_from_rows(["A", "B"], [(1, "x")])
        discoverer = DCDiscoverer(relation, allow_cross_columns=False)
        discoverer.fit()
        assert discoverer.dc_masks == []
        path = tmp_path / "one.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        loaded.insert([(2, "y"), (1, "x")])
        discoverer.insert([(2, "y"), (1, "x")])
        assert loaded.dc_masks == discoverer.dc_masks
        assert loaded.evidence_set == discoverer.evidence_set

    def test_no_tuple_index_state(self, tmp_path):
        discoverer = DCDiscoverer(
            staff_relation(),
            maintain_tuple_index=False,
            delete_strategy="recompute",
        )
        discoverer.fit()
        path = tmp_path / "noindex.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        assert loaded.engine_state.tuple_index is None
        loaded.delete([0])
        discoverer.delete([0])
        assert loaded.dc_masks == discoverer.dc_masks

    def test_state_with_monitor_not_serialized(self, tmp_path):
        """Monitors are session-local; state round trips without them."""
        discoverer = DCDiscoverer(staff_relation())
        discoverer.fit()
        discoverer.attach_approximate_monitor(0.1)
        path = tmp_path / "m.json"
        save_state(discoverer, path)
        loaded = load_state(path)
        loaded.insert([(5, "Ema", 2002, 3, 1)])  # no monitor, no error
        assert len(loaded.dcs) > 0
