"""Tests for semantic DC implication and minimization.

The oracle: for small predicate spaces, implication between predicate
sets is checked by enumerating per-group valuations (the satisfiable
patterns are exactly the possible per-group outcomes).
"""

import itertools
import random

import pytest

from repro.dcs.implication import (
    dc_implies,
    group_closure,
    predicates_closure,
    satisfaction_implies,
    semantic_minimize,
)
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.predicates import Operator, build_predicate_space, parse_dc
from repro.workloads import staff_relation


@pytest.fixture(scope="module")
def space():
    return build_predicate_space(staff_relation())


def brute_satisfaction_implies(space, mask_p, mask_q):
    """Enumerate all per-group outcome combinations that satisfy P and
    check they satisfy Q."""
    group_choices = []
    for group in space.groups:
        bits_p = mask_p & group.mask
        options = [
            pattern for pattern in group.patterns if bits_p & ~pattern == 0
        ]
        if bits_p and not options:
            return True  # P unsatisfiable: implies anything
        group_choices.append(options or list(group.patterns))
    relevant = [
        (group, options)
        for group, options in zip(space.groups, group_choices)
        if (mask_p | mask_q) & group.mask
    ]
    for combo in itertools.product(*(options for _, options in relevant)):
        outcome = 0
        for bits in combo:
            outcome |= bits
        if mask_p & ~outcome == 0 and mask_q & ~outcome != 0:
            return False
    return True


class TestGroupClosure:
    def test_eq_closes_to_eq_le_ge(self, space):
        group = next(
            g for g in space.groups
            if g.is_single_column and g.numeric and g.predicates[0].lhs == "Level"
        )
        eq = 1 << group.bit_of_op[Operator.EQ]
        closure = group_closure(group, eq)
        for op in (Operator.EQ, Operator.LE, Operator.GE):
            assert closure & (1 << group.bit_of_op[op])
        assert not closure & (1 << group.bit_of_op[Operator.NE])

    def test_le_ge_closes_like_eq(self, space):
        group = next(
            g for g in space.groups
            if g.is_single_column and g.numeric and g.predicates[0].lhs == "Level"
        )
        le_ge = (1 << group.bit_of_op[Operator.LE]) | (
            1 << group.bit_of_op[Operator.GE]
        )
        eq = 1 << group.bit_of_op[Operator.EQ]
        assert group_closure(group, le_ge) == group_closure(group, eq)

    def test_unsatisfiable_closes_to_group(self, space):
        group = next(g for g in space.groups if g.numeric)
        eq_ne = (1 << group.bit_of_op[Operator.EQ]) | (
            1 << group.bit_of_op[Operator.NE]
        )
        assert group_closure(group, eq_ne) == group.mask


class TestImplication:
    def test_known_equivalence(self, space):
        eq = parse_dc("!(t.Level = t'.Level)", space)
        le_ge = parse_dc("!(t.Level <= t'.Level & t.Level >= t'.Level)", space)
        assert dc_implies(space, eq, le_ge)
        assert dc_implies(space, le_ge, eq)

    def test_strict_implication(self, space):
        lt = parse_dc("!(t.Hired < t'.Hired)", space)
        le = parse_dc("!(t.Hired <= t'.Hired)", space)
        # ¬(≤) forbids more pairs, hence implies ¬(<).
        assert dc_implies(space, le, lt)
        assert not dc_implies(space, lt, le)

    def test_subset_implication(self, space):
        small = parse_dc("!(t.Id = t'.Id)", space)
        big = parse_dc("!(t.Id = t'.Id & t.Level = t'.Level)", space)
        assert dc_implies(space, small, big)
        assert not dc_implies(space, big, small)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, space, seed):
        rng = random.Random(seed)
        for _ in range(30):
            mask_p = 0
            mask_q = 0
            for _ in range(rng.randint(1, 3)):
                mask_p |= 1 << rng.randrange(space.n_bits)
            for _ in range(rng.randint(1, 3)):
                mask_q |= 1 << rng.randrange(space.n_bits)
            assert satisfaction_implies(space, mask_p, mask_q) == (
                brute_satisfaction_implies(space, mask_p, mask_q)
            ), (bin(mask_p), bin(mask_q))

    def test_closure_is_monotone_and_idempotent(self, space):
        rng = random.Random(1)
        for _ in range(30):
            mask = 0
            for _ in range(rng.randint(1, 4)):
                mask |= 1 << rng.randrange(space.n_bits)
            closure = predicates_closure(space, mask)
            assert mask & ~closure == 0
            assert predicates_closure(space, closure) == closure


class TestSemanticMinimize:
    def test_removes_equivalent_spelling(self, space):
        eq = parse_dc("!(t.Level = t'.Level)", space)
        le_ge = parse_dc("!(t.Level <= t'.Level & t.Level >= t'.Level)", space)
        kept = semantic_minimize(space, [eq, le_ge])
        assert kept == [eq]

    def test_on_real_discovery_output(self):
        relation = staff_relation()
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        masks = [m for m in invert_evidence(space, evidence) if m]
        minimized = semantic_minimize(space, masks)
        assert 0 < len(minimized) < len(masks)
        # No kept DC may imply another kept DC (antichain semantically).
        for a in minimized[:40]:
            for b in minimized[:40]:
                if a != b:
                    assert not dc_implies(space, a, b) or not dc_implies(
                        space, b, a
                    )

    def test_deterministic(self, space):
        eq = parse_dc("!(t.Level = t'.Level)", space)
        le_ge = parse_dc("!(t.Level <= t'.Level & t.Level >= t'.Level)", space)
        assert semantic_minimize(space, [le_ge, eq]) == semantic_minimize(
            space, [eq, le_ge]
        )
