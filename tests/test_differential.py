"""Differential testing: incremental maintenance vs. a static oracle.

The safety net for every evidence-path rework: for seeded randomized
workloads from :mod:`repro.workloads.updates`, incremental insert/delete
discovery must land on exactly the evidence set and minimal DC cover that
a *static re-discovery on the final table* produces.  The static run is
the oracle — if the two ever diverge, the incremental engine is silently
drifting (the failure mode dynamic engines are most prone to).

The oracle reuses the incremental discoverer's predicate space: the space
is frozen at ``fit()`` time from the initial data by design, so a fresh
``fit()`` on the final table could legitimately choose different
cross-column predicates.  Evidence multisets are invariant under rid
relabeling, which is what makes the comparison well-defined even though
the oracle relation is densely re-numbered.
"""

import pytest

from repro.core.backends import make_backend
from repro.core.discoverer import DCDiscoverer
from repro.evidence.builder import build_evidence_state
from repro.relational.loader import relation_from_rows
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import pick_delete_rids, split_for_insert

DATASET = "Tax"
TOTAL_ROWS = 90

INSERT_SEEDS = (1, 2, 3)
DELETE_SEEDS = (11, 12, 13)


def _rows(seed: int = 0):
    return DATASETS[DATASET].rows(TOTAL_ROWS, seed=seed)


def static_oracle(discoverer: DCDiscoverer):
    """Static re-discovery on the discoverer's current table, using its
    frozen predicate space.  Returns ``(evidence counts, Σ mask set)``.

    Works for any discoverer (the crash-matrix suite reuses it): the
    oracle relation is rebuilt from the live rows under the discoverer's
    own header.
    """
    fresh = relation_from_rows(
        list(discoverer.relation.schema.names), list(discoverer.relation.rows())
    )
    state = build_evidence_state(fresh, discoverer.space)
    backend = make_backend("dynei", discoverer.space)
    backend.bootstrap(list(state.evidence))
    sigma = {mask for mask in backend.masks if mask}
    return state.evidence.counts, sigma


def assert_matches_oracle(discoverer: DCDiscoverer):
    oracle_evidence, oracle_sigma = static_oracle(discoverer)
    assert discoverer.evidence_set.counts == oracle_evidence
    assert set(discoverer.dc_masks) == oracle_sigma


@pytest.mark.parametrize("seed", INSERT_SEEDS)
def test_insert_matches_static_oracle(seed):
    workload = split_for_insert(_rows(), ratio=0.25, retain=0.7, seed=seed)
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    discoverer.insert(list(workload.delta_rows))
    assert_matches_oracle(discoverer)


@pytest.mark.parametrize("seed", DELETE_SEEDS)
@pytest.mark.parametrize("delete_strategy", ["index", "recompute"])
def test_delete_matches_static_oracle(seed, delete_strategy):
    relation = relation_from_rows(DATASETS[DATASET].header, _rows())
    discoverer = DCDiscoverer(relation, delete_strategy=delete_strategy)
    discoverer.fit()
    discoverer.delete(pick_delete_rids(discoverer.relation, 0.2, seed=seed))
    assert_matches_oracle(discoverer)


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_mixed_update_sequence_matches_static_oracle(seed):
    """Several rounds of interleaved inserts and deletes — staleness in
    the per-tuple index accumulates across batches, which single-batch
    tests never exercise."""
    workload = split_for_insert(_rows(), ratio=0.3, retain=0.6, seed=seed)
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    delta = list(workload.delta_rows)
    half = len(delta) // 2
    discoverer.insert(delta[:half])
    discoverer.delete(pick_delete_rids(discoverer.relation, 0.15, seed=seed))
    discoverer.insert(delta[half:])
    discoverer.delete(
        pick_delete_rids(discoverer.relation, 0.1, seed=seed + 100)
    )
    assert_matches_oracle(discoverer)


def test_insert_base_strategy_matches_static_oracle():
    """The Figure 9 'Base' collection strategy must agree with the oracle
    too, not just the default 'Opt' path."""
    workload = split_for_insert(_rows(), ratio=0.25, retain=0.7, seed=5)
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, infer_within_delta=False)
    discoverer.fit()
    discoverer.insert(list(workload.delta_rows))
    assert_matches_oracle(discoverer)


def test_parallel_incremental_matches_static_oracle():
    """The differential net also covers the sharded execution path."""
    workload = split_for_insert(_rows(), ratio=0.25, retain=0.7, seed=7)
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=2)
    discoverer.fit()
    discoverer.insert(list(workload.delta_rows))
    discoverer.delete(pick_delete_rids(discoverer.relation, 0.2, seed=7))
    assert_matches_oracle(discoverer)
