"""Small units: bit utilities, backends registry, result formatting."""

import pytest

from repro.bitmaps.bitutils import bits_from, iter_bits, popcount
from repro.core.backends import DynEIBackend, DynHSBackend, make_backend
from repro.core.results import DiscoveryResult, UpdateResult
from repro.predicates import build_predicate_space
from repro.workloads import staff_relation


class TestBitUtils:
    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_bits_from_roundtrip(self):
        positions = [0, 7, 63, 130]
        assert list(iter_bits(bits_from(positions))) == positions

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3


class TestBackendRegistry:
    def test_make_backend(self):
        space = build_predicate_space(staff_relation())
        assert isinstance(make_backend("dynei", space), DynEIBackend)
        assert isinstance(make_backend("dynhs", space), DynHSBackend)
        with pytest.raises(KeyError, match="available"):
            make_backend("nope", space)

    def test_dynhs_backend_cannot_restore_masks(self):
        space = build_predicate_space(staff_relation())
        backend = make_backend("dynhs", space)
        with pytest.raises(NotImplementedError):
            backend.set_masks([1, 2])


class TestResultFormatting:
    def test_discovery_result_str(self):
        result = DiscoveryResult(
            n_rows=10, n_predicates=20, n_evidence=30, n_dcs=40,
            timings={"evidence": 0.5},
        )
        text = str(result)
        assert "rows=10" in text and "evidence=30" in text

    def test_update_result_str(self):
        result = UpdateResult(
            kind="insert", delta_size=3, n_rows=13, n_evidence=50,
            n_evidence_changed=5, n_dcs=7, n_new_dcs=2, n_removed_dcs=1,
            timings={"evidence": 0.1, "enumeration": 0.2},
        )
        text = str(result)
        assert "insert" in text and "+2/-1" in text and "+5 changed" in text
