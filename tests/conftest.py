"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.durability.faults import get_injector
from repro.relational import relation_from_rows
from repro.workloads import staff_relation

# Hypothesis budgets.  Tests that pin max_examples keep their pin; tests
# that only set deadline=None (the differential verification suites)
# inherit the active profile, so the dedicated CI job can re-run them
# with a 10x example budget via HYPOTHESIS_PROFILE=verification.
hypothesis_settings.register_profile("default", max_examples=30, deadline=None)
hypothesis_settings.register_profile(
    "verification", max_examples=300, deadline=None
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default")
)


@pytest.fixture
def fault_injector():
    """The global fault injector, guaranteed disarmed after the test."""
    injector = get_injector()
    injector.reset()
    yield injector
    injector.reset()


@pytest.fixture
def staff():
    """The paper's Table I staff relation (initial four tuples)."""
    return staff_relation()


@pytest.fixture
def abc_factory():
    """Factory for small random (int, str, int) relations."""

    def make(n_rows: int, seed: int, int_range: int = 4, letters: str = "abc"):
        rng = random.Random(seed)
        rows = [
            (
                rng.randint(0, int_range),
                rng.choice(letters),
                rng.randint(0, int_range - 1),
            )
            for _ in range(n_rows)
        ]
        return relation_from_rows(["A", "B", "C"], rows)

    return make


def random_rows(rng: random.Random, n_rows: int, int_range: int = 4):
    """Random (int, str, int) rows drawing from a tight domain so that
    evidence redundancy and DC structure both appear."""
    return [
        (
            rng.randint(0, int_range),
            rng.choice("abc"),
            rng.randint(0, max(1, int_range - 1)),
        )
        for _ in range(n_rows)
    ]
