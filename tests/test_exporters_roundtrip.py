"""Exporter round-trips: JSON ↔ registry ↔ Prometheus text ↔ parser.

The exposition bugs this file pins down:

- label values must be escaped per the text format v0.0.4 (backslash,
  double quote, newline) and the parser must undo none of it silently;
- ``_bucket`` series must be *cumulative* in ascending **numeric** bound
  order — a snapshot that round-tripped through ``sort_keys`` JSON
  arrives with lexicographic key order ("16" < "4") and must not corrupt
  the running totals;
- the terminal ``+Inf`` bucket always equals the observation count;
- rendering stays coherent while other threads hammer the registry.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    metric_name,
    parse_prometheus,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.observability.metrics import (
    LATENCY_BOUNDS_S,
    Histogram,
    MetricsRegistry,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("evidence.pairs_compared", 42)
    registry.inc("service.requests_total", 7)
    registry.set_gauge("discoverer.rows", 120.0)
    for value in (1, 3, 5, 17, 900):
        registry.observe("enumeration.einc_size", value)
    for value in (0.002, 0.004, 0.03, 0.3):
        registry.observe(
            "service.endpoint_seconds.GET /status",
            value,
            bounds=LATENCY_BOUNDS_S,
            exemplar="a" * 32,
        )
    return registry


class TestRoundTrip:
    def test_registry_to_prometheus_to_samples(self):
        snapshot = populated_registry().snapshot()
        samples = parse_prometheus(snapshot_to_prometheus(snapshot))
        assert samples["repro_evidence_pairs_compared_total"] == 42
        assert samples["repro_service_requests_total_total"] == 7
        assert samples["repro_discoverer_rows"] == 120.0
        assert samples["repro_enumeration_einc_size_count"] == 5
        assert samples["repro_enumeration_einc_size_sum"] == 926
        assert samples['repro_enumeration_einc_size_bucket{le="+Inf"}'] == 5

    def test_json_round_trip_preserves_exposition(self):
        """sort_keys JSON puts "16" before "4"; the exposition must not
        trust that order when accumulating bucket counts."""
        snapshot = populated_registry().snapshot()
        rehydrated = json.loads(snapshot_to_json(snapshot))
        assert snapshot_to_prometheus(rehydrated) == snapshot_to_prometheus(
            snapshot
        )

    def test_cumulative_buckets_ascend_numerically(self):
        snapshot = populated_registry().snapshot()
        text = snapshot_to_prometheus(json.loads(snapshot_to_json(snapshot)))
        rows = [
            line for line in text.splitlines()
            if line.startswith("repro_enumeration_einc_size_bucket")
        ]
        bounds, counts = [], []
        for line in rows:
            label, value = line.rsplit(" ", 1)
            bound = label.split('le="', 1)[1].rstrip('"}')
            bounds.append(float("inf") if bound == "+Inf" else float(bound))
            counts.append(int(value))
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_exemplars_survive_the_json_snapshot(self):
        snapshot = populated_registry().snapshot()
        histogram = snapshot["histograms"][
            "service.endpoint_seconds.GET /status"
        ]
        exemplars = histogram["exemplars"]
        assert all(
            record["trace_id"] == "a" * 32 for record in exemplars.values()
        )
        assert "0.3" not in exemplars  # keyed by bucket *bound*, not value
        assert any(float(bound) >= 0.3 for bound in exemplars)


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_parser_handles_escaped_label_values(self):
        line = 'metric{path="C:\\\\tmp \\"x\\""} 3\n'
        samples = parse_prometheus(line)
        assert list(samples.values()) == [3.0]

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus('metric{broken="} 1')

    def test_metric_name_sanitizes(self):
        assert (
            metric_name("service.endpoint_seconds.GET /status")
            == "repro_service_endpoint_seconds_GET__status"
        )

    def test_content_type_pins_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantile(self):
        assert Histogram().quantile(0.5) is None

    def test_quantile_bounds_check(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantiles_are_ordered_and_clamped(self):
        histogram = Histogram(bounds=LATENCY_BOUNDS_S)
        samples = [0.002, 0.003, 0.004, 0.02, 0.04, 0.2, 0.4, 2.0]
        for sample in samples:
            histogram.observe(sample)
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99
        assert min(samples) <= p50 and p99 <= max(samples)


class TestConcurrentExport:
    def test_render_while_hammering(self):
        """Exporter renders stay parseable while writer threads pound the
        same (pre-created) series — the serving layer's /metrics path."""
        registry = MetricsRegistry()
        registry.inc("hammer.counter", 0)
        # Pre-create every series (and the exemplar slot) so the hammer
        # threads only mutate values — dict *resizes* during a concurrent
        # snapshot are the service lock's job, not the registry's.
        registry.observe(
            "hammer.latency", 0.005, bounds=LATENCY_BOUNDS_S,
            exemplar="b" * 32,
        )
        stop = threading.Event()
        errors: list = []

        def hammer():
            try:
                while not stop.is_set():
                    registry.inc("hammer.counter")
                    registry.observe(
                        "hammer.latency", 0.005, exemplar="b" * 32
                    )
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            for _ in range(50):
                samples = parse_prometheus(
                    snapshot_to_prometheus(registry.snapshot())
                )
                assert "repro_hammer_counter_total" in samples
        finally:
            stop.set()
            for thread in writers:
                thread.join()
        assert errors == []
        final = parse_prometheus(snapshot_to_prometheus(registry.snapshot()))
        assert final["repro_hammer_counter_total"] == registry.counter(
            "hammer.counter"
        )
        assert (
            final['repro_hammer_latency_bucket{le="+Inf"}']
            == final["repro_hammer_latency_count"]
        )
