"""Tests for the IncDC, ECP, and FastDC baselines."""

import random

import pytest

from repro.baselines import (
    DensePredicateIndexes,
    IncDC,
    ecp_discover,
    fastdc_discover,
)
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.predicates import Operator, build_predicate_space
from repro.relational import relation_from_rows
from tests.conftest import random_rows


class TestDensePredicateIndexes:
    def test_probe_matches_reference(self):
        relation = relation_from_rows(["N", "S"], [(5, "a"), (3, "b"), (5, "a")])
        indexes = DensePredicateIndexes(relation)
        assert indexes.probe(0, Operator.EQ, 5) == 0b101
        assert indexes.probe(0, Operator.NE, 5) == 0b010
        assert indexes.probe(0, Operator.GT, 3) == 0b101
        assert indexes.probe(0, Operator.LT, 5) == 0b010
        assert indexes.probe(0, Operator.GE, 5) == 0b101
        assert indexes.probe(0, Operator.LE, 3) == 0b010
        assert indexes.probe(1, Operator.EQ, "a") == 0b101

    def test_probe_absent_value(self):
        relation = relation_from_rows(["N"], [(5,), (10,)])
        indexes = DensePredicateIndexes(relation)
        assert indexes.probe(0, Operator.GT, 7) == 0b10
        assert indexes.probe(0, Operator.LT, 7) == 0b01
        assert indexes.probe(0, Operator.EQ, 7) == 0

    def test_incremental_add(self):
        relation = relation_from_rows(["N"], [(5,), (3,)])
        indexes = DensePredicateIndexes(relation)
        new = relation.insert([(4,)])
        indexes.add_rows(new)
        assert indexes.probe(0, Operator.GT, 3) == 0b101
        assert indexes.probe(0, Operator.GT, 4) == 0b001
        assert indexes.probe(0, Operator.LT, 5) == 0b110

    def test_range_probe_on_categorical_raises(self):
        relation = relation_from_rows(["S"], [("a",)])
        indexes = DensePredicateIndexes(relation)
        with pytest.raises(ValueError):
            indexes.probe(0, Operator.LT, "a")


class TestIncDC:
    @pytest.mark.parametrize("seed", range(4))
    def test_insert_matches_static(self, seed):
        rng = random.Random(seed)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 12))
        space = build_predicate_space(relation)
        sigma = invert_evidence(
            space, list(naive_evidence_set(relation, space))
        )
        incdc = IncDC(relation, space, sigma)
        incdc.insert(random_rows(rng, 5))
        expected = invert_evidence(
            space, list(naive_evidence_set(relation, space))
        )
        assert incdc.dc_masks == expected

    def test_multiple_insert_batches(self):
        rng = random.Random(11)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 10))
        space = build_predicate_space(relation)
        sigma = invert_evidence(space, list(naive_evidence_set(relation, space)))
        incdc = IncDC(relation, space, sigma)
        for _ in range(3):
            incdc.insert(random_rows(rng, 3))
            expected = invert_evidence(
                space, list(naive_evidence_set(relation, space))
            )
            assert incdc.dc_masks == expected

    def test_empty_insert(self, staff):
        space = build_predicate_space(staff)
        sigma = invert_evidence(space, list(naive_evidence_set(staff, space)))
        incdc = IncDC(staff, space, sigma)
        assert incdc.insert([]) == sorted(sigma)

    def test_delete_unsupported(self, staff):
        space = build_predicate_space(staff)
        sigma = invert_evidence(space, list(naive_evidence_set(staff, space)))
        incdc = IncDC(staff, space, sigma)
        with pytest.raises(NotImplementedError, match="insertions only"):
            incdc.delete([0])

    def test_paper_insert_example(self, staff):
        from repro.predicates import parse_dc

        space = build_predicate_space(staff)
        sigma = invert_evidence(space, list(naive_evidence_set(staff, space)))
        incdc = IncDC(staff, space, sigma)
        incdc.insert([(5, "Ema", 2002, 3, 1)])
        masks = set(incdc.dc_masks)
        phi5 = parse_dc(
            "!(t.Mgr = t'.Mgr & t.Hired < t'.Hired & t.Level < t'.Level)", space
        )
        assert phi5 in masks


class TestStaticBaselines:
    def test_ecp_fastdc_agree(self, abc_factory):
        relation = abc_factory(14, 2)
        ecp = ecp_discover(relation)
        fastdc = fastdc_discover(relation, space=ecp.space)
        assert ecp.dc_masks == fastdc.dc_masks
        assert ecp.evidence_set == fastdc.evidence_set

    def test_timings_reported(self, abc_factory):
        result = ecp_discover(abc_factory(8, 3))
        assert {"space", "evidence", "enumeration"} <= set(result.timings)
        assert result.total_time >= 0

    def test_space_reuse_skips_space_phase(self, abc_factory):
        relation = abc_factory(8, 4)
        first = ecp_discover(relation)
        second = ecp_discover(relation, space=first.space)
        assert "space" not in second.timings
