"""The crash matrix: kill the pipeline at every fault point, recover,
and demand byte-identity with an uninterrupted run.

For each registered :data:`~repro.durability.faults.FAULT_POINTS` entry ×
each operation kind {insert batch, delete batch, checkpoint}, the harness
runs a scripted workload inside a :class:`DurableSession`, arms the fault
point before the target operation, and — if the simulated crash fires —
collapses the session directory to its pessimistic post-power-loss image
(:mod:`repro.durability.crashsim`).  Recovery must then land on exactly
the serialized state (`state_to_bytes`) of an uninterrupted plain-
discoverer run over the *durable batch prefix*:

- a crash before the WAL record's fsync (``wal.append``,
  ``wal.pre_fsync``) loses the in-flight batch — the oracle excludes it;
- a crash anywhere after the fsync (including every checkpoint instant)
  keeps it — the oracle includes it.

Fault points that cannot fire during an operation (e.g. ``state_save.*``
during session updates) leave the run uninterrupted; recovery must still
be byte-identical to it, so the matrix asserts them too instead of
skipping.

The Hypothesis property test generalizes the same contract to random
batch sequences crashed at a random point, and additionally checks the
recovered engine against the *static re-discovery* oracle of
tests/test_differential.py (evidence multiset, Σ, and a tuple index that
still supports index-based deletes).
"""

import os
import random
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, DurableSession, relation_from_rows
from repro.core.state_io import state_to_bytes
from repro.durability import FAULT_POINTS, SimulatedCrash, get_injector
from tests.conftest import random_rows
from tests.test_differential import assert_matches_oracle

HEADER = ["A", "B", "C"]
BASE_SEED = 3
BASE_ROWS = 12

#: Fault points that fire before the WAL record is durable: the
#: in-flight batch never happened as far as recovery is concerned.
BATCH_LOST = {"wal.append", "wal.pre_fsync"}

OPERATIONS = ("insert", "delete", "checkpoint")


def base_rows():
    return random_rows(random.Random(BASE_SEED), BASE_ROWS)


def scripted_batches():
    """(kind, payload) setup batches shared by session and oracle runs."""
    rng = random.Random(17)
    return [
        ("insert", random_rows(rng, 3)),
        ("delete", [0, 3]),
        ("insert", random_rows(rng, 2)),
    ]


def target_batch(kind):
    rng = random.Random(23)
    if kind == "insert":
        return ("insert", random_rows(rng, 2))
    return ("delete", [1, 5])


def apply_batch(target, batch):
    kind, payload = batch
    if kind == "insert":
        target.insert(payload)
    else:
        target.delete(payload)


def oracle_bytes(batches):
    """Serialized state of an uninterrupted plain run over ``batches``."""
    discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
    discoverer.fit()
    for batch in batches:
        apply_batch(discoverer, batch)
    return state_to_bytes(discoverer)


@pytest.mark.parametrize("operation", OPERATIONS)
@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_crash_matrix(tmp_path, fault_injector, point, operation):
    session_dir = tmp_path / "session"
    setup = scripted_batches()
    discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
    # checkpoint_every=1 makes every update batch also exercise the
    # checkpoint path, so checkpoint.* points are reachable from inserts
    # and deletes; the explicit-checkpoint scenario uses a cadence the
    # workload never hits.
    cadence = 1 if operation != "checkpoint" else 100
    session = DurableSession.create(
        discoverer, session_dir, checkpoint_every=cadence, retain=2
    )
    for batch in setup:
        apply_batch(session, batch)

    durable = list(setup)
    crashed = False
    fault_injector.arm(point)
    try:
        if operation == "checkpoint":
            session.checkpoint()
        else:
            batch = target_batch(operation)
            apply_batch(session, batch)
            durable.append(batch)
    except SimulatedCrash as crash:
        crashed = True
        assert crash.point == point
        session.simulate_power_loss()
        if operation != "checkpoint" and point not in BATCH_LOST:
            # The crash hit after the record's fsync: the batch is
            # durable even though the run never completed it.
            durable.append(batch)
    else:
        session.close()
    fault_injector.reset()

    # wal.* points can only fire while a batch is being logged; during an
    # explicit checkpoint (and for the state_save.* points, always) the
    # run completes uninterrupted — and must still recover identically.
    # executor.* points fire only inside parallel-evidence workers (this
    # workload runs serial; test_executors.py covers the firing path).
    if operation != "checkpoint" and not point.startswith(
        ("state_save", "executor.")
    ):
        assert crashed, f"{point} never fired during {operation}"

    recovered = DurableSession.recover(session_dir)
    try:
        assert state_to_bytes(recovered.discoverer) == oracle_bytes(durable)
    finally:
        recovered.close()


def test_matrix_covers_every_registered_point():
    """A newly planted fault point must automatically join the matrix."""
    covered = set(sorted(FAULT_POINTS))
    assert covered == FAULT_POINTS


def test_double_crash_recovery_is_idempotent(tmp_path, fault_injector):
    """Crashing, recovering, crashing again: recovery is repeatable and
    each replay starts from the newest durable image."""
    session_dir = tmp_path / "session"
    rng = random.Random(31)
    discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
    session = DurableSession.create(discoverer, session_dir, checkpoint_every=100)
    session.insert(random_rows(rng, 2))
    with fault_injector.armed("wal.pre_fsync"):
        with pytest.raises(SimulatedCrash):
            session.insert(random_rows(rng, 2))
    session.simulate_power_loss()

    recovered = DurableSession.recover(session_dir)
    batch = random_rows(rng, 2)
    recovered.insert(batch)  # durably logged; cadence never checkpoints
    with fault_injector.armed("checkpoint.pre_rename"):
        with pytest.raises(SimulatedCrash):
            recovered.checkpoint()
    recovered.simulate_power_loss()

    final = DurableSession.recover(session_dir)
    expected = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
    expected.fit()
    expected.insert(random_rows(random.Random(31), 2))
    expected.insert(batch)
    assert state_to_bytes(final.discoverer) == state_to_bytes(expected)
    final.close()


# -- property test: random workloads, random crash ---------------------------


def _materialize_delete(relation, count):
    """Deterministic rid choice: the ``count`` lowest alive rids, keeping
    at least 4 rows so evidence structure survives (may be empty — empty
    batches are logged and replayed like any other)."""
    alive = sorted(relation.rids())
    count = min(count, max(0, len(alive) - 4))
    return alive[:count]


_row = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from("abc"),
    st.integers(min_value=0, max_value=2),
)
_op = st.one_of(
    st.tuples(st.just("insert"), st.lists(_row, min_size=1, max_size=3)),
    st.tuples(st.just("delete"), st.integers(min_value=1, max_value=3)),
)


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=5),
    crash_index=st.integers(min_value=0, max_value=4),
    point=st.sampled_from(sorted(FAULT_POINTS)),
)
def test_random_workload_crash_recovers_to_oracle(ops, crash_index, point):
    """Recovered evidence multiset, Σ, and tuple index equal the
    crash-free oracle over the durable batch prefix, wherever the crash
    lands."""
    crash_index = min(crash_index, len(ops) - 1)
    injector = get_injector()
    injector.reset()
    with tempfile.TemporaryDirectory() as tmp:
        session_dir = os.path.join(tmp, "session")
        discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
        session = DurableSession.create(
            discoverer, session_dir, checkpoint_every=2
        )
        durable = []
        crashed_at = None
        lost_in_flight = False
        try:
            for index, (kind, payload) in enumerate(ops):
                if index == crash_index:
                    injector.arm(point)
                if kind == "insert":
                    session.insert(payload)
                else:
                    session.delete(
                        _materialize_delete(session.discoverer.relation, payload)
                    )
                durable.append(index)
        except SimulatedCrash:
            crashed_at = index
            lost_in_flight = point in BATCH_LOST
            session.simulate_power_loss()
        else:
            session.close()
        finally:
            injector.reset()
        if crashed_at is not None and not lost_in_flight:
            durable.append(crashed_at)

        recovered = DurableSession.recover(session_dir)
        try:
            # Oracle 1: uninterrupted plain run over the durable prefix,
            # byte for byte.
            oracle = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
            oracle.fit()
            for index in durable:
                kind, payload = ops[index]
                if kind == "insert":
                    oracle.insert(payload)
                else:
                    oracle.delete(
                        _materialize_delete(oracle.relation, payload)
                    )
            assert state_to_bytes(recovered.discoverer) == state_to_bytes(oracle)
            # Oracle 2: static re-discovery from the final table
            # (evidence multiset + Σ), reusing the differential helpers.
            assert_matches_oracle(recovered.discoverer)
            # The recovered tuple index must keep supporting index-based
            # deletes exactly.
            survivors = _materialize_delete(recovered.discoverer.relation, 2)
            if survivors:
                recovered.discoverer.delete(survivors)
                oracle.delete(survivors)
                assert (
                    recovered.discoverer.evidence_set == oracle.evidence_set
                )
        finally:
            recovered.close()
