"""Tests for relation profiling / evidence-entropy estimation."""



import pytest

from repro.evidence import build_evidence_state
from repro.predicates import build_predicate_space
from repro.relational import relation_from_rows
from repro.relational.profiling import profile_relation
from repro.workloads import generate_dataset


class TestColumnStatistics:
    def test_key_column(self):
        relation = relation_from_rows(["K"], [(i,) for i in range(10)])
        profile = profile_relation(relation)
        column = profile.columns[0]
        assert column.n_distinct == 10
        assert column.p_equal == 0.0
        assert column.is_key_like
        assert column.top_frequency == pytest.approx(0.1)

    def test_constant_column(self):
        relation = relation_from_rows(["C"], [("x",)] * 8)
        profile = profile_relation(relation)
        column = profile.columns[0]
        assert column.n_distinct == 1
        assert column.p_equal == pytest.approx(1.0)
        assert column.entropy_bits == pytest.approx(0.0)

    def test_balanced_binary_is_near_max_entropy(self):
        relation = relation_from_rows(["B"], [("a",), ("b",)] * 10)
        profile = profile_relation(relation)
        # p_eq = 180/380 over distinct pairs; entropy just below 1 bit.
        assert profile.columns[0].entropy_bits == pytest.approx(1.0, abs=0.01)


class TestGroupOutcomes:
    def test_numeric_outcome_probabilities_sum_to_one(self):
        relation = relation_from_rows(["N"], [(1,), (2,), (2,), (5,)])
        profile = profile_relation(relation)
        group = profile.groups[0]
        assert group.p_equal + group.p_greater + group.p_smaller == pytest.approx(1.0)
        # 12 distinct ordered pairs: only the two (2, 2) swaps are equal.
        assert group.p_equal == pytest.approx(2 / 12)
        assert group.p_greater == pytest.approx(group.p_smaller)

    def test_cross_group_admitted_by_overlap(self):
        relation = relation_from_rows(
            ["A", "B", "C"],
            [(1, 1, 100), (2, 2, 200), (3, 3, 300)],
        )
        profile = profile_relation(relation)
        pairs = {(g.lhs, g.rhs) for g in profile.groups}
        assert ("A", "B") in pairs
        assert ("A", "C") not in pairs and ("B", "C") not in pairs

    def test_cross_group_asymmetric_outcomes(self):
        # B is always greater than A.
        relation = relation_from_rows(
            ["A", "B"], [(1, 3), (2, 3), (3, 4), (1, 2)]
        )
        profile = profile_relation(relation, cross_column_ratio=0.1)
        cross = next(g for g in profile.groups if g.lhs == "A" and g.rhs == "B")
        assert cross.p_smaller > cross.p_greater


class TestEvidenceEstimate:
    @pytest.mark.parametrize("name", ["Dit", "Hospital", "Airport", "Tax"])
    def test_estimate_upper_bounds_reality_within_reason(self, name):
        relation = generate_dataset(name, 150)
        profile = profile_relation(relation)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        actual = len(state.evidence)
        # The realized-outcome product is a hard upper bound; the
        # typical-set estimate should land within a couple of orders of
        # magnitude (skew makes it undershoot).
        assert actual <= profile.max_distinct_evidence, name
        assert profile.estimated_distinct_evidence >= actual / 100, name
        assert profile.pair_count == 150 * 149

    def test_redundancy_ratio_and_summary(self):
        relation = generate_dataset("Dit", 100)
        profile = profile_relation(relation)
        assert profile.redundancy_ratio > 3.0
        text = profile.summary()
        assert "distinct evidences" in text
        assert "heaviest groups" in text

    def test_empty_relation(self):
        relation = relation_from_rows(["A"], [(1,)])
        relation.delete([0])
        profile = profile_relation(relation)
        assert profile.n_rows == 0
        assert profile.pair_count == 0
