"""Tests for the synthetic datasets and update workloads."""

import pytest

from repro.relational import ColumnType
from repro.workloads import (
    DATASETS,
    PAPER_COLUMN_COUNTS,
    dataset_names,
    generate_dataset,
    pick_delete_rids,
    split_for_insert,
    staff_relation,
)


class TestDatasets:
    def test_registry_matches_table2(self):
        assert set(DATASETS) == set(PAPER_COLUMN_COUNTS)
        for name, spec in DATASETS.items():
            assert spec.n_columns == PAPER_COLUMN_COUNTS[name], name

    def test_names_sorted(self):
        names = dataset_names()
        assert names == sorted(names, key=str.lower)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_generation_is_deterministic(self, name):
        first = DATASETS[name].rows(20, seed=3)
        second = DATASETS[name].rows(20, seed=3)
        assert first == second
        different = DATASETS[name].rows(20, seed=4)
        assert first != different

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_rows_match_inferred_schema(self, name):
        relation = generate_dataset(name, 30)
        assert len(relation) == 30
        assert relation.schema.names == DATASETS[name].header
        for row in relation.rows():
            for value, column in zip(row, relation.schema):
                if column.ctype is ColumnType.STRING:
                    assert isinstance(value, str)
                elif column.ctype is ColumnType.INTEGER:
                    assert isinstance(value, int)
                else:
                    assert isinstance(value, (int, float))

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="available"):
            generate_dataset("NoSuchData", 10)

    def test_default_rows(self):
        spec = DATASETS["UCE"]
        assert len(spec.relation()) == spec.default_rows

    def test_evidence_redundancy_discipline(self):
        """Distinct evidences must stay far below the pair count — the
        property the context pipeline exploits (Section V-A)."""
        from repro.evidence import build_evidence_state
        from repro.predicates import build_predicate_space

        for name in ["Dit", "Hospital", "Tax"]:
            relation = generate_dataset(name, 120)
            space = build_predicate_space(relation)
            state = build_evidence_state(relation, space)
            pairs = 120 * 119
            assert len(state.evidence) < pairs / 4, name

    def test_staff_relation(self):
        staff = staff_relation()
        assert len(staff) == 4
        assert staff.schema.names == ("Id", "Name", "Hired", "Level", "Mgr")


class TestUpdateWorkloads:
    ROWS = [(i, f"v{i % 5}") for i in range(100)]

    def test_split_sizes(self):
        workload = split_for_insert(self.ROWS, ratio=0.1, retain=0.7, seed=1)
        assert workload.static_size == 70
        assert workload.delta_size == 7
        assert workload.ratio == 0.1

    def test_split_disjoint_and_complete(self):
        workload = split_for_insert(self.ROWS, ratio=0.2, seed=2)
        combined = list(workload.static_rows) + list(workload.delta_rows)
        assert len(set(combined)) == len(combined)
        assert set(combined) <= set(self.ROWS)

    def test_split_deterministic(self):
        first = split_for_insert(self.ROWS, ratio=0.1, seed=3)
        second = split_for_insert(self.ROWS, ratio=0.1, seed=3)
        assert first == second

    def test_split_validation(self):
        with pytest.raises(ValueError, match="retain"):
            split_for_insert(self.ROWS, ratio=0.1, retain=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            split_for_insert(self.ROWS, ratio=-0.1)
        with pytest.raises(ValueError, match="remain"):
            split_for_insert(self.ROWS, ratio=0.9, retain=0.7)

    def test_pick_delete_rids(self):
        relation = staff_relation()
        rids = pick_delete_rids(relation, 0.5, seed=0)
        assert len(rids) == 2
        assert all(relation.is_alive(rid) for rid in rids)
        assert rids == sorted(rids)

    def test_pick_delete_validation(self):
        with pytest.raises(ValueError):
            pick_delete_rids(staff_relation(), 1.5)
