"""Tests for dynamic approximate-DC maintenance (the paper's future work)."""

import random

import pytest

from repro import DCDiscoverer, relation_from_rows
from repro.dcs.approximate import approximate_dcs, violation_count

from tests.conftest import random_rows


def make_discoverer(seed=0, n_rows=14):
    rng = random.Random(seed)
    relation = relation_from_rows(["A", "B", "C"], random_rows(rng, n_rows))
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    return discoverer, rng


class TestMonitorBootstrap:
    def test_initial_masks_match_static(self):
        discoverer, _ = make_discoverer()
        monitor = discoverer.attach_approximate_monitor(0.05)
        assert monitor.dc_masks == approximate_dcs(
            discoverer.space, discoverer.evidence_set, 0.05
        )
        assert not monitor.needs_refresh

    def test_initial_counters_exact(self):
        discoverer, _ = make_discoverer(1)
        monitor = discoverer.attach_approximate_monitor(0.1)
        for mask in monitor.dc_masks[:30]:
            assert monitor.violations(mask) == violation_count(
                discoverer.evidence_set, mask
            )

    def test_budget(self):
        discoverer, _ = make_discoverer(2, n_rows=10)
        monitor = discoverer.attach_approximate_monitor(0.1)
        assert monitor.budget == int(0.1 * 10 * 9)

    def test_epsilon_validation(self):
        discoverer, _ = make_discoverer(3)
        with pytest.raises(ValueError):
            discoverer.attach_approximate_monitor(1.0)

    def test_unknown_mask_raises(self):
        discoverer, _ = make_discoverer(4)
        monitor = discoverer.attach_approximate_monitor(0.05)
        with pytest.raises(KeyError):
            monitor.violations(discoverer.space.full_mask)


class TestIncrementalAccounting:
    @pytest.mark.parametrize("seed", range(4))
    def test_counters_stay_exact_across_updates(self, seed):
        discoverer, rng = make_discoverer(seed + 10)
        monitor = discoverer.attach_approximate_monitor(0.08)
        for _ in range(3):
            discoverer.insert(random_rows(rng, 3))
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 2))
            for mask in list(monitor.dc_masks)[:20]:
                assert monitor.violations(mask) == violation_count(
                    discoverer.evidence_set, mask
                )

    def test_invalidation_is_sound(self):
        """Every DC the monitor reports invalid really is over budget."""
        discoverer, rng = make_discoverer(30)
        monitor = discoverer.attach_approximate_monitor(0.02)
        for _ in range(4):
            discoverer.insert(random_rows(rng, 4))
            budget = monitor.budget
            for mask in monitor.dc_masks:
                assert (
                    violation_count(discoverer.evidence_set, mask) <= budget
                ), "tracked DC is actually over budget"

    def test_refresh_matches_static(self):
        discoverer, rng = make_discoverer(40)
        monitor = discoverer.attach_approximate_monitor(0.05)
        discoverer.insert(random_rows(rng, 5))
        discoverer.delete(list(discoverer.relation.rids())[:3])
        report = monitor.refresh()
        assert monitor.dc_masks == approximate_dcs(
            discoverer.space, discoverer.evidence_set, 0.05
        )
        assert not monitor.needs_refresh
        assert report.n_dcs == len(monitor.dc_masks)

    def test_refresh_reports_diff(self):
        discoverer, rng = make_discoverer(50, n_rows=10)
        monitor = discoverer.attach_approximate_monitor(0.05)
        before = set(monitor.dc_masks)
        # A burst of identical rows shifts many violation counts.
        discoverer.insert([(0, "a", 0)] * 4)
        report = monitor.refresh()
        after = set(monitor.dc_masks)
        assert set(report.added) == after - before
        assert before - after <= set(report.removed)

    def test_needs_refresh_raised_on_invalidation(self):
        discoverer, _ = make_discoverer(60, n_rows=10)
        monitor = discoverer.attach_approximate_monitor(0.03)
        # Duplicated rows create heavy violations of equality-flavoured DCs.
        report_needed = False
        for _ in range(3):
            discoverer.insert([(1, "a", 1), (1, "a", 1)])
            if monitor.needs_refresh:
                report_needed = True
                break
        assert report_needed, "bursty duplicates should invalidate some DC"

    def test_monitor_report_fields(self):
        discoverer, rng = make_discoverer(70)
        monitor = discoverer.attach_approximate_monitor(0.05)
        from repro.evidence import EvidenceSet

        report = monitor.apply_insert_delta(
            EvidenceSet(), len(discoverer.relation)
        )
        assert report.kind == "insert"
        assert report.clean
        assert report.budget == monitor.budget
        assert report.n_rows == len(discoverer.relation)
