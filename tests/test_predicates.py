"""Tests for operators, predicates, predicate spaces, and the parser."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    CATEGORICAL_OPERATORS,
    NUMERIC_OPERATORS,
    Operator,
    build_predicate_space,
    format_dc,
    parse_dc,
    parse_predicate,
)
from repro.predicates.space import build_space_from_pairs
from repro.relational import relation_from_rows
from repro.workloads import staff_relation


class TestOperator:
    def test_eval_all(self):
        assert Operator.EQ.eval(1, 1) and not Operator.EQ.eval(1, 2)
        assert Operator.NE.eval(1, 2) and not Operator.NE.eval(1, 1)
        assert Operator.LT.eval(1, 2) and not Operator.LT.eval(2, 2)
        assert Operator.LE.eval(2, 2) and not Operator.LE.eval(3, 2)
        assert Operator.GT.eval(3, 2) and not Operator.GT.eval(2, 2)
        assert Operator.GE.eval(2, 2) and not Operator.GE.eval(1, 2)

    @pytest.mark.parametrize("op", list(Operator))
    def test_negation_is_complement(self, op):
        for a, b in itertools.product(range(3), range(3)):
            assert op.eval(a, b) != op.negation.eval(a, b)

    @pytest.mark.parametrize("op", list(Operator))
    def test_converse_swaps_operands(self, op):
        for a, b in itertools.product(range(3), range(3)):
            assert op.eval(a, b) == op.converse.eval(b, a)

    @pytest.mark.parametrize("op", list(Operator))
    def test_implication_table(self, op):
        for implied in op.implied:
            for a, b in itertools.product(range(3), range(3)):
                if op.eval(a, b):
                    assert implied.eval(a, b)

    def test_is_order(self):
        assert Operator.LT.is_order and Operator.GE.is_order
        assert not Operator.EQ.is_order and not Operator.NE.is_order


@pytest.fixture
def staff_space():
    return build_predicate_space(staff_relation())


class TestPredicateSpace:
    def test_group_structure(self, staff_space):
        # 5 single-column groups plus symmetric cross-column pairs.
        singles = [g for g in staff_space.groups if g.is_single_column]
        crosses = [g for g in staff_space.groups if not g.is_single_column]
        assert len(singles) == 5
        assert len(crosses) % 2 == 0  # closed under direction swap

    def test_categorical_group_has_two_predicates(self, staff_space):
        name_group = next(
            g for g in staff_space.groups
            if g.is_single_column and g.predicates[0].lhs == "Name"
        )
        assert [p.op for p in name_group.predicates] == list(CATEGORICAL_OPERATORS)

    def test_numeric_group_has_six_predicates(self, staff_space):
        level_group = next(
            g for g in staff_space.groups
            if g.is_single_column and g.predicates[0].lhs == "Level"
        )
        assert [p.op for p in level_group.predicates] == list(NUMERIC_OPERATORS)

    def test_bits_are_dense_and_unique(self, staff_space):
        bits = [staff_space.bit_of_predicate(p) for p in staff_space.predicates]
        assert bits == list(range(staff_space.n_bits))

    def test_mask_roundtrip(self, staff_space):
        predicates = staff_space.predicates[2:6]
        mask = staff_space.mask_of(predicates)
        assert staff_space.predicates_of(mask) == list(predicates)

    def test_symmetry_is_involution(self, staff_space):
        for bit in range(staff_space.n_bits):
            assert staff_space.sym[staff_space.sym[bit]] == bit

    def test_symmetrize_matches_pair_swap(self, staff_space):
        relation = staff_relation()
        rows = list(relation.rows())
        for row_t, row_u in itertools.permutations(rows, 2):
            forward = staff_space.evidence_of_pair(row_t, row_u)
            backward = staff_space.evidence_of_pair(row_u, row_t)
            assert staff_space.symmetrize(forward) == backward

    def test_evidence_is_always_satisfiable(self, staff_space):
        relation = staff_relation()
        rows = list(relation.rows())
        for row_t, row_u in itertools.permutations(rows, 2):
            assert staff_space.satisfiable(
                staff_space.evidence_of_pair(row_t, row_u)
            )

    def test_unsatisfiable_combinations(self, staff_space):
        eq_bit = staff_space.bit("Level", Operator.EQ, "Level")
        ne_bit = staff_space.bit("Level", Operator.NE, "Level")
        lt_bit = staff_space.bit("Level", Operator.LT, "Level")
        assert not staff_space.satisfiable((1 << eq_bit) | (1 << ne_bit))
        assert not staff_space.satisfiable((1 << eq_bit) | (1 << lt_bit))
        assert staff_space.satisfiable((1 << ne_bit) | (1 << lt_bit))
        assert staff_space.satisfiable_with(1 << ne_bit, lt_bit)
        assert not staff_space.satisfiable_with(1 << eq_bit, ne_bit)

    def test_cross_column_ratio_gate(self):
        # B shares no values with A; C shares all of them.
        relation = relation_from_rows(
            ["A", "B", "C"],
            [(1, 100, 1), (2, 200, 2), (3, 300, 3)],
        )
        space = build_predicate_space(relation)
        pairs = {
            (g.predicates[0].lhs, g.predicates[0].rhs)
            for g in space.groups
            if not g.is_single_column
        }
        assert ("A", "C") in pairs and ("C", "A") in pairs
        assert ("A", "B") not in pairs

    def test_allow_cross_columns_false(self):
        relation = relation_from_rows(["A", "C"], [(1, 1), (2, 2)])
        space = build_predicate_space(relation, allow_cross_columns=False)
        assert all(g.is_single_column for g in space.groups)

    def test_column_subset(self):
        space = build_predicate_space(
            staff_relation(), column_names=["Id", "Level"]
        )
        lhs_names = {p.lhs for p in space.predicates}
        assert lhs_names <= {"Id", "Level"}

    def test_build_space_from_pairs_reproduces(self, staff_space):
        pairs = [
            (g.predicates[0].lhs, g.predicates[0].rhs) for g in staff_space.groups
        ]
        rebuilt = build_space_from_pairs(staff_space.schema, pairs)
        assert rebuilt.n_bits == staff_space.n_bits
        assert [str(p) for p in rebuilt.predicates] == [
            str(p) for p in staff_space.predicates
        ]


@given(
    values=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=2, max_size=12
    )
)
@settings(max_examples=30, deadline=None)
def test_evidence_of_pair_matches_predicate_eval(values):
    relation = relation_from_rows(["X", "Y"], values)
    space = build_predicate_space(relation)
    rows = list(relation.rows())
    row_t, row_u = rows[0], rows[1]
    mask = space.evidence_of_pair(row_t, row_u)
    for bit, predicate in enumerate(space.predicates):
        assert bool((mask >> bit) & 1) == predicate.eval(row_t, row_u)


class TestParser:
    def test_parse_predicate_ascii_and_unicode(self, staff_space):
        for text in ["t.Level <= t'.Level", "t.Level ≤ t'.Level"]:
            predicate = parse_predicate(text, staff_space)
            assert predicate.op is Operator.LE
            assert predicate.lhs == predicate.rhs == "Level"

    def test_parse_predicate_cross_column(self, staff_space):
        predicate = parse_predicate("t.Mgr = t'.Id", staff_space)
        assert (predicate.lhs, predicate.rhs) == ("Mgr", "Id")

    def test_parse_predicate_errors(self, staff_space):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_predicate("Level = Level", staff_space)
        with pytest.raises(ValueError, match="not in the predicate space"):
            parse_predicate("t.Name < t'.Name", staff_space)

    def test_parse_format_roundtrip(self, staff_space):
        text = "¬(t.Hired < t'.Hired ∧ t.Level < t'.Level)"
        mask = parse_dc(text, staff_space)
        assert format_dc(mask, staff_space) == text
        ascii_text = format_dc(mask, staff_space, ascii_only=True)
        assert parse_dc(ascii_text, staff_space) == mask

    def test_parse_dc_variants(self, staff_space):
        expected = parse_dc("!(t.Id = t'.Id)", staff_space)
        assert parse_dc("¬(t.Id = t'.Id)", staff_space) == expected
        assert parse_dc("not (t.Id = t'.Id)", staff_space) == expected
        assert parse_dc("t.Id = t'.Id", staff_space) == expected

    def test_parse_dc_empty_rejected(self, staff_space):
        with pytest.raises(ValueError):
            parse_dc("¬()", staff_space)
