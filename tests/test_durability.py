"""Unit tests for the durability subsystem: framing, WAL, atomic writes,
checkpoints, fault injection, and the DurableSession life cycle.

The crash *matrix* (every fault point × every operation, byte-identity
against an uninterrupted oracle) lives in tests/test_crash_matrix.py;
this module pins the building blocks it stands on.
"""

import json
import os
import random
import zlib

import pytest

from repro import DCDiscoverer, DurableSession, SessionError, relation_from_rows
from repro.core.state_io import state_to_bytes
from repro.durability import (
    FAULT_POINTS,
    FaultInjector,
    SimulatedCrash,
    WALReader,
    WriteAheadLog,
    fault_point,
)
from repro.durability.atomic import atomic_write_bytes, canonical_json_bytes
from repro.durability.checkpoint import (
    apply_retention,
    checkpoint_name,
    list_checkpoints,
    load_latest_checkpoint,
    validate_checkpoint,
    write_checkpoint,
    CheckpointError,
)
from repro.durability.crashsim import discard_unsynced_tail, drop_tmp_files
from repro.durability.framing import (
    HEADER_SIZE,
    decode_records,
    encode_record,
    iter_records,
)
from tests.conftest import random_rows


def make_fitted(seed=3, n_rows=12):
    rng = random.Random(seed)
    discoverer = DCDiscoverer(
        relation_from_rows(["A", "B", "C"], random_rows(rng, n_rows))
    )
    discoverer.fit()
    return discoverer


# -- framing -----------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        payloads = [b"alpha", b"", b"x" * 1000]
        blob = b"".join(encode_record(p) for p in payloads)
        assert list(iter_records(blob)) == payloads

    def test_good_size_is_full_length_for_valid_log(self):
        blob = encode_record(b"a") + encode_record(b"bb")
        _, good = decode_records(blob)
        assert good == len(blob)

    @pytest.mark.parametrize(
        "mutilate, surviving",
        [
            # Empty / zero-length log: nothing to recover, nothing raised.
            (lambda blob, last: b"", 0),
            # Torn tail: last frame loses its final byte.
            (lambda blob, last: blob[:-1], 2),
            # Torn tail: last frame is only a partial header.
            (lambda blob, last: blob[: last + HEADER_SIZE - 2], 2),
            # Flipped payload byte in the last record breaks its checksum.
            (
                lambda blob, last: blob[:-1] + bytes([blob[-1] ^ 0xFF]),
                2,
            ),
            # Flipped byte in the checksum field itself.
            (
                lambda blob, last: blob[: last + 8]
                + bytes([blob[last + 8] ^ 0x01])
                + blob[last + 9 :],
                2,
            ),
            # Corrupt magic in the middle truncates everything after it.
            (
                lambda blob, last: blob[:HEADER_SIZE + 1]
                + b"XXXX"
                + blob[HEADER_SIZE + 5 :],
                1,
            ),
        ],
        ids=[
            "empty-log",
            "torn-payload",
            "torn-header",
            "flipped-payload-byte",
            "flipped-checksum-byte",
            "corrupt-middle-magic",
        ],
    )
    def test_corruption_truncates_to_valid_prefix(self, mutilate, surviving):
        payloads = [b"a", b"bb", b"ccc"]
        blob = b"".join(encode_record(p) for p in payloads)
        last = len(encode_record(b"a")) + len(encode_record(b"bb"))
        damaged = mutilate(blob, last)
        recovered, good = decode_records(damaged)
        assert recovered == payloads[:surviving]
        assert good <= len(damaged)

    def test_absurd_length_field_rejected(self):
        blob = encode_record(b"ok")
        import struct

        bad = blob[:4] + struct.pack("<I", 1 << 31) + blob[8:]
        assert list(iter_records(bad + encode_record(b"after"))) == []

    def test_oversized_record_refused_at_write(self):
        with pytest.raises(ValueError, match="frame limit"):
            encode_record(b"x" * ((1 << 30) + 1))


# -- write-ahead log ---------------------------------------------------------


class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"seq": 1, "op": "insert", "rows": [[1, "a", 2]]})
        wal.append({"seq": 2, "op": "delete", "rids": [0]})
        wal.close()
        records = list(WriteAheadLog(tmp_path / "wal.log").replay())
        assert [r["seq"] for r in records] == [1, 2]
        assert records[1]["rids"] == [0]

    def test_replay_skips_incorporated_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for seq in (1, 2, 3):
            wal.append({"seq": seq, "op": "delete", "rids": []})
        assert [r["seq"] for r in wal.replay(after_seq=2)] == [3]
        wal.close()

    def test_reset_then_append_continues(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"seq": 1, "op": "delete", "rids": []})
        wal.reset()
        assert wal.size == 0
        wal.append({"seq": 2, "op": "delete", "rids": []})
        assert [r["seq"] for r in wal.replay()] == [2]
        wal.close()

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "delete", "rids": []})
        wal.close()
        wal = WriteAheadLog(path)
        wal.append({"seq": 2, "op": "delete", "rids": []})
        wal.close()
        assert [r["seq"] for r in WriteAheadLog.read_records(path)[0]] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert WriteAheadLog.read_records(tmp_path / "absent.log") == ([], 0)

    def test_valid_frame_with_non_json_payload_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        good = encode_record(canonical_json_bytes({"seq": 1, "op": "x"}))
        bad = encode_record(b"\xff not json")
        path.write_bytes(good + bad + good)
        records, _ = WriteAheadLog.read_records(path)
        assert [r["seq"] for r in records] == [1]

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        """Regression: a torn tail a *real* power cut left on disk (no
        simulator cleaned it up) must be cut off on reopen — appending
        after the garbage would make every later fsync'd, acknowledged
        record invisible to replay."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "delete", "rids": []})
        wal.append({"seq": 2, "op": "delete", "rids": []})
        wal.close()
        intact = path.read_bytes()
        path.write_bytes(intact[:-3])  # power cut tears the last frame
        wal = WriteAheadLog(path)
        assert wal.size == wal.durable_size == os.path.getsize(path)
        assert wal.size < len(intact)
        wal.append({"seq": 3, "op": "delete", "rids": []})
        wal.close()
        for _ in range(2):  # the appended record survives repeated reopens
            wal = WriteAheadLog(path)
            assert [r["seq"] for r in wal.replay()] == [1, 3]
            wal.close()

    def test_reopen_truncates_untrusted_non_json_tail(self, tmp_path):
        """The reopen truncation boundary matches replay's trust
        boundary: a checksum-valid frame with a non-JSON payload is cut
        off too, so appends land where replay resumes reading."""
        path = tmp_path / "wal.log"
        good = encode_record(canonical_json_bytes({"seq": 1, "op": "x"}))
        path.write_bytes(good + encode_record(b"\xff not json"))
        wal = WriteAheadLog(path)
        assert wal.size == len(good)
        wal.append({"seq": 2, "op": "delete", "rids": []})
        wal.close()
        records, good_size = WriteAheadLog.read_records(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert good_size == os.path.getsize(path)

    def test_durable_size_tracks_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert wal.durable_size == 0
        wal.append({"seq": 1, "op": "delete", "rids": []})
        assert wal.durable_size == wal.size > 0
        wal.close()


class TestWALReader:
    """Tail-following a live WAL (the replication transport substrate)."""

    def _donor_frames(self, tmp_path, count):
        """Real frame bytes: ``(full_bytes, [end_offset_of_each_frame])``."""
        path = tmp_path / "donor.log"
        wal = WriteAheadLog(path)
        ends = []
        for seq in range(1, count + 1):
            wal.append({"seq": seq, "op": "delete", "rids": [seq]})
            ends.append(wal.size)
        wal.close()
        return path.read_bytes(), ends

    def test_incremental_appends_yield_only_new_frames(self, tmp_path):
        path = tmp_path / "wal.log"
        reader = WALReader(path)
        assert reader.poll() == ([], False)  # file does not exist yet
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "delete", "rids": []})
        frames, reset = reader.poll()
        assert [f.record["seq"] for f in frames] == [1]
        assert not reset
        assert reader.poll() == ([], False)
        wal.append({"seq": 2, "op": "delete", "rids": []})
        wal.append({"seq": 3, "op": "delete", "rids": []})
        frames, reset = reader.poll()
        assert [f.record["seq"] for f in frames] == [2, 3]
        assert not reset
        reader.close()
        wal.close()

    def test_torn_tail_then_continue(self, tmp_path):
        """A frame delivered in two chunks surfaces exactly once, only
        when complete — the torn prefix stays buffered, never decoded."""
        data, ends = self._donor_frames(tmp_path, 2)
        cut = ends[0] + 7  # mid-second-frame
        path = tmp_path / "wal.log"
        reader = WALReader(path)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
            handle.flush()
            frames, reset = reader.poll()
            assert [f.record["seq"] for f in frames] == [1]
            assert not reset
            assert reader.poll() == ([], False)  # torn tail: nothing yet
            handle.write(data[cut:])
            handle.flush()
        frames, reset = reader.poll()
        assert [f.record["seq"] for f in frames] == [2]
        assert not reset
        assert frames[0].raw == data[ends[0] :]
        reader.close()

    def test_shrinking_truncation_resets(self, tmp_path):
        """A file shrunk below the consumed offset (crash-torn tail cut)
        triggers a rescan-from-zero reset."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "delete", "rids": []})
        wal.append({"seq": 2, "op": "delete", "rids": []})
        reader = WALReader(path)
        frames, _ = reader.poll()
        assert [f.record["seq"] for f in frames] == [1, 2]
        wal.reset()
        frames, reset = reader.poll()
        assert reset
        assert frames == []
        assert reader.resets == 1
        wal.close()
        reader.close()

    def test_truncate_then_append_past_old_offset_resets(self, tmp_path):
        """Regression: a reset WAL that grows back *past* the reader's
        old offset aliases with a plain append in ``fstat`` — the tail
        fingerprint must still detect the rewrite, or a follower would
        silently skip the post-reset frames."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "delete", "rids": []})
        reader = WALReader(path)
        frames, _ = reader.poll()
        assert [f.record["seq"] for f in frames] == [1]
        old_offset = wal.size
        wal.reset()
        while wal.size <= old_offset:  # outgrow the consumed offset
            wal.append({"seq": 2, "op": "delete", "rids": [9]})
            break
        wal.append({"seq": 3, "op": "insert", "rows": [[1, "a", 2]]})
        assert wal.size > old_offset
        frames, reset = reader.poll()
        assert reset
        assert [f.record["seq"] for f in frames] == [2, 3]
        wal.close()
        reader.close()

    def test_mid_file_truncate_then_append_resets(self, tmp_path):
        """Regression: recovery cuts a torn tail *mid-file* and keeps
        appending — the file prefix is untouched and the size grows, yet
        everything past the cut changed under the reader's feet."""
        data, ends = self._donor_frames(tmp_path, 2)
        path = tmp_path / "wal.log"
        path.write_bytes(data[: ends[0] + 7])  # frame 1 + torn frame 2
        reader = WALReader(path)
        frames, _ = reader.poll()
        assert [f.record["seq"] for f in frames] == [1]
        # A recovering writer truncates the torn tail in place, then
        # appends different (bigger) frames.
        with open(path, "rb+") as handle:
            handle.truncate(ends[0])
        wal = WriteAheadLog(path)
        wal.append({"seq": 2, "op": "insert", "rows": [[5, "b", 1], [6, "c", 0]]})
        assert wal.size > ends[0] + 7
        frames, reset = reader.poll()
        assert reset
        assert [f.record["seq"] for f in frames] == [1, 2]
        wal.close()
        reader.close()

    def test_append_frame_replicates_bytes_verbatim(self, tmp_path):
        data, ends = self._donor_frames(tmp_path, 2)
        frames = [data[: ends[0]], data[ends[0] :]]
        wal = WriteAheadLog(tmp_path / "replica.log")
        for seq, frame in enumerate(frames, start=1):
            wal.append_frame(frame, seq=seq)
        assert wal.durable_size == wal.size == len(data)
        wal.close()
        assert (tmp_path / "replica.log").read_bytes() == data

    def test_append_frame_rejects_torn_or_multiple(self, tmp_path):
        data, ends = self._donor_frames(tmp_path, 2)
        wal = WriteAheadLog(tmp_path / "replica.log")
        with pytest.raises(ValueError):
            wal.append_frame(data[: ends[0] - 3])  # torn
        with pytest.raises(ValueError):
            wal.append_frame(data)  # two frames in one call
        corrupt = bytearray(data[: ends[0]])
        corrupt[-1] ^= 0xFF
        with pytest.raises(ValueError):
            wal.append_frame(bytes(corrupt))  # checksum broken
        assert wal.size == 0
        wal.close()


# -- atomic writes and the power-loss simulator ------------------------------


class TestAtomicWrite:
    def test_replaces_content(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert not os.path.exists(str(path) + ".tmp")

    @pytest.mark.parametrize(
        "point", ["checkpoint.pre_fsync", "checkpoint.pre_rename"]
    )
    def test_crash_before_rename_keeps_old_content(
        self, tmp_path, fault_injector, point
    ):
        path = tmp_path / "f.json"
        atomic_write_bytes(path, b"old")
        with fault_injector.armed(point):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(path, b"new")
        drop_tmp_files(tmp_path)
        assert path.read_bytes() == b"old"

    def test_crash_after_rename_keeps_new_content(self, tmp_path, fault_injector):
        path = tmp_path / "f.json"
        atomic_write_bytes(path, b"old")
        with fault_injector.armed("checkpoint.post_rename"):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(path, b"new")
        drop_tmp_files(tmp_path)
        assert path.read_bytes() == b"new"

    def test_discard_unsynced_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"durable-bytes-plus-torn-tail")
        cut = discard_unsynced_tail(path, 13)
        assert path.read_bytes() == b"durable-bytes"
        assert cut == len(b"-plus-torn-tail")
        assert discard_unsynced_tail(path, 13) == 0
        assert discard_unsynced_tail(tmp_path / "absent", 5) == 0


# -- checkpoints -------------------------------------------------------------


class TestCheckpoints:
    def test_write_then_load_latest(self, tmp_path):
        write_checkpoint(tmp_path, 3, {"hello": 1})
        write_checkpoint(tmp_path, 7, {"hello": 2})
        seq, state, path = load_latest_checkpoint(tmp_path)
        assert (seq, state) == (7, {"hello": 2})
        assert path.endswith(checkpoint_name(7))

    def test_corrupt_latest_falls_back_to_predecessor(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"n": 1})
        path = write_checkpoint(tmp_path, 2, {"n": 2})
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF  # bit-rot inside the document
        with open(path, "wb") as handle:
            handle.write(blob)
        seq, state, _ = load_latest_checkpoint(tmp_path)
        assert (seq, state) == (1, {"n": 1})

    def test_no_valid_checkpoint_returns_none(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None
        (tmp_path / checkpoint_name(5)).write_text("not json at all")
        assert load_latest_checkpoint(tmp_path) is None

    def test_validate_rejections(self):
        document = {
            "format": "3dc-checkpoint",
            "version": 1,
            "wal_seq": 0,
            "state": {"a": 1},
        }
        document["checksum"] = format(
            zlib.crc32(canonical_json_bytes({"a": 1})), "08x"
        )
        assert validate_checkpoint(dict(document)) == {"a": 1}
        for breakage in (
            {"format": "other"},
            {"version": 99},
            {"checksum": "00000000"},
        ):
            with pytest.raises(CheckpointError):
                validate_checkpoint({**document, **breakage})
        with pytest.raises(CheckpointError):
            validate_checkpoint([1, 2, 3])

    def test_ordering_is_numeric_beyond_zero_padding(self, tmp_path):
        """Regression: seqs past 10**10 outgrow the 10-digit padding, and
        reverse-lexical order would prefer ckpt-9999999999 over
        ckpt-10000000000 — ordering must parse the seq and compare
        numerically."""
        write_checkpoint(tmp_path, 9999999999, {"n": 1})
        write_checkpoint(tmp_path, 10**10, {"n": 2})
        names = [os.path.basename(p) for p in list_checkpoints(tmp_path)]
        assert names == [checkpoint_name(10**10), checkpoint_name(9999999999)]
        seq, state, _ = load_latest_checkpoint(tmp_path)
        assert (seq, state) == (10**10, {"n": 2})
        apply_retention(tmp_path, 1)
        assert [os.path.basename(p) for p in list_checkpoints(tmp_path)] == [
            checkpoint_name(10**10)
        ]

    def test_non_numeric_checkpoint_names_skipped(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"n": 1})
        (tmp_path / "ckpt-foreign.json").write_text("{}")
        assert [os.path.basename(p) for p in list_checkpoints(tmp_path)] == [
            checkpoint_name(1)
        ]

    def test_retention_keeps_newest(self, tmp_path):
        for seq in range(6):
            write_checkpoint(tmp_path, seq, {"n": seq})
        deleted = apply_retention(tmp_path, 2)
        remaining = [os.path.basename(p) for p in list_checkpoints(tmp_path)]
        assert remaining == [checkpoint_name(5), checkpoint_name(4)]
        assert len(deleted) == 4

    def test_retention_never_deletes_everything(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"n": 1})
        apply_retention(tmp_path, 0)
        assert list_checkpoints(tmp_path)


# -- fault injection ---------------------------------------------------------


class TestFaultInjection:
    def test_hit_only_when_armed(self):
        injector = FaultInjector()
        injector.hit("wal.append")  # disarmed: no-op
        injector.arm("wal.append")
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.hit("wal.append")
        assert excinfo.value.point == "wal.append"
        injector.hit("wal.append")  # disarms after firing

    def test_skip_counts_hits(self):
        injector = FaultInjector()
        injector.arm("wal.pre_fsync", skip=2)
        injector.hit("wal.pre_fsync")
        injector.hit("wal.pre_fsync")
        with pytest.raises(SimulatedCrash):
            injector.hit("wal.pre_fsync")
        assert injector.crash_count == 1

    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.arm("no.such.point")
        with pytest.raises(ValueError, match="unregistered"):
            fault_point("no.such.point")

    def test_registry_covers_all_planted_prefixes(self):
        prefixes = {name.split(".")[0] for name in FAULT_POINTS}
        assert prefixes == {"wal", "checkpoint", "state_save", "executor"}


# -- the durable session -----------------------------------------------------


class TestDurableSession:
    def test_create_requires_positive_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            DurableSession.create(make_fitted(), tmp_path / "s", checkpoint_every=0)

    def test_create_twice_refused(self, tmp_path):
        DurableSession.create(make_fitted(), tmp_path / "s").close()
        with pytest.raises(SessionError, match="already exists"):
            DurableSession.create(make_fitted(), tmp_path / "s")

    def test_create_fits_unfitted_discoverer(self, tmp_path):
        rng = random.Random(0)
        discoverer = DCDiscoverer(
            relation_from_rows(["A", "B", "C"], random_rows(rng, 8))
        )
        with DurableSession.create(discoverer, tmp_path / "s") as session:
            assert session.discoverer.dc_masks

    def test_recover_missing_directory(self, tmp_path):
        with pytest.raises(SessionError, match="manifest"):
            DurableSession.recover(tmp_path / "nope")

    def test_recover_foreign_manifest(self, tmp_path):
        os.makedirs(tmp_path / "s")
        (tmp_path / "s" / "session.json").write_text(json.dumps({"format": "x"}))
        with pytest.raises(SessionError, match="not a 3dc-session"):
            DurableSession.recover(tmp_path / "s")

    def test_recover_equals_live_session(self, tmp_path):
        rng = random.Random(7)
        session = DurableSession.create(
            make_fitted(seed=7), tmp_path / "s", checkpoint_every=2
        )
        session.insert(random_rows(rng, 3))
        session.delete([0, 4])
        session.insert(random_rows(rng, 2))
        live = state_to_bytes(session.discoverer)
        session.close()
        recovered = DurableSession.recover(tmp_path / "s")
        assert state_to_bytes(recovered.discoverer) == live
        assert recovered.replayed_records == 1  # one batch past the checkpoint
        recovered.close()

    def test_update_logs_delete_then_insert(self, tmp_path):
        rng = random.Random(9)
        session = DurableSession.create(
            make_fitted(seed=9), tmp_path / "s", checkpoint_every=100
        )
        session.update([1, 2], random_rows(rng, 2))
        records = list(session._wal.replay())
        assert [r["op"] for r in records] == ["delete", "insert"]
        session.close()

    def test_invalid_batches_never_reach_the_wal(self, tmp_path):
        session = DurableSession.create(
            make_fitted(), tmp_path / "s", checkpoint_every=100
        )
        with pytest.raises(KeyError):
            session.delete([99999])
        with pytest.raises(ValueError, match="duplicate"):
            session.delete([1, 1])
        with pytest.raises(ValueError, match="columns"):
            session.insert([(1, "a")])
        with pytest.raises(TypeError):
            session.insert([(1, object(), 2)])
        assert session._wal.size == 0  # nothing was logged
        session.close()

    def test_checkpoint_cadence_and_retention(self, tmp_path):
        rng = random.Random(5)
        session = DurableSession.create(
            make_fitted(seed=5), tmp_path / "s", checkpoint_every=1, retain=2
        )
        for _ in range(4):
            session.insert(random_rows(rng, 1))
        status = session.status()
        assert status["pending_wal_records"] == 0
        assert len(status["checkpoints"]) == 2
        assert status["checkpoint_seq"] == 4
        session.close()

    def test_corrupted_wal_tail_recovers_last_good_prefix(self, tmp_path):
        """A torn/bit-rotted WAL tail loses only the damaged suffix."""
        rng = random.Random(11)
        batches = [random_rows(rng, 2) for _ in range(3)]
        session = DurableSession.create(
            make_fitted(seed=11), tmp_path / "s", checkpoint_every=100
        )
        for batch in batches[:2]:
            session.insert(batch)
        two_batches = state_to_bytes(session.discoverer)
        session.insert(batches[2])
        session.close()
        wal_path = tmp_path / "s" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes()[:-3])  # tear the tail
        recovered = DurableSession.recover(tmp_path / "s")
        assert state_to_bytes(recovered.discoverer) == two_batches
        assert recovered.replayed_records == 2
        recovered.close()

    def test_append_after_torn_tail_survives_repeated_recovery(self, tmp_path):
        """Regression: batches acknowledged *after* recovering from a
        torn WAL tail must stay visible — recovery truncates the garbage
        instead of appending the new records after it."""
        rng = random.Random(17)
        session = DurableSession.create(
            make_fitted(seed=17), tmp_path / "s", checkpoint_every=100
        )
        session.insert(random_rows(rng, 2))
        session.insert(random_rows(rng, 2))
        session.close()
        wal_path = tmp_path / "s" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes()[:-3])  # tear the tail
        recovered = DurableSession.recover(tmp_path / "s")
        assert recovered.replayed_records == 1
        recovered.insert(random_rows(rng, 2))  # acknowledged post-tear
        expected = state_to_bytes(recovered.discoverer)
        recovered.close()
        for _ in range(2):
            again = DurableSession.recover(tmp_path / "s")
            assert state_to_bytes(again.discoverer) == expected
            assert again.replayed_records == 2
            again.close()

    def test_crash_between_checkpoint_and_manifest_is_retryable(
        self, tmp_path, fault_injector
    ):
        """Regression: create() commits via the manifest, written last —
        a crash after the initial checkpoint leaves a directory that
        recover() reports as no-session and create() can simply retry,
        never one both refuse."""
        discoverer = make_fitted(seed=21)
        with fault_injector.armed("checkpoint.pre_rename", skip=1):
            with pytest.raises(SimulatedCrash):
                DurableSession.create(discoverer, tmp_path / "s")
        drop_tmp_files(tmp_path / "s")
        with pytest.raises(SessionError, match="manifest"):
            DurableSession.recover(tmp_path / "s")
        session = DurableSession.create(discoverer, tmp_path / "s")
        expected = state_to_bytes(session.discoverer)
        session.close()
        recovered = DurableSession.recover(tmp_path / "s")
        assert state_to_bytes(recovered.discoverer) == expected
        recovered.close()

    def test_recovery_emits_durability_metrics(self, tmp_path):
        rng = random.Random(13)
        session = DurableSession.create(
            make_fitted(seed=13), tmp_path / "s", checkpoint_every=100
        )
        session.insert(random_rows(rng, 2))
        counters = session.discoverer.instrumentation.metrics.counters
        assert counters.get("durability.wal_records") == 1
        assert counters.get("durability.fsyncs", 0) >= 1
        assert counters.get("durability.wal_bytes", 0) > 0
        session.close()
        recovered = DurableSession.recover(tmp_path / "s")
        counters = recovered.discoverer.instrumentation.metrics.counters
        assert counters.get("durability.recovery_replayed") == 1
        recovered.close()

    def test_checkpoint_span_and_histogram(self, tmp_path):
        session = DurableSession.create(
            make_fitted(), tmp_path / "s", checkpoint_every=100
        )
        session.checkpoint()
        instrumentation = session.discoverer.instrumentation
        names = [root.name for root in instrumentation.tracer.roots]
        assert "durability.checkpoint" in names
        snapshot = instrumentation.metrics.snapshot()
        assert "durability.checkpoint_seconds" in snapshot.get("histograms", {})
        counters = instrumentation.metrics.counters
        assert counters.get("durability.checkpoints", 0) >= 1
        session.close()
