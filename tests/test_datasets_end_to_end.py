"""Per-dataset end-to-end correctness at small scale.

For every one of the 12 synthetic evaluation datasets: run the full 3DC
life cycle (fit → insert → delete) on a tiny instance and verify the
dynamic result equals a static recomputation on the final data, plus the
structural invariants (evidence total, antichain, validity).
"""

import pytest

from repro import DCDiscoverer, relation_from_rows
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.workloads import DATASETS, dataset_names

SMALL_ROWS = 36
INSERT_ROWS = 6
DELETE_COUNT = 5


@pytest.mark.parametrize("name", dataset_names())
def test_dynamic_equals_static_on_dataset(name):
    spec = DATASETS[name]
    rows = spec.rows(SMALL_ROWS + INSERT_ROWS, seed=7)
    static_rows, delta_rows = rows[:SMALL_ROWS], rows[SMALL_ROWS:]

    discoverer = DCDiscoverer(relation_from_rows(spec.header, static_rows))
    discoverer.fit()
    discoverer.insert(delta_rows)
    alive = list(discoverer.relation.rids())
    discoverer.delete(alive[2 : 2 + DELETE_COUNT])

    evidence = naive_evidence_set(discoverer.relation, discoverer.space)
    assert discoverer.evidence_set == evidence, f"{name}: evidence drifted"
    n = len(discoverer.relation)
    assert evidence.total_pairs() == n * (n - 1)

    static = invert_evidence(discoverer.space, list(evidence))
    assert discoverer.dc_masks == sorted(m for m in static if m), (
        f"{name}: dynamic DC set differs from static recomputation"
    )


@pytest.mark.parametrize("name", ["Tax", "Hospital", "Dit"])
def test_dcs_valid_and_antichain_on_dataset(name):
    spec = DATASETS[name]
    discoverer = DCDiscoverer(spec.relation(SMALL_ROWS, seed=3))
    discoverer.fit()
    evidence = list(discoverer.evidence_set)
    masks = discoverer.dc_masks
    for mask in masks:
        assert discoverer.space.satisfiable(mask)
        assert not any(mask & e == mask for e in evidence)
    mask_set = set(masks)
    for mask in masks[:80]:
        for other in masks[:80]:
            if mask != other:
                assert not (mask & other == mask), "not an antichain"
    assert len(mask_set) == len(masks)
