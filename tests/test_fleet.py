"""Tests for the fleet control plane (repro.fleet) and epoch fencing.

Five pillars, mirroring the matrix philosophy of the crash and failover
suites — the proof of the control plane is a *zombie matrix*, not a
happy-path demo:

- **epoch mechanism units**: the ``3DCE`` frame envelope round-trips
  epochs next to the legacy ``3DCW``/``3DCT`` magics, sessions mint,
  bump, adopt, and durably fence epochs, and followers reject fenced
  frames / adopt newer ones;
- **the zombie-primary matrix**: for every registered fault point, kill
  the primary mid-write, promote a drained follower at a higher epoch,
  resurrect the old primary as an unfenced zombie that keeps writing —
  every acknowledged write must survive, every zombie frame must be
  rejected (nonzero ``fleet.frames_fenced``), and after the zombie is
  fenced and rejoins as a follower its diverged tail is discarded and
  it converges byte-identically to the single-node oracle;
- **the chained-convergence property**: Hypothesis drives a
  primary → follower → follower chain through random bursts with an
  optional mid-chain kill (the tail repoints past the corpse); per-hop
  applied seqs stay monotone and the tail converges to the oracle;
- **monitor units + HTTP failover**: the failure detector's suspicion
  window, candidate choice, and fence → drain → promote → repoint
  ordering on scripted in-process nodes with a fake clock, then the
  same sequence end-to-end over live HTTP services;
- **client ergonomics**: 421 write-following with a loop guard, bounded
  connection-refused retry, Retry-After on stale reads, fenced writes
  as a distinct 409, and the FleetClient's discovery / read spread /
  failover retry loop.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, DurableSession, relation_from_rows
from repro.core.state_io import state_to_bytes
from repro.durability import (
    FAULT_POINTS,
    INITIAL_EPOCH,
    SessionFencedError,
    SimulatedCrash,
    get_injector,
    read_manifest,
)
from repro.durability.framing import (
    MAGIC,
    MAGIC_EPOCH,
    decode_envelopes,
    encode_record,
)
from repro.durability.session import MANIFEST_NAME, SessionError, WAL_NAME
from repro.fleet import FleetClient, FleetMonitor, HTTPNode, NodeHandle
from repro.fleet.client import NoPrimaryError
from repro.fleet.monitor import CoordinatorServer, choose_candidate
from repro.replication import (
    DirectorySource,
    FollowerService,
    FollowerSession,
    Frame,
    FrameBatch,
    HTTPSource,
    ReplicationError,
)
from repro.service import (
    DCService,
    FencedError,
    NotPrimaryError,
    ServiceClient,
    ServiceConfig,
    ServiceStaleError,
)
from tests.conftest import random_rows
from tests.test_crash_matrix import (
    BATCH_LOST,
    HEADER,
    apply_batch,
    base_rows,
    oracle_bytes,
    scripted_batches,
    target_batch,
)
from tests.test_replication import drain, make_primary

pytestmark = pytest.mark.fleet


def wait_until(predicate, timeout_s: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# -- epoch envelope units ----------------------------------------------------


class TestEpochEnvelopes:
    def test_epoch_frame_roundtrip(self):
        raw = encode_record(b"payload", epoch=7)
        assert raw[:4] == MAGIC_EPOCH
        envelopes, consumed = decode_envelopes(raw)
        assert consumed == len(raw)
        [env] = envelopes
        assert env.payload == b"payload"
        assert env.epoch == 7
        assert env.trace_id is None
        assert env.size == len(raw)

    def test_traced_epoch_frame_roundtrip(self):
        trace = "ab" * 16
        raw = encode_record(b"x", trace_id=trace, epoch=3)
        [env], consumed = decode_envelopes(raw)
        assert consumed == len(raw)
        assert (env.payload, env.trace_id, env.epoch) == (b"x", trace, 3)

    def test_legacy_encoding_is_byte_identical(self):
        """No trace, no epoch: the bytes are the pre-epoch 3DCW format,
        so mixed-version fleets interoperate frame-for-frame."""
        raw = encode_record(b"legacy")
        assert raw[:4] == MAGIC
        [env], _ = decode_envelopes(raw)
        assert (env.payload, env.trace_id, env.epoch) == (b"legacy", None, None)

    def test_mixed_stream_decodes_all_magics(self):
        stream = (
            encode_record(b"a")
            + encode_record(b"b", trace_id="cd" * 16)
            + encode_record(b"c", epoch=9)
        )
        envelopes, consumed = decode_envelopes(stream)
        assert consumed == len(stream)
        assert [env.payload for env in envelopes] == [b"a", b"b", b"c"]
        assert [env.epoch for env in envelopes] == [None, None, 9]
        assert envelopes[1].trace_id == "cd" * 16

    def test_truncated_epoch_tail_is_forgiven(self):
        whole = encode_record(b"kept", epoch=2)
        stream = whole + encode_record(b"torn", epoch=2)[:-3]
        envelopes, consumed = decode_envelopes(stream)
        assert consumed == len(whole)
        assert [env.payload for env in envelopes] == [b"kept"]


# -- session epoch / fencing units -------------------------------------------


class TestSessionEpochs:
    def _session(self, directory):
        discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
        return DurableSession.create(discoverer, directory)

    def test_create_mints_initial_epoch(self, tmp_path):
        session = self._session(tmp_path / "s")
        assert session.epoch == INITIAL_EPOCH
        assert not session.is_fenced
        assert read_manifest(tmp_path / "s")["epoch"] == INITIAL_EPOCH
        session.close()

    def test_bump_epoch_is_durable_and_monotonic(self, tmp_path):
        session = self._session(tmp_path / "s")
        assert session.bump_epoch() == INITIAL_EPOCH + 1
        with pytest.raises(SessionError):
            session.bump_epoch(INITIAL_EPOCH + 1)
        session.close()
        recovered = DurableSession.recover(tmp_path / "s")
        assert recovered.epoch == INITIAL_EPOCH + 1
        recovered.close()

    def test_fence_blocks_writes_durably_until_adoption(self, tmp_path):
        session = self._session(tmp_path / "s")
        assert session.fence(3) is True
        assert session.fence(3) is False  # idempotent
        assert session.is_fenced
        with pytest.raises(SessionFencedError) as info:
            session.insert(random_rows(random.Random(5), 1))
        assert info.value.epoch == INITIAL_EPOCH
        assert info.value.fenced_below == 3
        session.close()

        # A restarted zombie stays fenced; adopting the fence epoch
        # rejoins the live timeline and writes flow again.
        recovered = DurableSession.recover(tmp_path / "s")
        assert recovered.is_fenced
        assert recovered.adopt_epoch(3) is True
        assert not recovered.is_fenced
        recovered.insert(random_rows(random.Random(7), 1))
        recovered.close()

    def test_legacy_manifest_defaults_to_initial_epoch(self, tmp_path):
        session = self._session(tmp_path / "s")
        session.insert(random_rows(random.Random(9), 2))
        expected = state_to_bytes(session.discoverer)
        session.close()
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest.pop("epoch", None)
        manifest.pop("fenced_below", None)
        manifest_path.write_text(json.dumps(manifest))

        recovered = DurableSession.recover(tmp_path / "s")
        assert recovered.epoch == INITIAL_EPOCH
        assert not recovered.is_fenced
        assert state_to_bytes(recovered.discoverer) == expected
        recovered.close()

    def test_wal_frames_carry_the_session_epoch(self, tmp_path):
        session = self._session(tmp_path / "s")
        session.insert(random_rows(random.Random(11), 2))
        session.bump_epoch()
        session.insert(random_rows(random.Random(13), 2))
        session.close()
        data = (tmp_path / "s" / WAL_NAME).read_bytes()
        envelopes, _ = decode_envelopes(data)
        assert envelopes, "WAL should hold frames"
        assert sorted({env.epoch for env in envelopes}) == [
            INITIAL_EPOCH,
            INITIAL_EPOCH + 1,
        ]


# -- follower fencing units --------------------------------------------------


class TestFollowerFencing:
    def test_rejects_lower_epoch_frame(self, tmp_path):
        primary_dir = tmp_path / "primary"
        session = make_primary(primary_dir)
        session.insert(random_rows(random.Random(17), 2))
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(primary_dir)
        )
        drain(follower)
        follower.session.bump_epoch()  # locally at epoch 2 now

        seq = follower.last_applied_seq + 1
        record = {"seq": seq, "op": "insert", "rows": []}
        raw = encode_record(
            json.dumps(record).encode("utf-8"), epoch=INITIAL_EPOCH
        )

        class _Stub:
            def close(self):
                pass

            def fetch_frames(self, after_seq, wait_s=0.0, max_frames=None):
                return FrameBatch(
                    [Frame(seq, raw, record, INITIAL_EPOCH)],
                    seq,
                    0,
                    False,
                    epoch=INITIAL_EPOCH + 1,
                    source_seq=seq,
                )

        follower.source = _Stub()
        with pytest.raises(ReplicationError, match="fenced frame"):
            follower.poll()
        assert follower.frames_fenced_total == 1
        assert follower.last_applied_seq == seq - 1  # nothing applied
        follower.close()
        session.close()

    def test_rejects_fenced_upstream_before_snapshot_adoption(self, tmp_path):
        """A whole source sitting on a dead epoch is rejected *before*
        the snapshot_needed path could adopt its checkpoint."""
        primary_dir = tmp_path / "primary"
        session = make_primary(primary_dir, checkpoint_every=1)
        session.insert(random_rows(random.Random(19), 2))
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(primary_dir)
        )
        drain(follower)
        follower.session.bump_epoch(5)
        session.insert(random_rows(random.Random(23), 2))  # zombie keeps going
        with pytest.raises(ReplicationError, match="fenced upstream"):
            follower.poll()
        assert follower.frames_fenced_total == 1
        follower.close()
        session.close()

    def test_adopts_higher_epoch_from_stream(self, tmp_path):
        primary_dir = tmp_path / "primary"
        session = make_primary(primary_dir)
        session.insert(random_rows(random.Random(29), 2))
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(primary_dir)
        )
        drain(follower)
        session.bump_epoch()
        session.insert(random_rows(random.Random(31), 2))
        drain(follower)
        assert follower.session.epoch == INITIAL_EPOCH + 1
        assert state_to_bytes(follower.session.discoverer) == state_to_bytes(
            session.discoverer
        )
        follower.close()
        session.close()

    def test_paginated_old_epoch_tail_is_not_poisoned(self, tmp_path):
        """A freshly promoted upstream's WAL legitimately holds frames
        from the previous epoch; fetching them one at a time must not
        adopt the new epoch early and then fence its own backlog."""
        primary_dir = tmp_path / "primary"
        session = make_primary(primary_dir)
        for seed in (37, 41, 43):
            session.insert(random_rows(random.Random(seed), 1))
        session.bump_epoch()
        session.insert(random_rows(random.Random(47), 1))
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(primary_dir)
        )
        for _ in range(16):
            follower.poll(max_frames=1)
            if follower.lag_seq == 0:
                break
        assert follower.lag_seq == 0
        assert follower.session.epoch == INITIAL_EPOCH + 1
        assert state_to_bytes(follower.session.discoverer) == state_to_bytes(
            session.discoverer
        )
        follower.close()
        session.close()


# -- the zombie-primary matrix -----------------------------------------------


@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_zombie_primary_matrix(tmp_path, fault_injector, point):
    """Kill the primary at ``point``, promote a drained follower at a
    higher epoch, resurrect the old primary as a zombie that keeps
    writing — acknowledged writes survive, zombie frames are rejected,
    and the fenced zombie rejoins by discarding its diverged tail."""
    primary_dir = tmp_path / "primary"
    setup = scripted_batches()
    session = make_primary(primary_dir, checkpoint_every=1)
    for batch in setup:
        apply_batch(session, batch)

    follower = FollowerSession.bootstrap(
        tmp_path / "follower",
        DirectorySource(primary_dir),
        checkpoint_every=1,
        retain=2,
    )
    drain(follower)

    durable = list(setup)
    fault_injector.arm(point)
    batch = target_batch("insert")
    try:
        apply_batch(session, batch)
        durable.append(batch)
    except SimulatedCrash as crash:
        assert crash.point == point
        session.simulate_power_loss()
        if point not in BATCH_LOST:
            durable.append(batch)
    else:
        session.close()
    fault_injector.reset()

    # Failover: drain the durable tail, promote at the fleet's next
    # epoch.  Every acknowledged (durably logged) write survives.
    drain(follower)
    promoted = follower.promote(epoch=INITIAL_EPOCH + 1)
    assert promoted.epoch == INITIAL_EPOCH + 1
    assert state_to_bytes(promoted.discoverer) == oracle_bytes(durable)

    # The old primary rises as a zombie — an operator restarted it and
    # the fence never reached it — and keeps writing on the dead epoch.
    zombie = DurableSession.recover(primary_dir)
    assert zombie.epoch == INITIAL_EPOCH
    apply_batch(zombie, ("insert", random_rows(random.Random(53), 2)))
    apply_batch(zombie, ("insert", random_rows(random.Random(59), 1)))

    # A downstream follower of the *new* timeline repointed at the
    # zombie rejects its feed: it proves only the dead epoch.
    downstream = FollowerSession.bootstrap(
        tmp_path / "downstream",
        DirectorySource(tmp_path / "follower"),
        checkpoint_every=1,
    )
    drain(downstream)
    assert downstream.session.epoch == INITIAL_EPOCH + 1
    downstream.source = DirectorySource(primary_dir)
    with pytest.raises(ReplicationError, match="fenced"):
        downstream.poll()
    assert downstream.frames_fenced_total > 0
    assert state_to_bytes(downstream.session.discoverer) == oracle_bytes(
        durable
    )
    downstream.close()

    # The fence finally lands on the zombie: no write on the dead
    # timeline can be acknowledged from here on, even across restarts.
    zombie.fence(INITIAL_EPOCH + 1)
    with pytest.raises(SessionFencedError):
        apply_batch(zombie, ("insert", random_rows(random.Random(61), 1)))
    zombie.close()

    # The new primary moves on...
    extra = ("insert", random_rows(random.Random(67), 2))
    apply_batch(promoted, extra)
    durable.append(extra)

    # ...and the zombie rejoins as a follower: bootstrap sees the fenced
    # manifest, rebases onto the new primary's checkpoint, discards the
    # unreplicated zombie tail, and converges byte-identically.
    rejoined = FollowerSession.bootstrap(
        primary_dir, DirectorySource(tmp_path / "follower")
    )
    assert rejoined.tail_discarded_total > 0
    drain(rejoined)
    assert rejoined.session.epoch == INITIAL_EPOCH + 1
    assert not rejoined.session.is_fenced
    assert state_to_bytes(rejoined.session.discoverer) == oracle_bytes(durable)
    assert state_to_bytes(promoted.discoverer) == oracle_bytes(durable)

    # A rejoined zombie survives its own restart on the live timeline.
    rejoined.close()
    reopened = DurableSession.recover(primary_dir)
    try:
        assert state_to_bytes(reopened.discoverer) == oracle_bytes(durable)
        assert reopened.epoch == INITIAL_EPOCH + 1
    finally:
        reopened.close()


def test_zombie_matrix_covers_every_registered_point():
    """A newly planted fault point must automatically join the matrix."""
    assert set(sorted(FAULT_POINTS)) == FAULT_POINTS


# -- the chained-convergence property ----------------------------------------


_row = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from("abc"),
    st.integers(min_value=0, max_value=2),
)
_chain_op = st.one_of(
    st.tuples(st.just("insert"), st.lists(_row, min_size=1, max_size=3)),
    st.tuples(st.just("delete"), st.integers(min_value=1, max_value=2)),
    st.tuples(st.just("poll_mid"), st.none()),
    st.tuples(st.just("poll_tail"), st.none()),
)


def _materialize_delete(relation, count):
    alive = sorted(relation.rids())
    count = min(count, max(0, len(alive) - 4))
    return alive[:count]


@settings(max_examples=10, deadline=None)
@given(
    plan=st.lists(_chain_op, min_size=1, max_size=6),
    kill_at=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
)
def test_chained_replication_converges(plan, kill_at):
    """primary → follower → follower under random bursts; optionally the
    middle hop dies and the tail repoints past the corpse.  Per-hop
    applied seqs stay monotone and the tail converges byte-identically
    to the single-node oracle over every acknowledged batch."""
    get_injector().reset()
    with tempfile.TemporaryDirectory() as tmp:
        primary_dir = os.path.join(tmp, "primary")
        discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
        session = DurableSession.create(
            discoverer, primary_dir, checkpoint_every=3, retain=2
        )
        mid = FollowerSession.bootstrap(
            os.path.join(tmp, "mid"),
            DirectorySource(primary_dir),
            checkpoint_every=2,
        )
        tail = FollowerSession.bootstrap(
            os.path.join(tmp, "tail"),
            DirectorySource(os.path.join(tmp, "mid")),
            checkpoint_every=2,
        )
        acknowledged = []
        high_water = {"mid": 0, "tail": 0}
        mid_alive = True

        def poll_hop(name, follower):
            follower.poll()
            assert follower.last_applied_seq >= high_water[name], (
                f"{name} applied seq went backwards"
            )
            high_water[name] = follower.last_applied_seq

        try:
            for index, (kind, payload) in enumerate(plan):
                if kill_at == index and mid_alive:
                    # Mid-chain kill: the middle hop dies; the tail
                    # repoints straight at the primary.
                    mid.close()
                    mid_alive = False
                    tail.source = DirectorySource(primary_dir)
                if kind == "insert":
                    session.insert(payload)
                    acknowledged.append(("insert", payload))
                elif kind == "delete":
                    rids = _materialize_delete(
                        session.discoverer.relation, payload
                    )
                    session.delete(rids)
                    acknowledged.append(("delete", rids))
                elif kind == "poll_mid" and mid_alive:
                    poll_hop("mid", mid)
                elif kind == "poll_tail":
                    poll_hop("tail", tail)
            session.close()

            oracle = oracle_bytes(acknowledged)
            if mid_alive:
                drain(mid)
                assert (
                    state_to_bytes(mid.session.discoverer) == oracle
                )
            drain(tail)
            assert state_to_bytes(tail.session.discoverer) == oracle
            assert tail.session.epoch == INITIAL_EPOCH
        finally:
            if mid_alive:
                mid.close()
            tail.close()


# -- fleet monitor units -----------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedNode(NodeHandle):
    """An in-process node handle with a settable probe payload."""

    def __init__(self, url, payload):
        self.url = url
        self.payload = payload
        self.fences = []
        self.promotions = []
        self.follows = []

    def probe(self):
        return self.payload

    def fence(self, epoch):
        if self.payload is None:
            return False
        self.fences.append(epoch)
        return True

    def promote(self, epoch):
        if self.payload is None:
            return False
        self.promotions.append(epoch)
        self.payload = dict(
            self.payload, role="primary", epoch=epoch, fenced=False
        )
        return True

    def follow(self, url):
        self.follows.append(url)
        return True


def _follower_payload(seq, epoch=INITIAL_EPOCH, serving=True):
    return {
        "role": "follower",
        "epoch": epoch,
        "fenced": False,
        "seq": seq,
        "serving": serving,
        "lag_seq": 0,
    }


def _primary_payload(seq, epoch=INITIAL_EPOCH):
    return {
        "role": "primary",
        "epoch": epoch,
        "fenced": False,
        "seq": seq,
        "serving": True,
    }


class TestChooseCandidate:
    def test_highest_seq_wins(self):
        probes = {
            "http://a": _follower_payload(4),
            "http://b": _follower_payload(9),
            "http://c": _primary_payload(12),
        }
        assert choose_candidate(probes) == "http://b"

    def test_ties_break_on_lowest_url(self):
        probes = {
            "http://b": _follower_payload(5),
            "http://a": _follower_payload(5),
        }
        assert choose_candidate(probes) == "http://a"

    def test_unreachable_and_non_serving_are_ineligible(self):
        probes = {
            "http://a": None,
            "http://b": _follower_payload(9, serving=False),
        }
        assert choose_candidate(probes) is None


class TestFleetMonitor:
    def _fleet(self, suspicion_s=2.0):
        clock = FakeClock()
        primary = ScriptedNode("http://p", _primary_payload(6))
        f1 = ScriptedNode("http://f1", _follower_payload(6))
        f2 = ScriptedNode("http://f2", _follower_payload(4))
        monitor = FleetMonitor(
            [primary, f1, f2],
            suspicion_s=suspicion_s,
            drain_s=0.2,
            clock=clock,
        )
        return clock, primary, f1, f2, monitor

    def test_healthy_primary_never_fails_over(self):
        clock, primary, f1, f2, monitor = self._fleet()
        assert monitor.step() is None
        assert monitor.primary_url == "http://p"
        clock.advance(1000.0)
        assert monitor.step() is None
        assert monitor.failovers_total == 0
        assert primary.fences == [] and f1.promotions == []

    def test_failover_waits_out_the_suspicion_window(self):
        clock, primary, f1, f2, monitor = self._fleet(suspicion_s=2.0)
        monitor.step()
        primary.payload = None  # the primary dies
        clock.advance(1.0)
        assert monitor.step() is None  # suspicious, but not long enough
        clock.advance(1.5)
        record = monitor.step()
        assert record is not None
        assert record["new_primary"] == "http://f1"  # highest seq
        assert record["epoch"] == INITIAL_EPOCH + 1
        assert monitor.primary_url == "http://f1"
        assert f1.promotions == [INITIAL_EPOCH + 1]
        # The dead primary could not be fenced (unreachable), the other
        # follower was, and was then repointed at the new primary.
        assert record["fenced"] == ["http://f2"]
        assert f2.fences == [INITIAL_EPOCH + 1]
        assert f2.follows == ["http://f1"]
        # The record is a timeline: each stage stamped in order.
        stamps = [
            record["detected_at"],
            record["fenced_at"],
            record["drained_at"],
            record["promoted_at"],
            record["repointed_at"],
        ]
        assert stamps == sorted(stamps)

    def test_cold_start_adopts_a_primary(self):
        clock = FakeClock()
        f1 = ScriptedNode("http://f1", _follower_payload(3))
        f2 = ScriptedNode("http://f2", _follower_payload(8))
        monitor = FleetMonitor([f1, f2], drain_s=0.1, clock=clock)
        record = monitor.step()
        assert record is not None
        assert record["reason"] == "no primary observed"
        assert record["new_primary"] == "http://f2"

    def test_no_candidate_means_no_failover(self):
        clock = FakeClock()
        primary = ScriptedNode("http://p", _primary_payload(6))
        monitor = FleetMonitor([primary], suspicion_s=0.5, clock=clock)
        monitor.step()
        primary.payload = None
        clock.advance(1.0)
        assert monitor.step() is None
        assert monitor.failovers_total == 0

    def test_topology_payload_aggregates_probes(self):
        clock, primary, f1, f2, monitor = self._fleet()
        monitor.step()
        payload = monitor.topology_payload()
        assert payload["primary_url"] == "http://p"
        assert payload["epoch"] == INITIAL_EPOCH
        assert [node["url"] for node in payload["nodes"]] == [
            "http://f1",
            "http://f2",
            "http://p",
        ]


# -- HTTP fleet: service endpoints, failover end-to-end ----------------------


def _start_http_fleet(tmp_path, followers=1, min_seq_wait_s=10.0):
    session = make_primary(tmp_path / "primary", checkpoint_every=100)
    primary = DCService(
        session,
        ServiceConfig(port=0, batch_window_ms=0.0, replicate_listen=True),
    )
    primary.start()
    ServiceClient(base_url=primary.url).wait_ready()
    services = [primary]
    for index in range(followers):
        follower = FollowerSession.bootstrap(
            tmp_path / f"follower{index}",
            HTTPSource(primary.url),
            primary_url=primary.url,
        )
        service = FollowerService(
            follower,
            ServiceConfig(
                port=0,
                batch_window_ms=0.0,
                min_seq_wait_s=min_seq_wait_s,
                follow_poll_wait_s=0.05,
                replicate_listen=True,
            ),
            primary_url=primary.url,
        )
        service.start()
        ServiceClient(base_url=service.url).wait_ready()
        services.append(service)
    return services


def _shutdown_all(services):
    for service in services:
        try:
            service.shutdown()
        except Exception:
            pass


class TestHTTPFencing:
    def test_fenced_write_answers_409(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=0)
        try:
            client = ServiceClient(base_url=services[0].url)
            payload = client.fence(INITIAL_EPOCH + 4)
            assert payload["fenced"] is True and payload["changed"] is True
            with pytest.raises(FencedError) as info:
                client.insert(random_rows(random.Random(71), 1))
            assert info.value.fenced_below == INITIAL_EPOCH + 4
            assert client.status()["fenced"] is True
        finally:
            _shutdown_all(services)

    def test_requester_epoch_fences_a_stale_upstream(self, tmp_path):
        """The anti-entropy heartbeat: a poller proving a newer epoch
        makes the upstream fence itself — epoch knowledge flows against
        the direction of replication, 409-ing the zombie."""
        services = _start_http_fleet(tmp_path, followers=0)
        try:
            client = ServiceClient(base_url=services[0].url)
            assert client.topology()["fenced"] is False
            with pytest.raises(FencedError):
                client.replication_frames(after_seq=0, epoch=INITIAL_EPOCH + 2)
            assert client.topology()["fenced"] is True
            with pytest.raises(FencedError):
                client.insert(random_rows(random.Random(73), 1))
        finally:
            _shutdown_all(services)

    def test_topology_payload_describes_each_node(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        try:
            primary, fservice = services
            top = ServiceClient(base_url=primary.url).topology()
            assert top["role"] == "primary"
            assert top["epoch"] == INITIAL_EPOCH
            assert top["upstream_url"] is None
            ftop = ServiceClient(base_url=fservice.url).topology()
            assert ftop["role"] == "follower"
            assert ftop["upstream_url"] == primary.url
        finally:
            _shutdown_all(services)


class TestServiceClientFailoverErgonomics:
    def test_writes_follow_the_421_hint(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        try:
            primary, fservice = services
            plain = ServiceClient(base_url=fservice.url)
            with pytest.raises(NotPrimaryError):
                plain.insert(random_rows(random.Random(79), 1))
            following = ServiceClient(
                base_url=fservice.url, follow_writes=True
            )
            outcome = following.insert(random_rows(random.Random(79), 1))
            assert outcome["status"] == "committed"
        finally:
            _shutdown_all(services)

    def test_redirect_loops_are_cut_after_two_hops(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        try:
            _, fservice = services
            fservice.primary_url = fservice.url  # stale self-referential hint
            client = ServiceClient(base_url=fservice.url, follow_writes=True)
            with pytest.raises(NotPrimaryError):
                client.insert(random_rows(random.Random(83), 1))
        finally:
            _shutdown_all(services)

    def test_connection_refused_retries_within_budget(self, monkeypatch):
        client = ServiceClient(
            base_url="http://127.0.0.1:1", connect_retry_s=5.0
        )
        attempts = []

        def fake_request(method, path, payload=None, target=None):
            attempts.append(method)
            if len(attempts) < 3:
                raise ConnectionRefusedError("nobody listening yet")
            return {"status": "committed", "seq": 1}

        monkeypatch.setattr(client, "_request", fake_request)
        outcome = client.insert([[1, "a", 1]])
        assert outcome["status"] == "committed"
        assert len(attempts) == 3

    def test_connection_refused_not_retried_by_default(self, monkeypatch):
        client = ServiceClient(base_url="http://127.0.0.1:1")

        def fake_request(method, path, payload=None, target=None):
            raise ConnectionRefusedError("nobody listening")

        monkeypatch.setattr(client, "_request", fake_request)
        with pytest.raises(ConnectionRefusedError):
            client.insert([[1, "a", 1]])

    def test_stale_reads_carry_retry_after(self, tmp_path):
        services = _start_http_fleet(
            tmp_path, followers=1, min_seq_wait_s=0.05
        )
        try:
            _, fservice = services
            client = ServiceClient(base_url=fservice.url)
            with pytest.raises(ServiceStaleError) as info:
                client.dcs(min_seq=10**6)
            assert info.value.retry_after >= 1
        finally:
            _shutdown_all(services)


class TestFleetEndToEnd:
    def test_monitor_drives_http_failover(self, tmp_path):
        """The full sequence over live services: detect the dead
        primary, fence, promote the drained follower at a new epoch,
        repoint the survivor — and writes keep landing."""
        services = _start_http_fleet(tmp_path, followers=2)
        try:
            primary, f1, f2 = services
            pclient = ServiceClient(base_url=primary.url, timeout=10.0)
            acknowledged = []
            for seed in (87, 89):
                rows = random_rows(random.Random(seed), 2)
                pclient.insert(rows)
                acknowledged.append(rows)
            target_seq = pclient.status()["seq"]
            wait_until(
                lambda: all(
                    ServiceClient(base_url=s.url).status()["seq"] == target_seq
                    for s in (f1, f2)
                ),
                message="followers to catch up",
            )

            clock = FakeClock()
            monitor = FleetMonitor(
                [HTTPNode(s.url) for s in services],
                suspicion_s=1.0,
                drain_s=2.0,
                clock=clock,
            )
            assert monitor.step() is None
            assert monitor.primary_url == primary.url

            primary.shutdown()
            monitor.step()  # observes the death; suspicion starts
            clock.advance(5.0)
            record = monitor.step()
            assert record is not None
            assert record["epoch"] == INITIAL_EPOCH + 1
            new_primary = record["new_primary"]
            survivor = f1 if new_primary == f2.url else f2

            nclient = ServiceClient(base_url=new_primary, timeout=10.0)
            top = nclient.topology()
            assert top["role"] == "primary"
            assert top["epoch"] == INITIAL_EPOCH + 1
            # No acknowledged write was lost across the failover.
            assert top["seq"] == target_seq
            outcome = nclient.insert(random_rows(random.Random(91), 1))
            assert outcome["status"] == "committed"

            # The survivor was repointed, adopts the new epoch (clearing
            # its fence), and replicates the post-failover write.
            sclient = ServiceClient(base_url=survivor.url, timeout=10.0)
            wait_until(
                lambda: sclient.topology()["upstream_url"] == new_primary,
                message="survivor to repoint",
            )
            wait_until(
                lambda: sclient.topology()["epoch"] == INITIAL_EPOCH + 1
                and not sclient.topology()["fenced"],
                message="survivor to adopt the new epoch",
            )
            wait_until(
                lambda: sclient.status()["seq"] == outcome["seq"],
                message="survivor to replicate the new write",
            )
        finally:
            _shutdown_all(services)

    def test_chained_followers_serve_the_frame_feed(self, tmp_path):
        """primary → follower → follower over HTTP: the middle hop
        serves GET /replication/frames itself, and the tail converges
        through it."""
        services = _start_http_fleet(tmp_path, followers=1)
        tail_service = None
        try:
            primary, mid = services
            tail = FollowerSession.bootstrap(
                tmp_path / "tail",
                HTTPSource(mid.url),
                primary_url=mid.url,
            )
            tail_service = FollowerService(
                tail,
                ServiceConfig(
                    port=0,
                    batch_window_ms=0.0,
                    follow_poll_wait_s=0.05,
                    replicate_listen=True,
                ),
                primary_url=mid.url,
            )
            tail_service.start()
            ServiceClient(base_url=tail_service.url).wait_ready()

            pclient = ServiceClient(base_url=primary.url, timeout=10.0)
            outcome = pclient.insert(random_rows(random.Random(97), 3))
            tclient = ServiceClient(base_url=tail_service.url, timeout=10.0)
            wait_until(
                lambda: tclient.status()["seq"] == outcome["seq"],
                message="tail of the chain to converge",
            )
            assert tclient.topology()["upstream_url"] == mid.url
            assert state_to_bytes(
                tail_service.session.discoverer
            ) == state_to_bytes(primary.session.discoverer)
        finally:
            if tail_service is not None:
                tail_service.shutdown()
            _shutdown_all(services)


# -- FleetClient -------------------------------------------------------------


class TestFleetClient:
    def test_routes_writes_to_primary_and_reads_anywhere(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        try:
            primary, fservice = services
            fleet = FleetClient(seeds=[fservice.url, primary.url])
            outcome = fleet.insert(random_rows(random.Random(101), 2))
            assert outcome["status"] == "committed"
            assert fleet.primary_url == primary.url
            assert fleet.min_seq == outcome["seq"]
            # Read-your-writes: whichever replica answers must be at
            # least as fresh as the acknowledged write.
            payload = fleet.dcs()
            assert payload["seq"] >= outcome["seq"]
        finally:
            _shutdown_all(services)

    def test_write_survives_a_failover(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        try:
            primary, fservice = services
            fleet = FleetClient(
                seeds=[primary.url, fservice.url],
                failover_timeout_s=15.0,
                retry_backoff_s=0.05,
            )
            fleet.insert(random_rows(random.Random(103), 1))
            primary.shutdown()
            wait_until(
                lambda: fservice.follower.lag_seq == 0
                or fservice.role == "primary",
                message="follower drained",
            )
            ServiceClient(base_url=fservice.url).promote(
                epoch=INITIAL_EPOCH + 1
            )
            outcome = fleet.insert(random_rows(random.Random(107), 1))
            assert outcome["status"] == "committed"
            assert fleet.primary_url == fservice.url
            assert fleet.write_retries_total >= 1
        finally:
            _shutdown_all(services)

    def test_no_primary_raises_after_the_timeout(self):
        fleet = FleetClient(
            seeds=["http://127.0.0.1:1"],
            failover_timeout_s=0.2,
            retry_backoff_s=0.01,
        )
        with pytest.raises(NoPrimaryError):
            fleet.insert([[1, "a", 1]])

    def test_discovers_from_the_coordinator(self, tmp_path):
        services = _start_http_fleet(tmp_path, followers=1)
        coordinator = None
        try:
            monitor = FleetMonitor(
                [HTTPNode(s.url) for s in services], suspicion_s=5.0
            )
            monitor.step()
            coordinator = CoordinatorServer(monitor)
            coordinator.start()
            fleet = FleetClient(seeds=[], coordinator_url=coordinator.url)
            outcome = fleet.insert(random_rows(random.Random(109), 1))
            assert outcome["status"] == "committed"
            assert fleet.primary_url == services[0].url
            assert fleet.follower_urls == [services[1].url]
        finally:
            if coordinator is not None:
                coordinator.close()
            _shutdown_all(services)


# -- doctor bundles know about the fleet -------------------------------------


class TestDoctorFleetFacts:
    def test_bundle_roundtrips_epoch_and_upstream(self, tmp_path):
        from repro.doctor import build_bundle, read_bundle, write_bundle

        services = _start_http_fleet(tmp_path, followers=1)
        try:
            primary, fservice = services
            ServiceClient(base_url=primary.url).insert(
                random_rows(random.Random(113), 2)
            )
            bundle = build_bundle(
                session_dir=os.fspath(tmp_path / "primary"),
                url=fservice.url,
            )
            path = os.fspath(tmp_path / "bundle.tar.gz")
            write_bundle(bundle, path)
            loaded = read_bundle(path)

            session = loaded["session"]
            assert session["epoch"] == INITIAL_EPOCH
            assert session["fenced_below"] is None
            assert session["wal"]["epochs"] == [INITIAL_EPOCH]
            service = loaded["service"]
            assert service["role"] == "follower"
            assert service["epoch"] == INITIAL_EPOCH
            assert service["upstream_url"] == primary.url
        finally:
            _shutdown_all(services)

    def test_bundle_surfaces_a_fence(self, tmp_path):
        from repro.doctor import inspect_session

        session = make_primary(tmp_path / "s")
        session.insert(random_rows(random.Random(127), 1))
        session.bump_epoch()
        session.insert(random_rows(random.Random(131), 1))
        session.fence(session.epoch + 3)
        session.close()

        report = inspect_session(tmp_path / "s")
        assert report["epoch"] == INITIAL_EPOCH + 1
        assert report["fenced_below"] == INITIAL_EPOCH + 4
        assert report["wal"]["epochs"] == [INITIAL_EPOCH, INITIAL_EPOCH + 1]
