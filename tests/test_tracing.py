"""Cross-layer request tracing: identity, recording, propagation, doctor.

Covers the tracing acceptance pillars:

- :class:`TraceContext` identity and W3C ``traceparent`` round-trips;
- the flight recorder: span nesting, slow ring, link-following trace
  resolution, and exact per-request work apportionment;
- traced WAL frames: both magics decode, torn-tail accounting includes
  the trace id bytes (reopening a log must never drop traced records);
- tracing is an observer: work counters and state bytes are identical
  with the recorder on and off;
- the end-to-end contract: under ≥20 interleaved concurrent writes and
  reads, every response carries a trace id that resolves at
  ``GET /debug/trace`` to the cycle → WAL append → maintenance (→ worker
  shards) span tree, and per-request work counters sum exactly to each
  cycle's totals;
- the ``repro-dc doctor`` bundle: schema-checked build, tar.gz/JSON
  round-trip, graceful degradation.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_bytes
from repro.doctor import (
    BUNDLE_FORMAT,
    build_bundle,
    read_bundle,
    validate_bundle,
    write_bundle,
)
from repro.durability import DurableSession
from repro.durability.framing import (
    MAGIC,
    MAGIC_TRACED,
    decode_frames,
    encode_record,
)
from repro.durability.wal import WriteAheadLog
from repro.observability import tracectx
from repro.observability.flight import (
    FlightRecorder,
    build_span_tree,
    set_recorder,
    split_counters,
    trace_span,
)
from repro.observability.tracectx import TraceContext
from repro.service import DCService, ServiceClient, ServiceConfig
from repro.workloads import staff_relation


@pytest.fixture
def recorder():
    """A fresh recorder installed for the test, always uninstalled."""
    active = FlightRecorder(max_spans=256, slow_threshold_s=0.5)
    previous = set_recorder(active)
    yield active
    set_recorder(previous)


# -- trace-context identity ---------------------------------------------------


class TestTraceContext:
    def test_mint_is_unique_and_well_formed(self):
        first, second = TraceContext.mint(), TraceContext.mint()
        assert first.trace_id != second.trace_id
        assert len(first.trace_id) == 32 and len(first.span_id) == 16
        int(first.trace_id, 16)  # hex or raise

    def test_traceparent_round_trip(self):
        context = TraceContext.mint()
        parsed = TraceContext.from_traceparent(context.traceparent())
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-span-01",
            "00-" + "g" * 32 + "-" + "0" * 16 + "-01",
        ],
    )
    def test_malformed_traceparent_is_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_child_keeps_trace_changes_span(self):
        parent = TraceContext.mint()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_activate_nests_and_restores(self):
        assert tracectx.current() is None
        outer, inner = TraceContext.mint(), TraceContext.mint()
        with tracectx.activate(outer):
            assert tracectx.current() is outer
            with tracectx.activate(inner):
                assert tracectx.current() is inner
            assert tracectx.current() is outer
        assert tracectx.current() is None


# -- flight recorder ----------------------------------------------------------


class TestFlightRecorder:
    def test_trace_span_is_noop_without_recorder(self):
        set_recorder(None)
        with tracectx.activate(TraceContext.mint()):
            with trace_span("work") as span:
                assert span is None

    def test_trace_span_is_noop_without_context(self, recorder):
        with trace_span("work") as span:
            assert span is None
        assert recorder.spans() == []

    def test_nested_spans_parent_correctly(self, recorder):
        context = TraceContext.mint()
        with tracectx.activate(context):
            with trace_span("outer") as outer:
                with trace_span("inner"):
                    pass
        spans = recorder.spans()
        assert [span["name"] for span in spans] == ["inner", "outer"]
        inner, recorded_outer = spans
        assert inner["parent_id"] == outer["span_id"]
        assert recorded_outer["parent_id"] == context.span_id
        tree = build_span_tree(spans)
        assert [root["name"] for root in tree] == ["outer"]
        assert [child["name"] for child in tree[0]["children"]] == ["inner"]

    def test_slow_ring_keeps_spans_over_threshold(self, recorder):
        fast = {"trace_id": "t", "span_id": "a", "name": "fast",
                "start": 0.0, "duration": 0.1, "attrs": {}}
        slow = {"trace_id": "t", "span_id": "b", "name": "slow",
                "start": 0.0, "duration": 0.9, "attrs": {}}
        recorder.record_span(fast)
        recorder.record_span(slow)
        assert [span["name"] for span in recorder.slow_spans()] == ["slow"]

    def test_trace_tree_follows_links_both_ways(self, recorder):
        request = TraceContext.mint()
        cycle = TraceContext.mint()
        recorder.record_span({
            "trace_id": request.trace_id, "span_id": "r1", "name": "http",
            "start": 0.0, "duration": 0.01, "attrs": {},
        })
        recorder.record_span({
            "trace_id": cycle.trace_id, "span_id": "c1", "name": "cycle",
            "start": 0.0, "duration": 0.02, "attrs": {},
            "links": [request.trace_id],
        })
        tree = recorder.trace_tree(request.trace_id)
        assert tree["linked_trace_ids"] == [cycle.trace_id]
        assert [span["name"] for span in tree["spans"]] == ["http"]
        assert [span["name"] for span in tree["linked_spans"]] == ["cycle"]

    def test_span_ring_is_bounded(self):
        recorder = FlightRecorder(max_spans=8)
        for index in range(20):
            recorder.record_span({
                "trace_id": "t", "span_id": str(index), "name": "s",
                "start": float(index), "duration": 0.0, "attrs": {},
            })
        spans = recorder.spans()
        assert len(spans) == 8
        assert spans[-1]["span_id"] == "19"


class TestSplitCounters:
    def test_shares_sum_exactly_to_totals(self):
        totals = {"pairs": 17, "probes": 5, "zero": 0}
        shares = split_counters(totals, [3, 1, 2])
        assert len(shares) == 3
        for name, total in totals.items():
            assert sum(share[name] for share in shares) == total

    def test_zero_weights_fall_back_to_even_split(self):
        shares = split_counters({"pairs": 10}, [0, 0])
        assert sorted(share["pairs"] for share in shares) == [5, 5]

    def test_weighting_shapes_the_shares(self):
        [small, large] = split_counters({"pairs": 100}, [1, 9])
        assert large["pairs"] > small["pairs"]
        assert small["pairs"] + large["pairs"] == 100

    def test_empty_weights(self):
        assert split_counters({"pairs": 5}, []) == []


# -- traced WAL frames --------------------------------------------------------


class TestTracedFraming:
    def test_untraced_frame_uses_legacy_magic(self):
        frame = encode_record(b"payload")
        assert frame.startswith(MAGIC)
        [(payload, trace_id)], good = decode_frames(frame)
        assert payload == b"payload" and trace_id is None
        assert good == len(frame)

    def test_traced_frame_round_trips_trace_id(self):
        trace_id = TraceContext.mint().trace_id
        frame = encode_record(b"payload", trace_id=trace_id)
        assert frame.startswith(MAGIC_TRACED)
        [(payload, decoded)], good = decode_frames(frame)
        assert payload == b"payload" and decoded == trace_id
        assert good == len(frame)

    def test_mixed_frames_interleave(self):
        trace_id = TraceContext.mint().trace_id
        data = (
            encode_record(b"a")
            + encode_record(b"b", trace_id=trace_id)
            + encode_record(b"c")
        )
        frames, good = decode_frames(data)
        assert [payload for payload, _ in frames] == [b"a", b"b", b"c"]
        assert [tid for _, tid in frames] == [None, trace_id, None]
        assert good == len(data)

    def test_torn_traced_tail_truncates_to_good_prefix(self):
        trace_id = TraceContext.mint().trace_id
        keep = encode_record(b"keep", trace_id=trace_id)
        torn = encode_record(b"torn", trace_id=trace_id)[:-3]
        frames, good = decode_frames(keep + torn)
        assert [payload for payload, _ in frames] == [b"keep"]
        assert good == len(keep)

    def test_reopen_preserves_traced_records(self, tmp_path):
        """The good-prefix accounting must include the trace-id bytes —
        otherwise reopening for append truncates valid traced frames."""
        path = tmp_path / "wal.log"
        context = TraceContext.mint()
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "insert"})
        with tracectx.activate(context):
            wal.append({"seq": 2, "op": "delete"})
        wal.close()
        reopened = WriteAheadLog(path)
        reopened.append({"seq": 3, "op": "insert"})
        reopened.close()
        records = WriteAheadLog.read_traced_records(path)
        assert [record["seq"] for record, _ in records] == [1, 2, 3]
        assert [tid for _, tid in records] == [
            None, context.trace_id, None,
        ]


# -- tracing is an observer ---------------------------------------------------


class TestTracingByteIdentity:
    def test_counters_and_state_identical_traced_vs_untraced(self):
        rows = [(10 + i, "Ana" if i % 2 else "Bo", 2000 + i, i % 4, 1)
                for i in range(6)]

        def run(traced: bool):
            discoverer = DCDiscoverer(staff_relation())
            discoverer.fit()
            previous = set_recorder(FlightRecorder() if traced else None)
            try:
                context = TraceContext.mint() if traced else None
                with tracectx.activate(context):
                    insert = discoverer.insert(rows)
                    delete = discoverer.delete([insert.rids[0], 1])
            finally:
                set_recorder(previous)
            counters = [
                insert.report.metrics["counters"],
                delete.report.metrics["counters"],
            ]
            return json.dumps(counters, sort_keys=True), state_to_bytes(
                discoverer
            )

        traced_counters, traced_state = run(traced=True)
        untraced_counters, untraced_state = run(traced=False)
        assert traced_counters == untraced_counters
        assert traced_state == untraced_state


# -- end-to-end: concurrent traffic resolves through /debug/trace -------------


def _service_over(tmp_path, workers: int) -> DCService:
    discoverer = DCDiscoverer(staff_relation(), workers=workers)
    session = DurableSession.create(discoverer, tmp_path / "session")
    service = DCService(
        session, ServiceConfig(port=0, batch_window_ms=5.0)
    )
    service.start()
    return service


class TestEndToEndTracing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_concurrent_traffic_traces_resolve(self, tmp_path, workers):
        service = _service_over(tmp_path, workers)
        try:
            self._drive_and_assert(service, workers)
        finally:
            service.shutdown()

    def _drive_and_assert(self, service: DCService, workers: int) -> None:
        probe = ServiceClient(base_url=service.url, timeout=60.0)
        probe.wait_ready()
        write_outcomes: list = []
        read_trace_ids: list = []
        collect = threading.Lock()
        n_writers = 4

        def writer(worker_id: int):
            client = ServiceClient(base_url=service.url, timeout=60.0)
            base = 100 + worker_id * 20
            for step in range(3):
                rows = [
                    [base + 2 * step, f"W{worker_id}", 2000 + step, 1, 1],
                    [base + 2 * step + 1, f"W{worker_id}", 2001 + step, 2, 1],
                ]
                inserted = client.insert(rows)
                assert client.last_trace_id == inserted["trace_id"]
                with collect:
                    write_outcomes.append(inserted)
                deleted = client.delete([inserted["rids"][0]])
                with collect:
                    write_outcomes.append(deleted)

        def reader():
            client = ServiceClient(base_url=service.url, timeout=60.0)
            for _ in range(6):
                status = client.status()
                dcs = client.dcs()
                with collect:
                    read_trace_ids.extend(
                        [status["trace_id"], dcs["trace_id"]]
                    )

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(n_writers)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # ≥20 interleaved writes, plus concurrent reads, all traced.
        assert len(write_outcomes) == n_writers * 6 >= 20
        assert len(read_trace_ids) == 24
        assert all(len(tid) == 32 for tid in read_trace_ids)

        shard_seen = False
        for outcome in write_outcomes:
            assert outcome["status"] == "committed"
            tree = probe.debug_trace(trace_id=outcome["trace_id"])
            # The request's own HTTP span was recorded under its trace.
            direct = [span["name"] for span in tree["spans"]]
            assert any(name.startswith("http.POST") for name in direct)
            # The link resolves to the batch cycle that served it …
            assert outcome["cycle_trace_id"] in tree["linked_trace_ids"]
            [cycle_root] = [
                root for root in tree["linked_spans"]
                if root["name"] == "service.cycle"
                and root["trace_id"] == outcome["cycle_trace_id"]
            ]
            # … whose children span the WAL append and the maintenance
            # call's mirrored span tree.
            child_names = {child["name"] for child in cycle_root["children"]}
            assert "durability.wal_append" in child_names
            assert child_names & {"insert", "delete"}
            linked_names = _flatten_names(tree["linked_spans"])
            if any(name.startswith("evidence.shard[") for name in linked_names):
                shard_seen = True
        if workers > 1:
            assert shard_seen, (
                "workers=2 cycles must record per-shard spans"
            )

        # Per-request work counters sum exactly to each cycle's totals.
        cycles: dict = {}
        for outcome in write_outcomes:
            cycles.setdefault(outcome["cycle_trace_id"], []).append(
                outcome["work"]
            )
        cycle_spans = {
            span["trace_id"]: span
            for span in service.flight.spans()
            if span["name"] == "service.cycle"
        }
        for cycle_trace_id, works in cycles.items():
            totals = cycle_spans[cycle_trace_id]["attrs"]["work"]
            for name, total in totals.items():
                assert sum(work[name] for work in works) == total

    def test_slow_query_and_plain_listing(self, tmp_path):
        service = _service_over(tmp_path, workers=1)
        try:
            client = ServiceClient(base_url=service.url, timeout=30.0)
            client.wait_ready()
            client.insert([[50, "Zed", 2020, 3, 1]])
            listing = client.debug_trace(limit=10)
            assert "spans" in listing and "events" in listing
            slow = client.debug_trace(slow=True)
            assert "slow" in slow and "slow_threshold_s" in slow
        finally:
            service.shutdown()

    def test_client_traceparent_is_adopted(self, tmp_path):
        service = _service_over(tmp_path, workers=1)
        try:
            client = ServiceClient(base_url=service.url, timeout=30.0)
            client.wait_ready()
            status = client.status()
            # The server adopts the client's minted context, so the
            # response id equals the one the client generated.
            assert status["trace_id"] == client.last_trace_id
        finally:
            service.shutdown()


def _flatten_names(roots) -> set:
    names = set()
    stack = list(roots)
    while stack:
        span = stack.pop()
        names.add(span["name"])
        stack.extend(span.get("children", ()))
    return names


# -- doctor bundle ------------------------------------------------------------


class TestDoctorBundle:
    def _session_dir(self, tmp_path):
        discoverer = DCDiscoverer(staff_relation())
        session = DurableSession.create(discoverer, tmp_path / "session")
        session.insert([(5, "Ema", 2002, 3, 1)])
        session.close()
        return tmp_path / "session"

    def test_bundle_round_trips_through_schema_check(self, tmp_path):
        session_dir = self._session_dir(tmp_path)
        results_dir = tmp_path / "results"
        results_dir.mkdir()
        (results_dir / "fig5.json").write_text('{"counters": {"x": 1}}')
        bundle = build_bundle(
            session_dir=str(session_dir), results_dir=str(results_dir)
        )
        assert bundle["format"] == BUNDLE_FORMAT
        assert bundle["session"]["wal"]["records"] == 1
        assert bundle["results"]["files"]["fig5.json"]["counters"] == {"x": 1}

        for out_name in ("bundle.tar.gz", "bundle.json"):
            out_path = str(tmp_path / out_name)
            assert write_bundle(bundle, out_path) == out_path
            loaded = read_bundle(out_path)
            assert loaded == json.loads(json.dumps(bundle))

    def test_bundle_session_inspection_is_read_only(self, tmp_path):
        session_dir = self._session_dir(tmp_path)
        wal_path = session_dir / "wal.log"
        before = wal_path.read_bytes()
        build_bundle(session_dir=str(session_dir))
        assert wal_path.read_bytes() == before

    def test_collectors_degrade_gracefully(self, tmp_path):
        bundle = build_bundle(
            session_dir=str(tmp_path / "missing"),
            url="http://127.0.0.1:1",  # nothing listens here
            results_dir=str(tmp_path / "absent"),
            metrics_path=str(tmp_path / "no-metrics.json"),
        )
        assert bundle["session"]["error"] == "no such directory"
        assert "error" in bundle["service"]["status"]
        assert bundle["results"]["error"] == "no such directory"
        assert "error" in bundle["metrics_snapshot"]

    def test_validate_rejects_missing_and_mistyped_sections(self):
        with pytest.raises(ValueError, match="missing required section"):
            validate_bundle({"format": BUNDLE_FORMAT})
        good = build_bundle()
        bad = dict(good)
        bad["results"] = "not a dict"
        with pytest.raises(ValueError, match="must be dict"):
            validate_bundle(bad)
        renamed = dict(good)
        renamed["format"] = "other"
        with pytest.raises(ValueError, match="unknown bundle format"):
            validate_bundle(renamed)

    def test_doctor_cli_writes_bundle(self, tmp_path, capsys):
        from repro.cli import main

        session_dir = self._session_dir(tmp_path)
        out_path = tmp_path / "doctor-bundle.tar.gz"
        assert main([
            "doctor", "--dir", str(session_dir), "--out", str(out_path)
        ]) == 0
        bundle = read_bundle(str(out_path))
        assert bundle["session"]["wal"]["records"] == 1
        assert str(out_path) in capsys.readouterr().out
