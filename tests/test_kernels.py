"""Cross-backend tests for the pluggable evidence kernels.

The vectorized (NumPy) kernel and the pure-Python kernel must be
*indistinguishable from the outside*: byte-identical canonical state
under PR 2's serialization, identical deterministic work counters, and
identical behaviour on every maintenance path (static build, inserts in
both collection strategies, both delete strategies).  These tests reuse
the differential suite's static oracle so the kernels are checked
against ground truth, not merely against each other.

NumPy-dependent tests skip cleanly when NumPy is absent — the registry
is then exercised through its fallback arm instead.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_bytes
from repro.evidence.indexes import ColumnIndexes
from repro.evidence.kernels import (
    BACKENDS,
    DEFAULT_BACKEND,
    make_kernel,
    validate_backend,
    vectorized,
)
from repro.evidence.kernels.base import CounterSink, ReconcileTask
from repro.evidence.kernels.pure import PythonKernel
from repro.predicates.space import build_predicate_space
from repro.relational.loader import relation_from_rows
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import pick_delete_rids, split_for_insert
from tests.test_differential import assert_matches_oracle

needs_numpy = pytest.mark.skipif(
    not vectorized.numpy_available(), reason="NumPy is not installed"
)

NAN = float("nan")

#: Mixed-type rows covering the kernel's encoding corners: INTEGER,
#: FLOAT (with NaN), and STRING columns, duplicate values (equality
#: clues), and int-valued floats (cross-type equality).
MIXED_HEADER = ["Id", "Score", "Grade", "Name"]
MIXED_ROWS = [
    (1, 1.0, 50, "Ana"),
    (2, NAN, 40, "Sam"),
    (3, 2.5, 50, "Ana"),
    (4, NAN, 35, "Kai"),
    (5, 2.0, 40, "Lou"),
    (6, 1.0, 61, "Sam"),
    (7, 4.0, 35, "Ana"),
    (8, 2.5, 50, "Ema"),
]
MIXED_DELTA = [
    (9, 3.0, 50, "Ana"),
    (2, NAN, 44, "Ema"),
    (10, 1.0, 61, "Noa"),
    (5, 2.0, 35, "Sam"),
]


def _fitted(backend, rows=None, **config):
    relation = relation_from_rows(MIXED_HEADER, list(rows or MIXED_ROWS))
    discoverer = DCDiscoverer(relation, backend=backend, **config)
    discoverer.fit()
    return discoverer


class TestRegistry:
    def test_validate_backend_accepts_known_names(self):
        for name in BACKENDS:
            assert validate_backend(name) == name
        assert validate_backend(None) == DEFAULT_BACKEND

    def test_validate_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown evidence backend"):
            validate_backend("cuda")

    def test_discoverer_rejects_unknown_backend(self):
        relation = relation_from_rows(MIXED_HEADER, MIXED_ROWS)
        with pytest.raises(ValueError, match="unknown evidence backend"):
            DCDiscoverer(relation, backend="fortran")

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_np", None)
        relation = relation_from_rows(MIXED_HEADER, MIXED_ROWS)
        space = build_predicate_space(relation)
        indexes = ColumnIndexes(relation)
        with pytest.raises(RuntimeError, match="NumPy is not installed"):
            make_kernel("numpy", relation, space, indexes)
        # `auto` degrades silently instead.
        kernel = make_kernel("auto", relation, space, indexes)
        assert isinstance(kernel, PythonKernel)

    @needs_numpy
    def test_bigint_data_falls_back_to_python(self):
        rows = [(2**60 + i, 1.0, i, "x") for i in range(4)]
        relation = relation_from_rows(MIXED_HEADER, rows)
        discoverer = DCDiscoverer(relation, backend="numpy")
        result = discoverer.fit()
        counters = result.report.metrics["counters"]
        # The registry degraded to the python kernel and said so.
        assert counters["kernel.fallbacks"] >= 1
        assert counters["kernel.batches.python"] >= 1
        assert "kernel.batches.numpy" not in counters
        # ... and the degraded run is still correct.
        assert_matches_oracle(discoverer)

    @needs_numpy
    def test_backend_identity_probe_counters(self):
        result = _fitted("numpy").insert(list(MIXED_DELTA))
        counters = result.report.metrics["counters"]
        assert counters["kernel.batches.numpy"] == counters["kernel.batches"]


@needs_numpy
class TestByteIdenticalState:
    """`state_to_bytes` equality is the strongest cross-backend check:
    it covers the evidence multiset, the DC antichain, and the per-tuple
    evidence index in one comparison."""

    def test_static_build(self):
        assert state_to_bytes(_fitted("python")) == state_to_bytes(
            _fitted("numpy")
        )

    @pytest.mark.parametrize("infer_within_delta", [True, False])
    def test_insert_both_collection_strategies(self, infer_within_delta):
        states = {}
        for backend in ("python", "numpy"):
            discoverer = _fitted(
                backend, infer_within_delta=infer_within_delta
            )
            discoverer.insert(list(MIXED_DELTA))
            states[backend] = state_to_bytes(discoverer)
        assert states["python"] == states["numpy"]

    @pytest.mark.parametrize("delete_strategy", ["index", "recompute"])
    def test_delete_both_strategies(self, delete_strategy):
        states = {}
        for backend in ("python", "numpy"):
            discoverer = _fitted(backend, delete_strategy=delete_strategy)
            discoverer.delete(list(discoverer.relation.rids())[1::3])
            states[backend] = state_to_bytes(discoverer)
        assert states["python"] == states["numpy"]

    def test_empty_delta_operations(self):
        states = {}
        for backend in ("python", "numpy"):
            discoverer = _fitted(backend)
            discoverer.insert([])
            discoverer.delete([])
            states[backend] = state_to_bytes(discoverer)
        assert states["python"] == states["numpy"]

    def test_mixed_update_sequence_and_counters(self):
        """Interleaved inserts and deletes; the deterministic evidence
        work counters must agree batch for batch, not just the final
        state."""
        states = {}
        counter_logs = {}
        for backend in ("python", "numpy"):
            discoverer = _fitted(backend)
            log = []
            for result in (
                discoverer.insert(list(MIXED_DELTA)),
                discoverer.delete(list(discoverer.relation.rids())[::4]),
                discoverer.insert([(11, NAN, 35, "Ana")]),
            ):
                log.append(
                    {
                        name: value
                        for name, value in result.report.metrics[
                            "counters"
                        ].items()
                        if name.startswith("evidence.")
                    }
                )
            states[backend] = state_to_bytes(discoverer)
            counter_logs[backend] = log
        assert states["python"] == states["numpy"]
        assert counter_logs["python"] == counter_logs["numpy"]

    def test_differential_workload_matches_oracle(self):
        """The numpy backend run through the differential suite's
        randomized workload must land on the static oracle's answer."""
        rows = DATASETS["Tax"].rows(60, seed=3)
        workload = split_for_insert(rows, ratio=0.25, retain=0.7, seed=3)
        relation = relation_from_rows(
            DATASETS["Tax"].header, list(workload.static_rows)
        )
        discoverer = DCDiscoverer(relation, backend="numpy")
        discoverer.fit()
        discoverer.insert(list(workload.delta_rows))
        discoverer.delete(pick_delete_rids(discoverer.relation, 0.2, seed=3))
        assert_matches_oracle(discoverer)


@needs_numpy
class TestCli:
    def test_backend_flag_produces_identical_state(self, tmp_path):
        import csv

        path = tmp_path / "mixed.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(MIXED_HEADER)
            writer.writerows(
                [row for row in MIXED_ROWS if row[1] == row[1]]  # no NaN in CSV
            )
        states = {}
        for backend in ("python", "numpy"):
            state = tmp_path / f"{backend}.json"
            assert (
                main(
                    [
                        "discover",
                        str(path),
                        "--backend",
                        backend,
                        "--state",
                        str(state),
                    ]
                )
                == 0
            )
            states[backend] = state.read_bytes()
        assert states["python"] == states["numpy"]

    def test_backend_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["discover", "ignored.csv", "--backend", "cuda"])


# -- Hypothesis: clue-bitset folding -----------------------------------------

_value = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False).map(
        lambda x: round(x, 1)
    ),
    st.just(NAN),
)
_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        _value,
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=3,
    max_size=12,
)


@needs_numpy
@settings(max_examples=30, deadline=None)
@given(rows=_rows_strategy, data=st.data())
def test_clue_bitset_folding_property(rows, data):
    """For arbitrary task subsets over arbitrary mixed-type tables, the
    vectorized kernel's clue-bitset folding must produce exactly the
    pure-Python kernel's evidence partition — same masks, same
    multiplicities, same per-pipeline statistics."""
    relation = relation_from_rows(["I", "F", "S"], rows)
    space = build_predicate_space(relation)
    indexes = ColumnIndexes(relation)
    alive = sorted(relation.rids())
    tasks = []
    for rid in alive:
        partners = 0
        for other in alive:
            if other != rid and data.draw(st.booleans()):
                partners |= 1 << other
        tasks.append(ReconcileTask(rid, partners))

    folds = {}
    stats = {}
    for backend in ("python", "numpy"):
        kernel = make_kernel(backend, relation, space, indexes)
        sink = CounterSink({})
        result = kernel.reconcile(tasks, sink)
        folds[backend] = sink.counts
        stats[backend] = (result.pipelines, result.pairs, result.contexts_out)
    assert folds["python"] == folds["numpy"]
    assert stats["python"] == stats["numpy"]
