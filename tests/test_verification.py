"""Differential tests of the sweep-and-probe verification kernel.

The kernel (:mod:`repro.verification`) must agree *byte-identically* with
the two pre-existing violation detectors on every relation and DC:

- :func:`repro.dcs.violations.find_violations` — the quadratic
  ordered-pair oracle;
- :func:`repro.dcs.violations.violating_partners` — the per-tuple IncDC
  probe plan, checked row by row.

Hypothesis generates the relations (categorical, integer, and float
columns — NaN included, exercising the engine-wide NaN total order) and a
seeded RNG draws DC masks from the predicate space.  The heavy suites
carry the ``verification`` marker; the dedicated CI job re-runs them
under the high-budget Hypothesis profile (see ``tests/conftest.py``).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, relation_from_rows
from repro.core.state_io import state_to_bytes, state_to_dict
from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.violations import find_violations, violating_partners
from repro.enumeration.dynamic import dynei_delete
from repro.evidence.indexes import ColumnIndexes
from repro.predicates import build_predicate_space
from repro.verification import ProbeCache, Verifier

NAN = float("nan")

# Tight domains so ties, violations, and NaN collisions all occur.
row_strategy = st.tuples(
    st.integers(0, 3),
    st.sampled_from("ab"),
    st.sampled_from([0.0, 1.5, 2.0, 7.25, NAN]),
)
rows_strategy = st.lists(row_strategy, min_size=2, max_size=12)


def _fixture(rows):
    relation = relation_from_rows(["A", "B", "C"], rows)
    space = build_predicate_space(relation, cross_column_ratio=0.0)
    return relation, space, ColumnIndexes(relation)


def _draw_masks(rng, space, count=6, max_width=3):
    bits = list(range(space.n_bits))
    masks = set()
    for _ in range(count):
        mask = 0
        for bit in rng.sample(bits, rng.randint(1, min(max_width, len(bits)))):
            mask |= 1 << bit
        masks.add(mask)
    return sorted(masks)


def _partner_bits(oracle, rid):
    as_first = 0
    as_second = 0
    for first, second in oracle:
        if first == rid:
            as_first |= 1 << second
        if second == rid:
            as_second |= 1 << first
    return as_first, as_second


@pytest.mark.verification
@given(rows=rows_strategy, seed=st.integers(0, 10**9))
@settings(deadline=None)
def test_kernel_matches_oracle(rows, seed):
    """verify() reproduces the ordered-pair oracle exactly: same pairs,
    same count, same verdict — for every plan the selector picks."""
    relation, space, indexes = _fixture(rows)
    verifier = Verifier(relation, indexes, space)
    rng = random.Random(seed)
    for mask in _draw_masks(rng, space):
        dc = DenialConstraint(mask, space)
        oracle = sorted(find_violations(dc, relation))
        result = verifier.verify(dc, sample=None)
        assert sorted(result.pairs) == oracle, (dc, result.plan)
        assert result.n_violations == len(oracle)
        assert result.holds == (not oracle)
        assert not result.truncated
        # The capped scan is a prefix-exact lower bound.
        if oracle:
            cap = rng.randint(1, len(oracle) + 1)
            capped = verifier.verify(dc, limit=cap)
            assert capped.n_violations == min(cap, len(oracle))
            if not capped.truncated:
                assert capped.n_violations == len(oracle)
            assert not capped.holds


@pytest.mark.verification
@given(rows=rows_strategy, seed=st.integers(0, 10**9))
@settings(deadline=None)
def test_kernel_matches_per_tuple_plan(rows, seed):
    """For every generated row, the kernel's pair set projects to exactly
    the per-tuple IncDC probe plan's (as_first, as_second) bits."""
    relation, space, indexes = _fixture(rows)
    verifier = Verifier(relation, indexes, space)
    rng = random.Random(seed)
    for mask in _draw_masks(rng, space, count=4):
        dc = DenialConstraint(mask, space)
        pairs = verifier.violating_pairs(dc)
        for rid in relation.rids():
            expected = _partner_bits(pairs, rid)
            assert violating_partners(dc, relation, indexes, rid) == expected


@pytest.mark.verification
@given(rows=rows_strategy, row=row_strategy, seed=st.integers(0, 10**9))
@settings(deadline=None)
def test_admission_check_matches_pairwise_eval(rows, row, seed):
    """violating_partners_for_row on a candidate row (not in the
    relation) agrees with direct pairwise evaluation, with and without a
    shared ProbeCache."""
    from repro.dcs.violations import violating_partners_for_row

    relation, space, indexes = _fixture(rows)
    rng = random.Random(seed)
    cache = ProbeCache(indexes)
    for mask in _draw_masks(rng, space, count=4):
        dc = DenialConstraint(mask, space)
        expect_first = 0
        expect_second = 0
        for rid in relation.rids():
            other = relation.row(rid)
            if not dc.holds_on_pair(row, other):
                expect_first |= 1 << rid
            if not dc.holds_on_pair(other, row):
                expect_second |= 1 << rid
        assert violating_partners_for_row(dc, row, indexes) == (
            expect_first,
            expect_second,
        )
        assert violating_partners_for_row(
            dc, row, indexes, probes=cache.partners
        ) == (expect_first, expect_second)
    assert cache.misses <= cache.lookups


class TestPlans:
    """Every plan kind is reachable and correct on a crafted relation."""

    def _fixture(self):
        rows = [
            (1, "a", 1.0),
            (1, "b", 2.0),
            (2, "a", NAN),
            (2, "a", 2.0),
            (3, "c", 0.5),
        ]
        return _fixture(rows)

    def _dc(self, space, text):
        from repro.predicates.parser import parse_dc

        return DenialConstraint(parse_dc(text, space), space)

    def _check(self, verifier, relation, dc, expect_plan):
        result = verifier.verify(dc, sample=None)
        assert result.plan.startswith(expect_plan), result.plan
        assert sorted(result.pairs) == sorted(find_violations(dc, relation))
        return result

    def test_eq_sweep(self):
        relation, space, indexes = self._fixture()
        verifier = Verifier(relation, indexes, space)
        dc = self._dc(space, "!(t.A = t'.A & t.B != t'.B)")
        self._check(verifier, relation, dc, "eq-sweep")

    def test_order_sweep_all_operators(self):
        relation, space, indexes = self._fixture()
        verifier = Verifier(relation, indexes, space)
        for op in ("<", "<=", ">", ">="):
            dc = self._dc(space, f"!(t.C {op} t'.C)")
            self._check(verifier, relation, dc, "order-sweep")

    def test_ne_sweep(self):
        relation, space, indexes = self._fixture()
        verifier = Verifier(relation, indexes, space)
        dc = self._dc(space, "!(t.B != t'.B)")
        self._check(verifier, relation, dc, "ne-sweep")

    def test_probe_sweep_on_degraded_index(self):
        """An order predicate whose *lhs* range index is gone falls back
        to the generic probe sweep (equality entries swept, rhs probed) —
        still byte-identical to the oracle."""
        relation, space, indexes = self._fixture()
        dc = self._dc(space, "!(t.A >= t'.C)")
        indexes.ranges[relation.schema.position("A")] = None
        verifier = Verifier(relation, indexes, space)
        result = verifier.verify(dc, sample=None)
        assert result.plan.startswith("probe-sweep"), result.plan
        assert sorted(result.pairs) == sorted(find_violations(dc, relation))

    def test_trivial_empty_mask(self):
        relation, space, indexes = self._fixture()
        verifier = Verifier(relation, indexes, space)
        n = len(relation)
        result = verifier.verify(DenialConstraint(0, space), sample=None)
        assert result.plan == "trivial"
        assert result.n_violations == n * (n - 1)
        assert len(result.pairs) == n * (n - 1)
        assert verifier.has_violation(0)

    def test_counters_accumulate(self):
        relation, space, indexes = self._fixture()
        verifier = Verifier(relation, indexes, space)
        dc = self._dc(space, "!(t.A = t'.A & t.B != t'.B)")
        verifier.verify(dc)
        assert verifier.counters["verification.checks"] == 1
        assert verifier.probe_operations() > 0


class TestMinimality:
    def test_is_minimal_matches_evidence_recheck(self, abc_factory):
        """is_minimal agrees with the evidence-based definition: a valid
        DC is minimal iff no one-predicate-removed subset is valid."""
        relation = abc_factory(14, seed=3)
        discoverer = DCDiscoverer(relation)
        discoverer.fit()
        space = discoverer.space
        indexes = discoverer.engine_state.indexes
        verifier = Verifier(relation, indexes, space)
        for mask in discoverer.dc_masks:
            assert verifier.is_minimal(mask)
            # Any strict superset of a minimal valid DC is non-minimal.
            free = space.full_mask & ~mask
            if free:
                extra = free & -free
                dc = DenialConstraint(mask | extra, space)
                if not find_violations(dc, relation, limit=1):
                    assert not verifier.is_minimal(mask | extra)


@pytest.mark.verification
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from("ab"), st.integers(0, 2)),
        min_size=4,
        max_size=14,
    ),
    n_delete=st.integers(1, 3),
)
@settings(deadline=None)
def test_verify_pruning_identical_antichain(rows, n_delete):
    """Deletes with verify_pruning on and off produce the identical DC
    antichain and byte-identical saved state (the kernel's minimality
    re-check is exactly equivalent to the evidence scan)."""
    rids = sorted(random.Random(7).sample(range(len(rows)), n_delete))
    results = []
    for pruning in (True, False):
        relation = relation_from_rows(["A", "B", "C"], rows)
        discoverer = DCDiscoverer(relation, verify_pruning=pruning)
        discoverer.fit()
        discoverer.delete(rids)
        results.append((list(discoverer.dc_masks), state_to_bytes(discoverer)))
    assert results[0] == results[1]


def test_dynei_delete_with_verifier_matches_evidence_path(abc_factory):
    """dynei_delete(verifier=...) returns the identical antichain to the
    pure evidence-scan path at every step of a delete workload."""
    relation = abc_factory(16, seed=11)
    discoverer = DCDiscoverer(relation, verify_pruning=False)
    discoverer.fit()
    rng = random.Random(5)
    exercised = 0
    for _ in range(6):
        alive = list(discoverer.relation.rids())
        if len(alive) < 4:
            break
        rid = rng.choice(alive)
        sigma_before = sorted(discoverer.dc_masks)
        evidence_before = set(discoverer.evidence_set)
        discoverer.delete([rid])  # ran the evidence-scan path
        removed = sorted(evidence_before - set(discoverer.evidence_set))
        # Replay the enumeration step with the verifier over the
        # post-delete state; the antichain must come out identical.
        verifier = Verifier(
            discoverer.relation, discoverer.engine_state.indexes, discoverer.space
        )
        replayed = dynei_delete(
            discoverer.space,
            sigma_before,
            removed_evidence_masks=removed,
            remaining_evidence_masks=list(discoverer.evidence_set),
            verifier=verifier,
        )
        assert replayed == sorted(discoverer.dc_masks)
        exercised += bool(removed)
    assert exercised, "workload never removed evidence — widen it"


class TestVerifyMode:
    DCS = [
        "!(t.A = t'.A & t.B != t'.B)",
        "!(t.C > t'.C & t.B = t'.B)",
    ]

    def _discoverer(self, rows):
        relation = relation_from_rows(["A", "B", "C"], rows)
        discoverer = DCDiscoverer(
            relation, mode="verify", constraints=self.DCS, cross_column_ratio=0.0
        )
        discoverer.fit()
        return discoverer

    def _assert_watcher_fresh(self, discoverer):
        """The incrementally maintained pairs equal a fresh kernel run."""
        verifier = Verifier(
            discoverer.relation, discoverer.engine_state.indexes, discoverer.space
        )
        watcher = discoverer._verify_watcher
        for dc in watcher.dcs:
            assert watcher.violations(dc) == set(verifier.violating_pairs(dc))

    def test_lifecycle_tracks_kernel(self):
        discoverer = self._discoverer(
            [(1, "a", 1.0), (1, "b", 2.0), (2, "a", 1.0)]
        )
        report = discoverer.verification_report()
        assert report["n_constraints"] == 2
        assert report["n_violated"] == 1  # the A/B rule: t0 vs t1
        self._assert_watcher_fresh(discoverer)
        discoverer.insert([(2, "a", 0.5), (1, "a", 9.0)])
        self._assert_watcher_fresh(discoverer)
        discoverer.delete([1])
        self._assert_watcher_fresh(discoverer)
        report = discoverer.verification_report()
        assert report["n_violated"] == 1  # C ordering within B='a'
        assert report["mode"] == "verify"

    def test_state_round_trip(self):
        from repro.core.state_io import state_from_dict

        discoverer = self._discoverer(
            [(1, "a", 1.0), (1, "b", 2.0), (2, "a", 3.0)]
        )
        discoverer.insert([(3, "c", NAN)])
        payload = state_to_dict(discoverer)
        assert payload["config"]["mode"] == "verify"
        restored = state_from_dict(payload)
        assert restored.mode == "verify"
        assert restored.dc_masks == discoverer.dc_masks
        assert state_to_bytes(restored) == state_to_bytes(discoverer)
        self._assert_watcher_fresh(restored)

    def test_discover_state_has_no_mode_key(self, abc_factory):
        """Discover-mode states stay byte-identical to pre-verify builds."""
        discoverer = DCDiscoverer(abc_factory(8, seed=1))
        discoverer.fit()
        assert "mode" not in state_to_dict(discoverer)["config"]

    def test_requires_constraints(self):
        relation = relation_from_rows(["A"], [(1,), (2,)])
        with pytest.raises(ValueError, match="requires constraints"):
            DCDiscoverer(relation, mode="verify").fit()

    def test_constraints_only_in_verify_mode(self):
        relation = relation_from_rows(["A"], [(1,), (2,)])
        with pytest.raises(ValueError, match="mode='verify'"):
            DCDiscoverer(relation, constraints=["!(t.A = t'.A)"])

    def test_out_of_space_constraint_rejected(self):
        relation = relation_from_rows(["A"], [(1,), (2,)])
        discoverer = DCDiscoverer(
            relation, mode="verify", constraints=[1 << 200]
        )
        with pytest.raises(ValueError, match="outside the space"):
            discoverer.fit()


class TestProbeCache:
    def test_deduplicates_probes(self):
        relation = relation_from_rows(
            ["A"], [(1,), (2,), (1,)]
        )
        indexes = ColumnIndexes(relation)
        cache = ProbeCache(indexes)
        from repro.predicates.operator import Operator

        first = cache.partners(0, Operator.EQ, 1)
        again = cache.partners(0, Operator.EQ, 1)
        assert first == again == 0b101
        assert cache.lookups == 2
        assert cache.misses == 1


def test_nan_total_order_agrees_everywhere():
    """One NaN-heavy relation, every operator: Operator.eval, the range
    index, and the kernel all implement the same NaN total order."""
    from repro.predicates.operator import Operator

    assert Operator.EQ.eval(NAN, NAN)
    assert not Operator.NE.eval(NAN, NAN)
    assert Operator.GT.eval(NAN, 5.0) and not Operator.GT.eval(5.0, NAN)
    assert Operator.GE.eval(NAN, NAN) and Operator.LE.eval(NAN, NAN)
    assert Operator.LT.eval(5.0, NAN) and not Operator.LT.eval(NAN, 5.0)

    rows = [(NAN,), (1.0,), (NAN,), (2.0,)]
    relation, space, indexes = (
        relation_from_rows(["X"], rows),
        None,
        None,
    )
    space = build_predicate_space(relation)
    indexes = ColumnIndexes(relation)
    verifier = Verifier(relation, indexes, space)
    from repro.predicates.parser import parse_dc

    for text in ("!(t.X = t'.X)", "!(t.X > t'.X)", "!(t.X <= t'.X)"):
        dc = DenialConstraint(parse_dc(text, space), space)
        assert sorted(verifier.violating_pairs(dc)) == sorted(
            find_violations(dc, relation)
        )
    assert math.isnan(relation.value(0, 0))
