"""Tests for the observability subsystem: spans, metrics, probe,
exporters, run reports, and the logging hierarchy."""

import json
import logging
import time

import pytest

from repro.core.discoverer import DCDiscoverer
from repro.observability import (
    Instrumentation,
    MetricsRegistry,
    NullTracer,
    SpanTracer,
    configure_logging,
    get_logger,
    get_probe,
    install,
    parse_prometheus,
    probe_span,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.bitmaps.roaring import RoaringBitmap
from repro.relational.loader import relation_from_rows


@pytest.fixture
def fitted():
    rows = [
        (1, "Ana", 2000, 5),
        (2, "Sam", 2001, 4),
        (3, "Ana", 2001, 2),
        (4, "Kai", 2002, 2),
        (5, "Ema", 2002, 3),
        (6, "Lou", 2003, 1),
    ]
    relation = relation_from_rows(["Id", "Name", "Hired", "Level"], rows)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    return discoverer


# -- span tracer ---------------------------------------------------------------


class TestSpanTracer:
    def test_spans_nest(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner_a", "inner_b"]
        assert outer.child("inner_b").children[0].name == "leaf"
        assert outer.child("missing") is None

    def test_children_sum_at_most_parent(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            for _ in range(3):
                with tracer.span("child"):
                    time.sleep(0.001)
        parent = tracer.roots[0]
        child_total = sum(child.duration for child in parent.children)
        assert child_total <= parent.duration
        assert parent.self_time >= 0
        assert parent.duration > 0

    def test_current_and_annotate(self):
        tracer = SpanTracer()
        assert tracer.current() is None
        with tracer.span("a") as span_a:
            assert tracer.current() is span_a
            tracer.annotate("rows", 7)
        assert tracer.current() is None
        tracer.annotate("ignored", 1)  # no open span: no-op
        assert tracer.roots[0].attrs == {"rows": 7}

    def test_to_dict_and_format(self):
        tracer = SpanTracer()
        with tracer.span("op"):
            with tracer.span("step"):
                pass
        payload = tracer.roots[0].to_dict()
        assert payload["name"] == "op"
        assert payload["children"][0]["name"] == "step"
        text = tracer.format_tree()
        assert "op" in text and "step" in text and "ms" in text

    def test_exception_still_closes_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current() is None
        assert tracer.roots[0].duration > 0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            assert span is None
            tracer.annotate("k", 1)
        assert tracer.roots == []
        assert tracer.current() is None
        assert tracer.format_tree() == ""

    def test_null_tracer_negligible_overhead(self):
        null_tracer = NullTracer()
        started = time.perf_counter()
        for _ in range(100_000):
            with null_tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - started
        # ~10 µs per span would already be pathological for a no-op.
        assert elapsed < 2.0
        assert null_tracer.roots == []


# -- metrics registry ----------------------------------------------------------


class TestMetrics:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 4)
        registry.set_gauge("g", 1.5)
        registry.set_gauge("g", 2.5)
        assert registry.counter("a.b") == 5
        assert registry.counter("missing") == 0
        assert registry.gauge("g") == 2.5

    def test_histogram(self):
        registry = MetricsRegistry()
        for value in (1, 3, 100, 5000):
            registry.observe("h", value)
        payload = registry.snapshot()["histograms"]["h"]
        assert payload["count"] == 4
        assert payload["min"] == 1 and payload["max"] == 5000
        assert payload["sum"] == 5104
        assert sum(payload["buckets"].values()) == 4

    def test_counter_delta(self):
        registry = MetricsRegistry()
        registry.inc("x", 2)
        before = registry.snapshot()["counters"]
        registry.inc("x", 3)
        registry.inc("y", 1)
        delta = registry.counter_delta(before)
        assert delta == {"x": 3, "y": 1}

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        counters = registry.snapshot()["counters"]
        assert list(counters) == sorted(counters)


# -- probe ---------------------------------------------------------------------


class TestProbe:
    def test_install_and_restore(self):
        assert get_probe() is None
        instrumentation = Instrumentation()
        with install(instrumentation):
            assert get_probe() is instrumentation
            inner = Instrumentation()
            with install(inner):
                assert get_probe() is inner
            assert get_probe() is instrumentation
        assert get_probe() is None

    def test_interleaved_thread_installs_do_not_leak(self):
        """The probe slot is thread-local: two threads whose install
        windows interleave (A installs, B installs, A exits, B exits —
        a co-located fleet's writer and apply threads) must each see
        only their own probe, and neither may leak past its exit."""
        import threading

        steps = [threading.Event() for _ in range(4)]
        seen = {}

        def worker(name, start, handoff, resume, done):
            start.wait(5)
            instrumentation = Instrumentation()
            with install(instrumentation):
                seen[name] = get_probe() is instrumentation
                handoff.set()
                resume.wait(5)
            seen[name + ".after"] = get_probe()
            done.set()

        a = threading.Thread(
            target=worker, args=("a", steps[0], steps[1], steps[2], steps[3])
        )
        a.start()
        steps[0].set()
        steps[1].wait(5)  # A is installed...
        b_inst = Instrumentation()
        with install(b_inst):  # ...now B (this thread) installs...
            steps[2].set()  # ...and A exits while B is active
            steps[3].wait(5)
            assert get_probe() is b_inst
        a.join(5)
        assert seen == {"a": True, "a.after": None}
        assert get_probe() is None

    def test_probe_span_without_probe_is_noop(self):
        with probe_span("nothing") as span:
            assert span is None

    def test_probe_span_with_probe_records(self):
        instrumentation = Instrumentation()
        with install(instrumentation):
            with probe_span("recorded"):
                pass
        assert instrumentation.tracer.roots[0].name == "recorded"

    def test_disabled_instrumentation_installs_no_probe(self):
        instrumentation = Instrumentation(enabled=False)
        with instrumentation.activate():
            assert get_probe() is None


# -- exporters -----------------------------------------------------------------


class TestExporters:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.inc("evidence.pairs_compared", 42)
        registry.inc("bitmap.and_ops", 7)
        registry.set_gauge("discoverer.rows", 100)
        registry.observe("delta.size", 5)
        registry.observe("delta.size", 9)
        return registry.snapshot()

    def test_json_round_trip(self):
        snapshot = self._snapshot()
        text = snapshot_to_json(snapshot)
        parsed = json.loads(text)
        assert parsed == json.loads(snapshot_to_json(snapshot))
        assert parsed["counters"]["evidence.pairs_compared"] == 42
        assert parsed["gauges"]["discoverer.rows"] == 100

    def test_prometheus_parses(self):
        text = snapshot_to_prometheus(self._snapshot())
        samples = parse_prometheus(text)
        assert samples["repro_evidence_pairs_compared_total"] == 42
        assert samples["repro_bitmap_and_ops_total"] == 7
        assert samples["repro_discoverer_rows"] == 100
        assert samples["repro_delta_size_count"] == 2
        assert samples["repro_delta_size_sum"] == 14
        assert samples['repro_delta_size_bucket{le="+Inf"}'] == 2

    def test_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all !!!")

    def test_empty_snapshot(self):
        assert snapshot_to_prometheus({}) == ""


# -- pipeline integration ------------------------------------------------------


class TestPipelineInstrumentation:
    def test_fit_report_has_nested_spans(self):
        relation = relation_from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, "x")])
        discoverer = DCDiscoverer(relation)
        report = discoverer.fit().report
        assert report.operation == "fit"
        top = [child.name for child in report.root.children]
        assert top == ["space", "evidence", "enumeration"]
        evidence = report.root.child("evidence")
        assert [child.name for child in evidence.children] == ["indexes", "scan"]

    def test_update_report_exposes_required_metrics(self, fitted):
        result = fitted.insert([(7, "Ana", 2004, 6), (8, "Pat", 2004, 2)])
        report = result.report
        assert report.metric("evidence.pairs_compared") > 0
        assert report.metric("evidence.pairs_inferred") > 0
        assert report.metric("enumeration.einc_size") == result.n_evidence_changed
        assert report.metric("discoverer.dcs_added") == result.n_new_dcs
        assert report.metric("discoverer.dcs_removed") == result.n_removed_dcs
        assert set(result.timings) == {"evidence", "enumeration"}
        assert result.timings == report.phase_timings()

    def test_delete_report_with_index_strategy(self, fitted):
        result = fitted.delete([2, 4])
        report = result.report
        assert report.operation == "delete"
        assert report.metric("evidence.index_owned_pairs") > 0
        assert report.metric("enumeration.einc_size") == result.n_evidence_changed

    def test_counters_monotone_across_updates(self, fitted):
        registry = fitted.instrumentation.metrics
        sequence = [
            lambda: fitted.insert([(10, "Zed", 2005, 9)]),
            lambda: fitted.delete([1]),
            lambda: fitted.insert([(11, "Amy", 2006, 1), (12, "Bob", 2006, 2)]),
            lambda: fitted.delete([3, 5]),
        ]
        previous = dict(registry.counters)
        for step in sequence:
            step()
            current = registry.counters
            for name, value in previous.items():
                assert current.get(name, 0) >= value, name
            previous = dict(current)
        assert registry.counter("discoverer.inserts") == 2
        assert registry.counter("discoverer.deletes") == 2

    def test_empty_batches_notify_consistently(self, fitted):
        notified = []

        class Recorder:
            def apply_insert_delta(self, delta, n_rows):
                notified.append(("insert", len(delta)))

            def apply_delete_delta(self, delta, n_rows):
                notified.append(("delete", len(delta)))

            def on_insert(self, rids):
                notified.append(("watch_insert", len(list(rids))))

            def on_delete(self, rids):
                notified.append(("watch_delete", len(list(rids))))

        recorder = Recorder()
        fitted._monitors.append(recorder)
        fitted._watchers.append(recorder)
        insert_result = fitted.insert([])
        delete_result = fitted.delete([])
        assert insert_result.delta_size == 0 and delete_result.delta_size == 0
        assert notified == [
            ("insert", 0), ("watch_insert", 0),
            ("delete", 0), ("watch_delete", 0),
        ]

    def test_update_returns_both_results(self, fitted):
        delete_result, insert_result = fitted.update(
            [2], [(9, "Noa", 2004, 4)]
        )
        assert delete_result.kind == "delete"
        assert insert_result.kind == "insert"

    def test_disabled_instrumentation_keeps_timings(self):
        relation = relation_from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, "x")])
        discoverer = DCDiscoverer(
            relation, instrumentation=Instrumentation(enabled=False)
        )
        result = discoverer.fit()
        assert set(result.timings) == {"space", "evidence", "enumeration"}
        update = discoverer.insert([(4, "z")])
        assert set(update.timings) == {"evidence", "enumeration"}
        # Deep accounting off: no probe counters were recorded.
        assert update.report.metrics["counters"] == {}
        # And no deep sub-spans below the evidence phase's own steps:
        evidence = result.report.root.child("evidence")
        assert evidence.children == []

    def test_enabled_overhead_is_small(self):
        rows = [(i, f"n{i % 7}", 2000 + i % 9, i % 5) for i in range(60)]

        def run(enabled):
            relation = relation_from_rows(["Id", "Name", "Hired", "Level"], rows)
            discoverer = DCDiscoverer(
                relation, instrumentation=Instrumentation(enabled=enabled)
            )
            started = time.perf_counter()
            discoverer.fit()
            discoverer.insert([(100 + j, "zz", 2050, 7) for j in range(5)])
            return time.perf_counter() - started

        enabled_time = min(run(True) for _ in range(3))
        disabled_time = min(run(False) for _ in range(3))
        # The acceptance bar is 5 %; assert a loose 50 % here so CI noise
        # cannot flake the suite while still catching real regressions
        # (per-pair accounting sneaking into a hot loop shows up as 2-10x).
        assert enabled_time <= disabled_time * 1.5 + 0.05

    def test_report_exports(self, fitted):
        report = fitted.insert([(20, "Quo", 2010, 5)]).report
        parsed = json.loads(report.to_json())
        assert parsed["operation"] == "insert"
        assert "spans" in parsed and "metrics" in parsed
        samples = parse_prometheus(report.to_prometheus())
        assert any(name.startswith("repro_") for name in samples)


# -- bitmap instrumentation ----------------------------------------------------


class TestBitmapInstrumentation:
    def test_container_stats(self):
        bitmap = RoaringBitmap.from_iterable(range(100))
        dense = RoaringBitmap.from_iterable(range(5000))
        stats = bitmap.container_stats()
        assert stats == {"array": 1, "bitmap": 0, "run": 0}
        assert dense.container_stats()["bitmap"] == 1
        dense.run_optimize()
        assert dense.container_stats()["run"] == 1

    def test_op_counting_through_probe(self):
        left = RoaringBitmap.from_iterable(range(10))
        right = RoaringBitmap.from_iterable(range(5, 15))
        instrumentation = Instrumentation()
        with install(instrumentation):
            _ = left & right
            _ = left | right
            _ = left - right
            _ = left ^ right
        counters = instrumentation.metrics.counters
        assert counters["bitmap.and_ops"] == 1
        assert counters["bitmap.or_ops"] == 1
        assert counters["bitmap.andnot_ops"] == 1
        assert counters["bitmap.xor_ops"] == 1
        # Outside the probe: no accounting.
        _ = left & right
        assert counters["bitmap.and_ops"] == 1


# -- logging -------------------------------------------------------------------


class TestLogging:
    def test_logger_hierarchy(self):
        logger = get_logger("repro.evidence.builder")
        assert logger.name == "repro.evidence.builder"
        nested = get_logger("mytool")
        assert nested.name == "repro.mytool"

    def test_configure_is_idempotent(self):
        root = configure_logging("info")
        handlers = list(root.handlers)
        again = configure_logging("debug")
        assert again is root
        assert again.handlers == handlers
        assert again.level == logging.DEBUG
        assert again.propagate is False

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging("loud")
