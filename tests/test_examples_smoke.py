"""Smoke tests running every example end-to-end at reduced size.

The examples are part of the public surface; each is imported and run
with its workload constants shrunk so the whole file stays fast.
"""

import importlib.util
import sys
from pathlib import Path



EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "phi5" in out or "φ" in out or "Static discovery" in out
    assert "Top-5 DCs" in out


def test_data_quality_monitor(capsys):
    module = load_example("data_quality_monitor")
    module.INITIAL_ROWS = 60
    module.BATCHES = 2
    module.BATCH_SIZE = 8
    module.TRUSTED_TOP_K = 4
    module.main()
    out = capsys.readouterr().out
    assert "FLAGGED" in out
    assert "retention delete" in out


def test_dc_ranking_explorer(capsys):
    module = load_example("dc_ranking_explorer")
    module.main()
    out = capsys.readouterr().out
    assert "top-10 DCs" in out
    assert "approximate DCs" in out


def test_session_persistence(capsys):
    module = load_example("session_persistence")
    module.INITIAL_ROWS = 60
    module.SESSIONS = 2
    module.DAILY_INSERTS = 8
    module.main()
    out = capsys.readouterr().out
    assert "static bootstrap" in out
    assert "session 2" in out


def test_approximate_dc_monitoring(capsys):
    module = load_example("approximate_dc_monitoring")
    module.INITIAL_ROWS = 60
    module.BATCHES = 2
    module.BATCH_SIZE = 8
    module.main()
    out = capsys.readouterr().out
    assert "monitoring" in out
    assert "refresh:" in out
