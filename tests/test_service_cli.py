"""End-to-end test of ``repro-dc serve``: real subprocess, real signals.

This is the same scenario the CI ``service`` smoke job runs: boot the
server from a CSV, drive it with concurrent :class:`ServiceClient`
threads, fetch the commit log, SIGTERM the process, and assert that

- the process drains, checkpoints, and exits 0;
- the recovered on-disk state is byte-identical to replaying the
  served commit log serially into a fresh oracle session.
"""

from __future__ import annotations

import csv
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_bytes
from repro.durability import DurableSession
from repro.service import ServiceClient
from repro.workloads import staff_relation

STAFF_ROWS = [
    (1, "Ana", 2000, 5, 1),
    (2, "Sam", 2001, 4, 1),
    (3, "Ana", 2001, 2, 2),
    (4, "Kai", 2002, 2, 2),
]


@pytest.fixture
def staff_csv(tmp_path):
    path = tmp_path / "staff.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["Id", "Name", "Hired", "Level", "Mgr"])
        writer.writerows(STAFF_ROWS)
    return path


def spawn_server(staff_csv, session_dir, *extra_args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(staff_csv),
            "--dir",
            str(session_dir),
            "--port",
            "0",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def read_url(process, deadline_s=30.0):
    """Parse the flushed ``serving on http://... (role)`` startup line."""
    deadline = time.monotonic() + deadline_s
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                "server exited before announcing its URL:\n" + "".join(lines)
            )
        lines.append(line)
        if line.startswith("serving on "):
            return line.split("serving on ", 1)[1].split()[0]
    raise AssertionError("no startup line within deadline:\n" + "".join(lines))


def test_serve_concurrent_traffic_sigterm_drain_recover(staff_csv, tmp_path):
    session_dir = tmp_path / "session"
    process = spawn_server(
        staff_csv, session_dir, "--batch-window-ms", "10", "--checkpoint-every", "4"
    )
    try:
        url = read_url(process)
        client = ServiceClient(base_url=url, timeout=15.0)
        client.wait_ready(deadline_s=15.0)

        errors = []

        def worker(worker_id: int):
            try:
                own = client.insert(
                    [
                        [100 + 2 * worker_id, f"W{worker_id}", 2005, 1, 1],
                        [101 + 2 * worker_id, f"X{worker_id}", 2006, 2, 1],
                    ]
                )
                assert own["status"] == "committed"
                deleted = client.delete([own["rids"][0]])
                assert deleted["status"] == "committed"
                checked = client.check([999, f"W{worker_id}", 2005, 1, 1])
                assert checked["seq"] >= own["seq"]
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        status = client.status()
        assert status["rows"] == 4 + 5 * 2 - 5
        commit_log = client.log()["entries"]

        process.send_signal(signal.SIGTERM)
        stdout, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
    assert process.returncode == 0, stdout
    assert "drained and stopped" in stdout

    # The durable directory recovers cleanly (final checkpoint covers
    # everything — nothing left to replay from the WAL)...
    recovered = DurableSession.recover(session_dir)
    assert recovered.replayed_records == 0
    assert len(recovered.discoverer.relation) == status["rows"]

    # ...and matches a serial replay of the served commit log.
    oracle = DurableSession.create(
        DCDiscoverer(staff_relation()), tmp_path / "oracle"
    )
    for entry in commit_log:
        if entry["op"] == "insert":
            rows = [tuple(row) for row in entry["rows"]]
            assert oracle.insert(rows).rids == entry["rids"]
        else:
            oracle.delete(entry["rids"])
    assert state_to_bytes(recovered.discoverer) == state_to_bytes(
        oracle.discoverer
    )
    recovered.close()
    oracle.close()


def test_serve_refuses_csv_over_existing_session(staff_csv, tmp_path):
    session_dir = tmp_path / "session"
    DurableSession.create(DCDiscoverer(staff_relation()), session_dir).close()
    process = spawn_server(staff_csv, session_dir)
    stdout, _ = process.communicate(timeout=60)
    assert process.returncode == 2
    assert "session already exists" in stdout
