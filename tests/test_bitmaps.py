"""Unit and property tests for the bitmap substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps import IntBitset, RoaringBitmap, get_backend
from repro.bitmaps.roaring import ARRAY_MAX, _container_len

BACKENDS = [IntBitset, RoaringBitmap]

small_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)
# Values spanning several roaring chunks to exercise container boundaries.
wide_sets = st.sets(st.integers(min_value=0, max_value=300_000), max_size=30)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitmapBasics:
    def test_empty(self, backend):
        bitmap = backend()
        assert len(bitmap) == 0
        assert not bitmap
        assert list(bitmap) == []
        assert 5 not in bitmap

    def test_add_contains_discard(self, backend):
        bitmap = backend()
        bitmap.add(3)
        bitmap.add(70_000)
        assert 3 in bitmap
        assert 70_000 in bitmap
        assert 4 not in bitmap
        assert len(bitmap) == 2
        bitmap.discard(3)
        assert 3 not in bitmap
        bitmap.discard(3)  # idempotent
        assert len(bitmap) == 1

    def test_from_iterable_and_iter_sorted(self, backend):
        bitmap = backend.from_iterable([9, 2, 5, 2])
        assert list(bitmap) == [2, 5, 9]

    def test_full(self, backend):
        bitmap = backend.full(10)
        assert list(bitmap) == list(range(10))
        assert backend.full(0) == backend()

    def test_full_negative_raises(self, backend):
        with pytest.raises(ValueError):
            backend.full(-1)

    def test_min_max(self, backend):
        bitmap = backend.from_iterable([7, 100, 3])
        assert bitmap.min() == 3
        assert bitmap.max() == 100

    def test_min_max_empty_raises(self, backend):
        with pytest.raises(ValueError):
            backend().min()
        with pytest.raises(ValueError):
            backend().max()

    def test_copy_is_independent(self, backend):
        bitmap = backend.from_iterable([1, 2])
        clone = bitmap.copy()
        clone.add(99)
        assert 99 not in bitmap
        assert 99 in clone

    def test_equality_and_hash(self, backend):
        a = backend.from_iterable([1, 5])
        b = backend.from_iterable([5, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_subset_superset(self, backend):
        small = backend.from_iterable([1, 2])
        big = backend.from_iterable([1, 2, 3])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not big.issubset(small)

    def test_intersects(self, backend):
        a = backend.from_iterable([1, 2])
        assert a.intersects(backend.from_iterable([2, 9]))
        assert not a.intersects(backend.from_iterable([7, 9]))

    def test_repr_smoke(self, backend):
        assert backend.__name__ in repr(backend.from_iterable(range(20)))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("op", ["__and__", "__or__", "__xor__", "__sub__"])
@given(left=small_sets, right=small_sets)
@settings(max_examples=40, deadline=None)
def test_set_algebra_matches_python_sets(backend, op, left, right):
    expected = {
        "__and__": left & right,
        "__or__": left | right,
        "__xor__": left ^ right,
        "__sub__": left - right,
    }[op]
    result = getattr(backend.from_iterable(left), op)(backend.from_iterable(right))
    assert set(result) == expected


@given(values=wide_sets)
@settings(max_examples=30, deadline=None)
def test_roaring_matches_intbitset_across_chunks(values):
    roaring = RoaringBitmap.from_iterable(values)
    intbits = IntBitset.from_iterable(values)
    assert list(roaring) == list(intbits)
    assert len(roaring) == len(intbits)


def test_roaring_array_to_bitmap_promotion():
    bitmap = RoaringBitmap.from_iterable(range(5000))
    assert list(bitmap) == list(range(5000))
    bitmap.discard(4999)
    assert len(bitmap) == 4999


def test_roaring_run_optimize_preserves_content():
    bitmap = RoaringBitmap.from_iterable(range(2000))
    bitmap.run_optimize()
    assert list(bitmap) == list(range(2000))
    assert bitmap == RoaringBitmap.from_iterable(range(2000))
    # Run containers must survive set algebra and membership.
    other = RoaringBitmap.from_iterable(range(1000, 3000))
    assert len(bitmap & other) == 1000
    assert 1500 in bitmap
    assert bitmap.max() == 1999


def test_get_backend():
    assert get_backend("int") is IntBitset
    assert get_backend("roaring") is RoaringBitmap
    with pytest.raises(KeyError):
        get_backend("nope")


def test_intbitset_negative_rejected():
    with pytest.raises(ValueError):
        IntBitset(-1)


def test_roaring_negative_add_rejected():
    with pytest.raises(ValueError):
        RoaringBitmap().add(-3)


# -- container transitions around ARRAY_MAX (Hypothesis properties) ----------
#
# The roaring format's central adaptive decision is the array↔bitmap
# promotion threshold.  Invariant maintained by RoaringBitmap: a bitmap
# container is only ever *created* with cardinality > ARRAY_MAX (add-path
# promotion or algebra), and every discard rebuilds the touched container
# from its bits — so at all times 'a' ⇒ card ≤ ARRAY_MAX and
# 'b' ⇒ card > ARRAY_MAX ('r' appears only via run_optimize).

# Values biased to hover around the promotion boundary of chunk 0, with a
# sprinkle of far values to keep multi-chunk bookkeeping honest.
boundary_values = st.one_of(
    st.integers(min_value=ARRAY_MAX - 48, max_value=ARRAY_MAX + 48),
    st.integers(min_value=0, max_value=2**17),
)
boundary_ops = st.lists(
    st.tuples(st.sampled_from(["add", "discard"]), boundary_values),
    max_size=40,
)


def _assert_container_kinds_match_cardinality(bitmap: RoaringBitmap):
    for container in bitmap._containers.values():
        kind = container[0]
        cardinality = _container_len(container)
        assert cardinality > 0  # empties must never be exposed
        if kind == "a":
            assert cardinality <= ARRAY_MAX
        elif kind == "b":
            assert cardinality > ARRAY_MAX


@given(ops=boundary_ops)
@settings(max_examples=25, deadline=None)
def test_roaring_transitions_around_array_max(ops):
    """add/discard sequences across the promotion boundary: content always
    matches a model set and container kinds always match cardinality."""
    base = range(ARRAY_MAX - 8)
    bitmap = RoaringBitmap.from_iterable(base)
    model = set(base)
    for op, value in ops:
        if op == "add":
            bitmap.add(value)
            model.add(value)
        else:
            bitmap.discard(value)
            model.discard(value)
    assert set(bitmap) == model
    assert len(bitmap) == len(model)
    _assert_container_kinds_match_cardinality(bitmap)


@given(extra=st.sets(st.integers(0, 2**16 - 1), max_size=24))
@settings(max_examples=25, deadline=None)
def test_roaring_promotion_and_demotion_boundary(extra):
    """Crossing ARRAY_MAX upward promotes to a bitmap container; coming
    back down via discard demotes to an array container."""
    bitmap = RoaringBitmap.from_iterable(range(ARRAY_MAX))
    assert bitmap.container_stats() == {"array": 1, "bitmap": 0, "run": 0}
    new_values = [value for value in sorted(extra) if value >= ARRAY_MAX]
    for value in new_values:
        bitmap.add(value)
    stats = bitmap.container_stats()
    if new_values:
        assert stats == {"array": 0, "bitmap": 1, "run": 0}
    else:
        assert stats == {"array": 1, "bitmap": 0, "run": 0}
    for value in new_values:
        bitmap.discard(value)
    # Cardinality is back to ARRAY_MAX: the discard path must have demoted.
    assert bitmap.container_stats() == {"array": 1, "bitmap": 0, "run": 0}
    assert set(bitmap) == set(range(ARRAY_MAX))


@given(
    intervals=st.lists(
        st.tuples(st.integers(0, 2**17), st.integers(1, 300)),
        min_size=1,
        max_size=8,
    ),
    churn=st.lists(st.integers(0, 2**17), max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_roaring_run_container_round_trip(intervals, churn):
    """run_optimize → mutate → compare: run containers must round-trip
    through adds, discards, and iteration without losing content."""
    values = {
        value
        for start, length in intervals
        for value in range(start, start + length)
    }
    optimized = RoaringBitmap.from_iterable(values)
    optimized.run_optimize()
    model = set(values)
    assert set(optimized) == model
    for value in churn:
        if value in model:
            optimized.discard(value)
            model.discard(value)
        else:
            optimized.add(value)
            model.add(value)
        assert (value in optimized) == (value in model)
    assert set(optimized) == model
    assert optimized == RoaringBitmap.from_iterable(model)
    _assert_container_kinds_match_cardinality(optimized)


@given(values=wide_sets, other_values=wide_sets)
@settings(max_examples=25, deadline=None)
def test_roaring_run_optimize_preserves_algebra(values, other_values):
    optimized = RoaringBitmap.from_iterable(values)
    optimized.run_optimize()
    plain = RoaringBitmap.from_iterable(values)
    other = RoaringBitmap.from_iterable(other_values)
    assert optimized == plain
    assert (optimized & other) == (plain & other)
    assert (optimized | other) == (plain | other)
    assert (optimized ^ other) == (plain ^ other)
    assert (optimized - other) == (plain - other)
    assert optimized.issubset(plain) and plain.issubset(optimized)
