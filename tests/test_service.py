"""Tests for the concurrent DC serving layer (repro.service).

Covers the four acceptance pillars:

- coalescing semantics (unit tests on the pure merge logic);
- snapshot isolation (a held snapshot never sees later writes);
- the HTTP protocol (endpoints, error codes, the /check oracle);
- concurrency correctness: with many client threads issuing interleaved
  insert/delete/check/read requests, the final durable state is
  byte-identical to the same deltas applied serially in commit order,
  and every served read carries the seq of a published snapshot;
- admission control: a full queue answers 429, a commit outliving the
  request timeout answers 503, draining answers 503 — never a hang.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_bytes
from repro.dcs import DenialConstraint
from repro.durability import DurableSession
from repro.predicates import parse_dc
from repro.relational import relation_from_rows
from repro.service import (
    DCService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceSaturatedError,
    ServiceStopped,
    ServiceUnavailableError,
    WriteRequest,
    build_snapshot,
    coalesce,
)
from repro.workloads import staff_relation
from tests.conftest import random_rows


def make_session(tmp_path, relation=None, name="session", **kwargs):
    discoverer = DCDiscoverer(relation if relation is not None else staff_relation())
    return DurableSession.create(discoverer, tmp_path / name, **kwargs)


@pytest.fixture
def service(tmp_path):
    """A started service over the staff relation; always shut down."""
    instance = DCService(
        make_session(tmp_path), ServiceConfig(port=0, batch_window_ms=2.0)
    )
    instance.start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(base_url=service.url, timeout=10.0)


# -- coalescing (pure logic) ------------------------------------------------


class TestCoalesce:
    def test_merges_inserts_in_arrival_order(self, tmp_path):
        session = make_session(tmp_path)
        first = WriteRequest("insert", [[5, "Ema", 2002, 3, 1]])
        second = WriteRequest(
            "insert", [[6, "Bo", 2003, 1, 2], [7, "Cy", 2004, 2, 2]]
        )
        batch = coalesce(session, [first, second])
        assert batch.rejected == []
        assert len(batch.insert_rows) == 3
        assert batch.inserts == [(first, 0, 1), (second, 1, 2)]
        session.close()

    def test_merges_deletes_and_rejects_double_claim(self, tmp_path):
        session = make_session(tmp_path)
        first = WriteRequest("delete", [0, 2])
        second = WriteRequest("delete", [2])
        third = WriteRequest("delete", [1])
        batch = coalesce(session, [first, second, third])
        assert batch.delete_rids == [0, 1, 2]
        assert [request for request, _ in batch.deletes] == [first, third]
        [(rejected, message)] = batch.rejected
        assert rejected is second and "already deleted" in message
        session.close()

    def test_bad_requests_fail_individually(self, tmp_path):
        session = make_session(tmp_path)
        good = WriteRequest("insert", [[5, "Ema", 2002, 3, 1]])
        short_row = WriteRequest("insert", [[1, "x"]])
        dead_rid = WriteRequest("delete", [99])
        batch = coalesce(session, [good, short_row, dead_rid])
        assert len(batch.inserts) == 1 and batch.inserts[0][0] is good
        assert {request for request, _ in batch.rejected} == {short_row, dead_rid}
        session.close()


# -- snapshot isolation -----------------------------------------------------


class TestSnapshotIsolation:
    def test_held_snapshot_ignores_later_writes(self, tmp_path):
        session = make_session(tmp_path)
        before = build_snapshot(session)
        session.insert([(5, "Ana", 2000, 5, 1)])  # a third Ana
        after = build_snapshot(session)
        assert before.seq == 0 and after.seq == 1
        assert len(before.relation) == 4 and len(after.relation) == 5
        space = session.discoverer.space
        name_dc = DenialConstraint(parse_dc("!(t.Name = t'.Name)", space), space)
        candidate = (9, "Ana", 1999, 1, 1)
        old = before.check(candidate, dcs=[name_dc])
        new = after.check(candidate, dcs=[name_dc])
        assert old["violations"][0]["n_partners"] == 2  # two Anas at seq 0
        assert new["violations"][0]["n_partners"] == 3
        session.close()

    def test_check_matches_pairwise_oracle(self, tmp_path):
        rng = random.Random(7)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 15))
        session = make_session(tmp_path, relation=relation)
        snapshot = build_snapshot(session)
        space = session.discoverer.space
        dcs = [
            DenialConstraint(parse_dc(text, space), space)
            for text in ["!(t.A = t'.A)", "!(t.B = t'.B & t.C != t'.C)"]
        ]
        for candidate in random_rows(rng, 10):
            payload = snapshot.check(candidate, dcs=dcs)
            by_dc = {entry["dc"]: entry for entry in payload["violations"]}
            for dc in dcs:
                as_first = {
                    rid
                    for rid in snapshot.relation.rids()
                    if not dc.holds_on_pair(candidate, snapshot.relation.row(rid))
                }
                as_second = {
                    rid
                    for rid in snapshot.relation.rids()
                    if not dc.holds_on_pair(snapshot.relation.row(rid), candidate)
                }
                if not as_first and not as_second:
                    assert str(dc) not in by_dc
                else:
                    entry = by_dc[str(dc)]
                    assert set(entry["as_first"]) == as_first
                    assert set(entry["as_second"]) == as_second
        session.close()


# -- HTTP protocol ----------------------------------------------------------


class TestEndpoints:
    def test_status_and_dcs(self, client):
        status = client.wait_ready()
        assert status["rows"] == 4 and status["serving"] is True
        dcs = client.dcs()
        assert dcs["seq"] == 0
        assert dcs["n_minimal"] == len(dcs["masks"]) > 0
        assert all("¬(" in text for text in dcs["dcs"])

    def test_rank(self, client):
        payload = client.rank(top=5)
        ranking = payload["ranking"]
        assert 0 < len(ranking) <= 5
        scores = [entry["score"] for entry in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_insert_then_read_moves_seq(self, client):
        outcome = client.insert([[5, "Ema", 2002, 3, 1]])
        assert outcome["status"] == "committed"
        assert outcome["seq"] == 1 and outcome["rids"] == [4]
        assert client.status()["rows"] == 5
        assert client.dcs()["seq"] == 1

    def test_check_roundtrip(self, client):
        duplicate_id = client.check([1, "Zoe", 1990, 9, 9], dcs=["!(t.Id = t'.Id)"])
        assert duplicate_id["ok"] is False
        assert duplicate_id["violations"][0]["as_first"] == [0]
        fresh_id = client.check([9, "Zoe", 1990, 9, 9], dcs=["!(t.Id = t'.Id)"])
        assert fresh_id["ok"] is True
        capped = client.check([1, "Ana", 1990, 9, 9], limit=1)
        for entry in capped["violations"]:
            assert len(entry["as_first"]) <= 1 and len(entry["as_second"]) <= 1

    def test_validation_errors_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.insert([[1, "too-short"]])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.delete([404])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.check([1, 2])  # arity mismatch
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.check([1, "A", 2000, 1, 1], dcs=["!(t.Nope = t'.Nope)"])
        assert excinfo.value.status == 400

    def test_check_reports_probe_cache(self, client):
        payload = client.check([1, "Ana", 1990, 9, 9])
        probes = payload["probes"]
        assert 0 < probes["unique"] <= probes["lookups"]

    def test_unsupported_probe_is_400_not_500(self, service, client):
        """Regression: an order-op probe that the snapshot's indexes
        cannot answer (range index gone, e.g. a degraded clone) used to
        escape as a bare ValueError and a 500; it must be a 400."""
        snapshot = service.snapshot
        position = next(
            i
            for i, column in enumerate(snapshot.relation.schema)
            if column.name == "Hired"
        )
        snapshot.indexes.ranges[position] = None
        with pytest.raises(ServiceError) as excinfo:
            client.check(
                [9, "Zoe", 1990, 9, 9], dcs=["!(t.Hired > t'.Hired)"]
            )
        assert excinfo.value.status == 400
        assert "unsupported DC" in str(excinfo.value)

    def test_verify_endpoint(self, client):
        payload = client.verify()
        assert payload["seq"] == 0
        assert payload["n_constraints"] == len(client.dcs()["masks"])
        # A discover-mode session's Σ holds on its own data by definition.
        assert payload["n_violated"] == 0
        assert payload["total_violations"] == 0
        assert payload["probe_operations"] > 0
        plans = {
            entry["plan"].split("(")[0] for entry in payload["constraints"]
        }
        assert plans <= {"eq-sweep", "order-sweep", "ne-sweep", "probe-sweep"}
        capped = client.verify(limit=1)
        assert capped["limit"] == 1
        with pytest.raises(ServiceError) as excinfo:
            client.verify(limit=0)
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_metrics_exposition(self, client):
        client.insert([[5, "Ema", 2002, 3, 1]])
        text = client.metrics_text()
        assert "# TYPE repro_service_batch_size histogram" in text
        assert "repro_service_batches_total" in text
        assert "repro_durability_next_seq" in text
        assert "repro_discoverer_rows" in text

    def test_commit_log_endpoint(self, client):
        client.insert([[5, "Ema", 2002, 3, 1]])
        client.delete([4])
        log = client.log()
        assert [entry["op"] for entry in log["entries"]] == ["insert", "delete"]
        assert client.log(since=log["entries"][0]["seq"])["entries"][0]["op"] == (
            "delete"
        )


# -- concurrency correctness ------------------------------------------------


class TestVerifyModeService:
    def test_fixed_sigma_verdicts_follow_writes(self, tmp_path):
        """A verify-mode session serves /verify over a fixed Σ; repairing
        the data through the write endpoints flips the verdicts."""
        relation = relation_from_rows(
            ["City", "State", "Salary"],
            [
                ("LA", "CA", 100),
                ("SF", "CA", 120),
                ("NY", "NY", 90),
                ("LA", "WA", 50),
            ],
        )
        discoverer = DCDiscoverer(
            relation,
            mode="verify",
            constraints=[
                "!(t.City = t'.City & t.State != t'.State)",
                "!(t.Salary > t'.Salary & t.State = t'.State)",
            ],
            cross_column_ratio=0.0,
        )
        session = DurableSession.create(discoverer, tmp_path / "verify-session")
        service = DCService(session, ServiceConfig(port=0, batch_window_ms=2.0))
        service.start()
        try:
            client = ServiceClient(base_url=service.url, timeout=10.0)
            client.wait_ready()
            payload = client.verify()
            assert payload["n_constraints"] == 2
            assert payload["n_violated"] == 2
            sample = payload["constraints"][0]["sample_pairs"]
            assert sample and all(len(pair) == 2 for pair in sample)
            client.delete([3])  # the LA/WA row: City rule now holds
            assert client.verify()["n_violated"] == 1
            client.delete([1])  # the top CA salary: Σ fully holds
            repaired = client.verify()
            assert repaired["n_violated"] == 0
            assert repaired["total_violations"] == 0
        finally:
            service.shutdown()


class TestConcurrency:
    K_THREADS = 6
    OPS_PER_THREAD = 8

    def test_interleaved_traffic_equals_serial_oracle(self, tmp_path):
        rng = random.Random(11)
        base_rows = random_rows(rng, 16)
        session = make_session(
            tmp_path,
            relation=relation_from_rows(["A", "B", "C"], base_rows),
            checkpoint_every=4,
        )
        service = DCService(
            session, ServiceConfig(port=0, batch_window_ms=10.0)
        )
        service.start()
        client = ServiceClient(base_url=service.url, timeout=15.0)
        observed_seqs = []
        errors = []
        seq_lock = threading.Lock()

        def worker(worker_id: int):
            thread_rng = random.Random(1000 + worker_id)
            own_rids = []
            try:
                for step in range(self.OPS_PER_THREAD):
                    choice = thread_rng.random()
                    if choice < 0.45 or not own_rids:
                        outcome = client.insert(
                            random_rows(thread_rng, thread_rng.randint(1, 2))
                        )
                        assert outcome["status"] == "committed"
                        own_rids.extend(outcome["rids"])
                        recorded = outcome["seq"]
                    elif choice < 0.65:
                        rid = own_rids.pop(thread_rng.randrange(len(own_rids)))
                        outcome = client.delete([rid])
                        assert outcome["status"] == "committed"
                        recorded = outcome["seq"]
                    elif choice < 0.85:
                        recorded = client.check(random_rows(thread_rng, 1)[0])[
                            "seq"
                        ]
                    else:
                        recorded = client.dcs()["seq"]
                    with seq_lock:
                        observed_seqs.append(recorded)
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.K_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.shutdown()
        assert errors == []

        # Every read and write observed a seq the writer actually
        # published — no torn or speculative state ever served.
        published = set(service.published_seqs)
        assert set(observed_seqs) <= published

        # Coalescing happened: cycles ≤ commits ≤ requests, and the WAL
        # saw one record per merged op, not one per client request.
        n_write_requests = service.instrumentation.metrics.counter(
            "service.coalesced_requests_total"
        )
        assert len(service.commit_log) <= n_write_requests

        # Replaying the commit log serially lands on the byte-identical
        # durable state.
        oracle = make_session(
            tmp_path,
            relation=relation_from_rows(["A", "B", "C"], base_rows),
            name="oracle",
        )
        for entry in service.commit_log:
            if entry["op"] == "insert":
                result = oracle.insert(entry["rows"])
                assert result.rids == entry["rids"]
            else:
                oracle.delete(entry["rids"])
        assert state_to_bytes(service.session.discoverer) == state_to_bytes(
            oracle.discoverer
        )
        oracle.close()

    def test_concurrent_burst_coalesces(self, tmp_path):
        session = make_session(tmp_path)
        service = DCService(
            session,
            ServiceConfig(port=0, batch_window_ms=150.0, queue_depth=64),
        )
        service.start()
        client = ServiceClient(base_url=service.url, timeout=15.0)
        barrier = threading.Barrier(8)
        outcomes = []

        def worker(i):
            barrier.wait()
            outcomes.append(client.insert([[100 + i, f"W{i}", 2000, 1, 1]]))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.shutdown()
        assert all(outcome["status"] == "committed" for outcome in outcomes)
        histogram = service.instrumentation.metrics.histograms[
            "service.batch.size"
        ]
        assert histogram.mean > 1.0  # the burst merged into few cycles
        # One insert op per cycle in the log, not one per client.
        assert len(service.commit_log) < 8


# -- admission control and backpressure -------------------------------------


class TestBackpressure:
    def test_full_queue_rejects_instead_of_hanging(self, tmp_path):
        service = DCService(
            make_session(tmp_path),
            ServiceConfig(
                port=0,
                queue_depth=1,
                batch_window_ms=0.0,
                cycle_delay_s=0.4,
                request_timeout_s=10.0,
            ),
        )
        service.start()
        client = ServiceClient(base_url=service.url, timeout=15.0)
        client.wait_ready()
        results = []
        barrier = threading.Barrier(5)

        def worker(i):
            barrier.wait()
            try:
                results.append(client.insert([[50 + i, f"W{i}", 2000, 1, 1]]))
            except ServiceSaturatedError as exc:
                results.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rejected = [r for r in results if isinstance(r, ServiceSaturatedError)]
        committed = [r for r in results if isinstance(r, dict)]
        assert rejected, "a full queue must reject explicitly"
        assert committed, "the writer keeps serving admitted requests"
        assert all(r.status == 429 for r in rejected)
        saturated = service.instrumentation.metrics.counter(
            "service.requests_saturated_total"
        )
        assert saturated == len(rejected)
        service.shutdown()

    def test_commit_timeout_answers_503(self, tmp_path):
        service = DCService(
            make_session(tmp_path),
            ServiceConfig(port=0, batch_window_ms=0.0, cycle_delay_s=0.5),
        )
        service.start()
        client = ServiceClient(base_url=service.url, timeout=15.0)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.insert([[5, "Ema", 2002, 3, 1]], timeout=0.05)
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"] == "timeout"
        # The write stayed queued: it still commits.
        deadline_status = client.wait_ready()
        assert deadline_status is not None
        service.shutdown()  # drains the queued write
        assert any(entry["op"] == "insert" for entry in service.commit_log)

    def test_draining_service_rejects_writes(self, tmp_path):
        service = DCService(make_session(tmp_path), ServiceConfig(port=0))
        service.start()
        client = ServiceClient(base_url=service.url, timeout=5.0)
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.submit("insert", [[5, "Ema", 2002, 3, 1]])

    def test_shutdown_drains_and_checkpoints(self, tmp_path):
        session = make_session(tmp_path, checkpoint_every=100)
        directory = session.directory
        service = DCService(
            session, ServiceConfig(port=0, batch_window_ms=0.0)
        )
        service.start()
        client = ServiceClient(base_url=service.url, timeout=10.0)
        client.insert([[5, "Ema", 2002, 3, 1]])
        client.insert([[6, "Bo", 2003, 1, 2]])
        service.shutdown()
        recovered = DurableSession.recover(directory)
        assert len(recovered.discoverer.relation) == 6
        # The final checkpoint incorporated everything: no WAL tail left.
        assert recovered.replayed_records == 0
        assert state_to_bytes(recovered.discoverer) == state_to_bytes(
            service.session.discoverer
        )
        recovered.close()
