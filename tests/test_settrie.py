"""Tests for the set-trie, including property tests against brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitutils import iter_bits
from repro.enumeration import SetTrie

masks = st.integers(min_value=0, max_value=(1 << 16) - 1)
mask_lists = st.lists(masks, min_size=0, max_size=30)


class TestSetTrieBasics:
    def test_insert_contains_remove(self):
        trie = SetTrie()
        assert trie.insert(0b101)
        assert not trie.insert(0b101)  # duplicate
        assert 0b101 in trie
        assert 0b100 not in trie
        assert len(trie) == 1
        trie.remove(0b101)
        assert 0b101 not in trie
        assert len(trie) == 0

    def test_remove_missing_raises(self):
        trie = SetTrie([0b11])
        with pytest.raises(KeyError):
            trie.remove(0b1)
        with pytest.raises(KeyError):
            trie.remove(0b111)

    def test_empty_mask(self):
        trie = SetTrie([0])
        assert 0 in trie
        assert trie.has_subset_of(0b1010)
        assert trie.subsets_of(0) == [0]
        trie.remove(0)
        assert 0 not in trie

    def test_prefix_sets_coexist(self):
        trie = SetTrie([0b011, 0b111])
        assert 0b011 in trie and 0b111 in trie
        trie.remove(0b011)
        assert 0b111 in trie
        assert 0b011 not in trie

    def test_masks_roundtrip(self):
        stored = [0b1, 0b110, 0b1011]
        trie = SetTrie(stored)
        assert sorted(trie.masks()) == sorted(stored)
        assert sorted(trie) == sorted(stored)


@given(stored=mask_lists, query=masks)
@settings(max_examples=80, deadline=None)
def test_subset_queries_match_bruteforce(stored, query):
    trie = SetTrie(stored)
    expected = sorted({m for m in stored if m & query == m})
    assert sorted(trie.subsets_of(query)) == expected
    assert trie.has_subset_of(query) == bool(expected)


@given(stored=mask_lists, query=masks)
@settings(max_examples=80, deadline=None)
def test_superset_queries_match_bruteforce(stored, query):
    trie = SetTrie(stored)
    expected = sorted({m for m in stored if m & query == query})
    assert sorted(trie.supersets_of(query)) == expected


@given(stored=mask_lists, base=masks, ext=masks)
@settings(max_examples=80, deadline=None)
def test_blocked_extension_bits_match_bruteforce(stored, base, ext):
    ext &= ~base
    trie = SetTrie(stored)
    stored_set = set(stored)
    if any(m & ~base == 0 for m in stored_set):
        expected = ext
    else:
        expected = 0
        for bit in iter_bits(ext):
            candidate = base | (1 << bit)
            if any(m & candidate == m for m in stored_set):
                expected |= 1 << bit
    assert trie.blocked_extension_bits(base, ext) == expected


@given(stored=mask_lists, removals=st.lists(st.integers(0, 29), max_size=10))
@settings(max_examples=50, deadline=None)
def test_insert_remove_sequence_consistency(stored, removals):
    trie = SetTrie()
    reference = set()
    for mask in stored:
        trie.insert(mask)
        reference.add(mask)
    for index in removals:
        if not reference:
            break
        victim = sorted(reference)[index % len(reference)]
        trie.remove(victim)
        reference.discard(victim)
    assert sorted(trie) == sorted(reference)
    assert len(trie) == len(reference)
