"""Tests for the four enumeration engines and their dynamic variants.

Static correctness is anchored in a brute-force minimal-hitting-set
enumerator; dynamic correctness in static re-runs on the updated data.
"""

import random
from itertools import combinations

import pytest

from repro.enumeration import (
    DynHS,
    dfs_enumerate,
    dynei_delete,
    dynei_insert,
    invert_evidence,
    minimize_masks,
    mmcs_enumerate,
)
from repro.enumeration.inversion import maximal_masks
from repro.enumeration.mmcs import complement_edges
from repro.evidence import (
    apply_delete_evidence,
    apply_insert_evidence,
    build_evidence_state,
    delete_evidence_by_recompute,
    incremental_evidence_for_insert,
    naive_evidence_set,
)
from repro.predicates import build_predicate_space
from tests.conftest import random_rows


def brute_force_minimal_dcs(space, evidence_masks, max_size=4):
    """All satisfiable minimal hitting sets of the evidence complements,
    up to ``max_size`` predicates, by exhaustive subset enumeration."""
    complements = [space.full_mask & ~e for e in evidence_masks]
    found = []
    for size in range(0, max_size + 1):
        for bits in combinations(range(space.n_bits), size):
            mask = 0
            for bit in bits:
                mask |= 1 << bit
            if not space.satisfiable(mask):
                continue
            if any(mask & complement == 0 for complement in complements):
                continue
            if any(kept & mask == kept for kept in found):
                continue
            found.append(mask)
    return sorted(found)


class TestHelpers:
    def test_minimize_masks(self):
        assert minimize_masks([0b111, 0b011, 0b101, 0b011]) == [0b011, 0b101]

    def test_maximal_masks_dedupes_and_orders(self):
        result = maximal_masks([0b001, 0b011, 0b101, 0b011])
        assert result[0].bit_count() >= result[-1].bit_count()
        assert sorted(result) == [0b001, 0b011, 0b101]

    def test_complement_edges_minimized(self, abc_factory):
        relation = abc_factory(10, 0)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        edges = complement_edges(space, evidence)
        for i, edge in enumerate(edges):
            for j, other in enumerate(edges):
                if i != j:
                    assert not (other & edge == other), "superset edge kept"


class TestStaticEnumerators:
    @pytest.mark.parametrize("seed", range(5))
    def test_ei_matches_bruteforce(self, abc_factory, seed):
        relation = abc_factory(random.Random(seed).randint(4, 10), seed)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        full = invert_evidence(space, evidence)
        truncated = [m for m in full if m.bit_count() <= 4]
        assert truncated == brute_force_minimal_dcs(space, evidence)

    @pytest.mark.parametrize("seed", range(5))
    def test_all_enumerators_agree(self, abc_factory, seed):
        relation = abc_factory(random.Random(seed * 7).randint(5, 12), seed + 50)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        ei = invert_evidence(space, evidence)
        assert mmcs_enumerate(space, evidence) == ei
        assert dfs_enumerate(space, evidence) == ei
        assert DynHS(space, evidence).dc_masks == ei

    def test_no_evidence_yields_empty_dc(self, abc_factory):
        relation = abc_factory(1, 0)
        space = build_predicate_space(relation)
        assert invert_evidence(space, []) == [0]
        assert mmcs_enumerate(space, []) == [0]
        assert dfs_enumerate(space, []) == [0]
        assert DynHS(space, []).dc_masks == [0]

    def test_results_are_antichains_and_satisfiable(self, abc_factory):
        relation = abc_factory(12, 9)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        masks = invert_evidence(space, evidence)
        for i, mask in enumerate(masks):
            assert space.satisfiable(mask)
            for other in masks[i + 1 :]:
                assert not (mask & other == mask) and not (mask & other == other)

    def test_results_are_valid(self, abc_factory):
        relation = abc_factory(12, 10)
        space = build_predicate_space(relation)
        evidence = list(naive_evidence_set(relation, space))
        for mask in invert_evidence(space, evidence):
            assert not any(mask & e == mask for e in evidence)


class _Workbench:
    """One relation with maintained evidence state, for dynamic tests."""

    def __init__(self, seed, n_rows=12):
        self.rng = random.Random(seed)
        from repro.relational import relation_from_rows

        self.relation = relation_from_rows(
            ["A", "B", "C"], random_rows(self.rng, n_rows)
        )
        self.space = build_predicate_space(self.relation)
        self.state = build_evidence_state(self.relation, self.space)
        self.sigma = invert_evidence(self.space, list(self.state.evidence))

    def insert(self, count):
        rids = self.relation.insert(random_rows(self.rng, count))
        self.state.indexes.add_rows(rids)
        delta = incremental_evidence_for_insert(self.relation, self.state, rids)
        return apply_insert_evidence(self.state, delta)

    def delete(self, count):
        doomed = self.rng.sample(list(self.relation.rids()), count)
        delta = delete_evidence_by_recompute(self.relation, self.state, doomed)
        removed = apply_delete_evidence(self.state, delta)
        self.relation.delete(doomed)
        self.state.indexes.remove_rows(doomed)
        return removed

    def static_sigma(self):
        return invert_evidence(
            self.space, list(naive_evidence_set(self.relation, self.space))
        )


class TestDynEI:
    @pytest.mark.parametrize("seed", range(4))
    def test_insert_matches_static(self, seed):
        bench = _Workbench(seed)
        new_masks = bench.insert(5)
        dynamic = dynei_insert(bench.space, bench.sigma, new_masks)
        assert dynamic == bench.static_sigma()

    @pytest.mark.parametrize("seed", range(4))
    def test_delete_matches_static(self, seed):
        bench = _Workbench(seed + 20)
        removed = bench.delete(4)
        dynamic = dynei_delete(
            bench.space, bench.sigma, removed, list(bench.state.evidence)
        )
        assert dynamic == bench.static_sigma()

    def test_no_change_batches(self):
        bench = _Workbench(99)
        assert dynei_insert(bench.space, bench.sigma, []) == bench.sigma
        assert (
            dynei_delete(bench.space, bench.sigma, [], list(bench.state.evidence))
            == bench.sigma
        )

    def test_alternating_rounds(self):
        bench = _Workbench(7)
        sigma = bench.sigma
        for _ in range(3):
            new_masks = bench.insert(3)
            sigma = dynei_insert(bench.space, sigma, new_masks)
            removed = bench.delete(3)
            sigma = dynei_delete(
                bench.space, sigma, removed, list(bench.state.evidence)
            )
            assert sigma == bench.static_sigma()


class TestDynHS:
    @pytest.mark.parametrize("seed", range(3))
    def test_dynamic_rounds_match_static(self, seed):
        bench = _Workbench(seed + 40)
        enumerator = DynHS(bench.space, list(bench.state.evidence))
        for _ in range(2):
            new_masks = bench.insert(3)
            enumerator.insert_evidence(new_masks)
            assert enumerator.dc_masks == bench.static_sigma()
            removed = bench.delete(3)
            enumerator.delete_evidence(removed, list(bench.state.evidence))
            assert enumerator.dc_masks == bench.static_sigma()

    def test_delete_everything(self):
        bench = _Workbench(61, n_rows=6)
        enumerator = DynHS(bench.space, list(bench.state.evidence))
        removed = bench.delete(5)  # one row left: no evidence remains
        enumerator.delete_evidence(removed, list(bench.state.evidence))
        assert enumerator.dc_masks == [0]
        assert len(bench.state.evidence) == 0
