"""Tests for the replicated serving fleet (repro.replication).

Four pillars, mirroring the crash-matrix philosophy of
tests/test_crash_matrix.py — the proof of the replication layer is a
*failover matrix*, not a happy-path demo:

- **protocol units**: frame delivery in partial chunks, duplicate replay
  idempotence, gap detection (``snapshot_needed``), follower restart
  mid-catch-up, HTTP frame tamper rejection — each a small table-driven
  test over the real WAL bytes;
- **the failover matrix**: for every registered fault point × operation
  kind, kill the primary mid-frame, promote a tailing follower, and
  demand ``state_to_bytes`` byte-identity with an uninterrupted
  single-node oracle over the durable batch prefix (same
  lost-vs-durable rule as the crash matrix), then keep writing on the
  promoted node and demand identity again;
- **the fleet property**: Hypothesis drives a 1-primary/2-follower
  topology through random interleavings of writes, checkpoints, and
  polls, optionally crashing the final write — both followers must
  converge to the oracle digest with zero acknowledged-write loss;
- **mixed-topology service tests**: concurrent readers on an HTTP
  follower during a primary write burst see per-thread monotone
  snapshot seqs; ``/check`` on the follower matches the primary at the
  same ``min_seq``; writes to a follower answer 421 with the primary's
  URL; stale ``min_seq`` answers 409; promotion flips the node to a
  writable primary.
"""

from __future__ import annotations

import os
import random
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCDiscoverer, DurableSession, relation_from_rows
from repro.core.state_io import state_to_bytes
from repro.durability import (
    FAULT_POINTS,
    SimulatedCrash,
    WALReader,
    get_injector,
)
from repro.durability.session import SessionError, WAL_NAME
from repro.replication import (
    DirectorySource,
    FollowerService,
    FollowerSession,
    Frame,
    FrameBatch,
    HTTPSource,
    ReplicationError,
    ReplicationFeed,
)
from repro.service import (
    DCService,
    NotPrimaryError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceStaleError,
)
from tests.conftest import random_rows
from tests.test_crash_matrix import (
    BATCH_LOST,
    HEADER,
    OPERATIONS,
    apply_batch,
    base_rows,
    oracle_bytes,
    scripted_batches,
    target_batch,
)

pytestmark = pytest.mark.replication

#: Safety bound for drain(): no deterministic test needs more polls.
_MAX_DRAIN_POLLS = 16


def make_primary(directory, checkpoint_every=100, retain=2):
    discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
    return DurableSession.create(
        discoverer, directory, checkpoint_every=checkpoint_every, retain=retain
    )


def drain(follower):
    """Poll until the follower is fully caught up (applied 0, lag 0)."""
    for _ in range(_MAX_DRAIN_POLLS):
        applied = follower.poll()
        if applied == 0 and follower.lag_seq == 0:
            return
    raise AssertionError(f"follower failed to drain: {follower!r}")


# -- protocol units ----------------------------------------------------------


class StubSource:
    """Replays scripted FrameBatches; used for duplicate/ordering units."""

    def __init__(self, batches, checkpoint=None):
        self.batches = list(batches)
        self.checkpoint = checkpoint

    def fetch_frames(self, after_seq, wait_s=0.0, max_frames=None):
        if self.batches:
            return self.batches.pop(0)
        return FrameBatch([], after_seq, 0, False)

    def fetch_checkpoint(self):
        if self.checkpoint is None:
            raise ReplicationError("stub has no checkpoint")
        return self.checkpoint

    def close(self):
        pass


class TestProtocolUnits:
    def test_feed_delivers_frames_in_seq_order(self, tmp_path):
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        primary.insert(random_rows(random.Random(6), 2))
        feed = ReplicationFeed(tmp_path / "primary")
        batch = feed.fetch(0)
        assert [frame.seq for frame in batch.frames] == [1, 2]
        assert batch.last_seq == 2
        assert not batch.snapshot_needed
        # Tail from the middle: only the newer frame.
        assert [f.seq for f in feed.fetch(1).frames] == [2]
        feed.close()
        primary.close()

    def test_feed_partial_frame_delivery(self, tmp_path):
        """A frame that arrives in two chunks is delivered exactly once,
        only when complete — never as a torn prefix."""
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        primary.insert(random_rows(random.Random(6), 2))
        wal_bytes = (tmp_path / "primary" / WAL_NAME).read_bytes()
        primary.close()

        # Re-deliver the same WAL into a staging directory byte-split
        # mid-second-frame, with the real checkpoint dir alongside so
        # the feed sees a coherent session layout.
        staged = tmp_path / "staged"
        os.makedirs(staged / "checkpoints")
        for name in os.listdir(tmp_path / "primary" / "checkpoints"):
            data = (tmp_path / "primary" / "checkpoints" / name).read_bytes()
            (staged / "checkpoints" / name).write_bytes(data)
        cut = len(wal_bytes) - 7
        with open(staged / WAL_NAME, "wb") as handle:
            handle.write(wal_bytes[:cut])
            handle.flush()
            feed = ReplicationFeed(staged)
            first = feed.fetch(0)
            assert [f.seq for f in first.frames] == [1]
            assert not first.snapshot_needed
            handle.write(wal_bytes[cut:])
            handle.flush()
        second = feed.fetch(1)
        assert [f.seq for f in second.frames] == [2]
        # The late half arrived byte-identical to the original frame.
        assert second.frames[0].raw == wal_bytes[len(first.frames[0].raw) :]
        feed.close()

    def test_feed_gap_triggers_snapshot_needed(self, tmp_path):
        """Frames reset away by a checkpoint cannot be tailed — the feed
        must demand a checkpoint install instead of silently skipping."""
        primary = make_primary(tmp_path / "primary", checkpoint_every=1)
        primary.insert(random_rows(random.Random(5), 2))  # checkpoint + reset
        feed = ReplicationFeed(tmp_path / "primary")
        batch = feed.fetch(0)
        assert batch.snapshot_needed
        assert batch.frames == []
        assert batch.checkpoint_seq == 1
        assert batch.last_seq == 1
        # From the checkpoint's seq onward, plain tailing resumes.
        assert not feed.fetch(1).snapshot_needed
        feed.close()
        primary.close()

    def test_duplicate_frame_replay_is_idempotent(self, tmp_path):
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        primary.delete([1])
        feed = ReplicationFeed(tmp_path / "primary")
        batch = feed.fetch(0)
        feed.close()
        duplicate = FrameBatch(
            list(batch.frames), batch.last_seq, batch.checkpoint_seq, False
        )
        source = StubSource(
            [batch, duplicate, duplicate],
            checkpoint=DirectorySource(tmp_path / "primary").fetch_checkpoint(),
        )
        follower = FollowerSession.bootstrap(tmp_path / "follower", source)
        assert follower.poll() == 2
        once = state_to_bytes(follower.session.discoverer)
        assert follower.poll() == 0
        assert follower.poll() == 0
        assert follower.frames_duplicate_total == 4
        assert state_to_bytes(follower.session.discoverer) == once
        assert once == state_to_bytes(primary.discoverer)
        follower.close()
        primary.close()

    def test_apply_replicated_rejects_gaps(self, tmp_path):
        """A frame past the next expected seq must hard-fail, not apply."""
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        primary.insert(random_rows(random.Random(6), 2))
        feed = ReplicationFeed(tmp_path / "primary")
        frames = feed.fetch(0).frames
        feed.close()
        source = DirectorySource(tmp_path / "primary")
        follower = FollowerSession.bootstrap(tmp_path / "follower", source)
        with pytest.raises(SessionError, match="seq"):
            follower.session.apply_replicated(frames[1].record, frames[1].raw)
        follower.close()
        primary.close()

    def test_follower_restart_mid_catchup(self, tmp_path):
        """Killing a follower halfway through the stream and re-running
        bootstrap resumes from its own directory, byte-identically."""
        primary = make_primary(tmp_path / "primary")
        batches = [
            ("insert", random_rows(random.Random(5), 2)),
            ("delete", [0, 2]),
            ("insert", random_rows(random.Random(6), 3)),
        ]
        for batch in batches:
            apply_batch(primary, batch)
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(tmp_path / "primary")
        )
        assert follower.poll(max_frames=1) == 1  # partially caught up
        follower.close()

        resumed = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(tmp_path / "primary")
        )
        assert resumed.last_applied_seq == 1
        drain(resumed)
        assert state_to_bytes(resumed.session.discoverer) == oracle_bytes(
            batches
        )
        resumed.close()
        primary.close()

    def test_catchup_across_primary_checkpoint_reset(self, tmp_path):
        """A follower that slept through a checkpoint+reset installs the
        checkpoint and resumes tailing — and still matches the oracle."""
        primary = make_primary(tmp_path / "primary", checkpoint_every=100)
        batches = [("insert", random_rows(random.Random(5), 2))]
        apply_batch(primary, batches[0])
        follower = FollowerSession.bootstrap(
            tmp_path / "follower", DirectorySource(tmp_path / "primary")
        )
        drain(follower)
        # While the follower sleeps: more writes, an explicit checkpoint
        # (resets the primary WAL), then more writes.
        more = [
            ("insert", random_rows(random.Random(6), 2)),
            ("delete", [1, 3]),
        ]
        for batch in more:
            apply_batch(primary, batch)
        batches.extend(more)
        primary.checkpoint()
        tail = ("insert", random_rows(random.Random(7), 2))
        apply_batch(primary, tail)
        batches.append(tail)

        drain(follower)
        assert follower.catchups_total == 1
        assert state_to_bytes(follower.session.discoverer) == oracle_bytes(
            batches
        )
        assert state_to_bytes(follower.session.discoverer) == state_to_bytes(
            primary.discoverer
        )
        follower.close()
        primary.close()

    @pytest.mark.parametrize("tamper", ["flip_byte", "wrong_seq", "truncate"])
    def test_http_source_rejects_tampered_frames(self, tmp_path, tamper):
        """The crc32 that protected the frame on disk also protects it in
        transit: any in-flight corruption is a hard ReplicationError."""
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        feed = ReplicationFeed(tmp_path / "primary")
        frame = feed.fetch(0).frames[0]
        feed.close()
        primary.close()

        raw = bytearray(frame.raw)
        seq = frame.seq
        if tamper == "flip_byte":
            raw[-1] ^= 0xFF
        elif tamper == "truncate":
            raw = raw[:-3]
        else:
            seq = frame.seq + 7  # envelope seq contradicts the record

        class _StubClient:
            def replication_frames(self, **kwargs):
                return {
                    "frames": [{"seq": seq, "raw": bytes(raw).hex()}],
                    "last_seq": seq,
                    "checkpoint_seq": 0,
                    "snapshot_needed": False,
                }

        source = HTTPSource("http://127.0.0.1:1")
        source._client = _StubClient()
        with pytest.raises(ReplicationError):
            source.fetch_frames(0)


# -- the failover matrix -----------------------------------------------------


@pytest.mark.parametrize("operation", OPERATIONS)
@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_failover_matrix(tmp_path, fault_injector, point, operation):
    """Kill the primary at ``point`` mid-``operation``, promote a tailing
    follower, and demand byte-identity with the uninterrupted single-node
    oracle over the durable batch prefix — then keep writing on the
    promoted node and demand identity again."""
    primary_dir = tmp_path / "primary"
    setup = scripted_batches()
    # Same cadence trick as the crash matrix: checkpoint_every=1 makes
    # checkpoint.* points reachable from update batches; the explicit-
    # checkpoint scenario uses a cadence the workload never hits.
    cadence = 1 if operation != "checkpoint" else 100
    session = make_primary(primary_dir, checkpoint_every=cadence)
    for batch in setup:
        apply_batch(session, batch)

    follower = FollowerSession.bootstrap(
        tmp_path / "follower",
        DirectorySource(primary_dir),
        checkpoint_every=cadence,
        retain=2,
    )
    drain(follower)

    durable = list(setup)
    crashed = False
    fault_injector.arm(point)
    try:
        if operation == "checkpoint":
            session.checkpoint()
        else:
            batch = target_batch(operation)
            apply_batch(session, batch)
            durable.append(batch)
    except SimulatedCrash as crash:
        crashed = True
        assert crash.point == point
        session.simulate_power_loss()
        if operation != "checkpoint" and point not in BATCH_LOST:
            durable.append(batch)
    else:
        session.close()
    # Disarm *before* the follower drains: the follower's own WAL append
    # and checkpoints pass the very same fault points.
    fault_injector.reset()

    # executor.* points fire only inside parallel-evidence workers (this
    # workload runs serial; test_executors.py covers the firing path).
    if operation != "checkpoint" and not point.startswith(
        ("state_save", "executor.")
    ):
        assert crashed, f"{point} never fired during {operation}"

    # The primary is dead.  The follower drains whatever survived in the
    # primary's directory and takes over.
    drain(follower)
    promoted = follower.promote()
    assert state_to_bytes(promoted.discoverer) == oracle_bytes(durable)

    # The promoted node accepts writes — and stays on the oracle.
    extra = ("insert", random_rows(random.Random(41), 2))
    apply_batch(promoted, extra)
    durable.append(extra)
    assert state_to_bytes(promoted.discoverer) == oracle_bytes(durable)

    # Its directory is an ordinary session directory: restart = recover.
    promoted.close()
    reopened = DurableSession.recover(tmp_path / "follower")
    try:
        assert state_to_bytes(reopened.discoverer) == oracle_bytes(durable)
    finally:
        reopened.close()


def test_failover_matrix_covers_every_registered_point():
    """A newly planted fault point must automatically join the matrix."""
    assert set(sorted(FAULT_POINTS)) == FAULT_POINTS


# -- the fleet property ------------------------------------------------------


_row = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from("abc"),
    st.integers(min_value=0, max_value=2),
)
_fleet_op = st.one_of(
    st.tuples(st.just("insert"), st.lists(_row, min_size=1, max_size=3)),
    st.tuples(st.just("delete"), st.integers(min_value=1, max_value=2)),
    st.tuples(st.just("checkpoint"), st.none()),
    st.tuples(st.just("poll"), st.integers(min_value=0, max_value=1)),
)


def _materialize_delete(relation, count):
    """Deterministic rid choice, keeping at least 4 rows alive."""
    alive = sorted(relation.rids())
    count = min(count, max(0, len(alive) - 4))
    return alive[:count]


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(_fleet_op, min_size=1, max_size=8),
    crash_point=st.one_of(st.none(), st.sampled_from(sorted(FAULT_POINTS))),
)
def test_fleet_converges_with_zero_acknowledged_write_loss(plan, crash_point):
    """1 primary, 2 followers, random interleaving of writes, explicit
    checkpoints, and follower polls; the final write optionally crashes
    at a random fault point.  After failover both followers converge to
    the single-node oracle digest over every acknowledged (or durably
    logged) batch — no acknowledged write is ever lost."""
    injector = get_injector()
    injector.reset()
    with tempfile.TemporaryDirectory() as tmp:
        primary_dir = os.path.join(tmp, "primary")
        discoverer = DCDiscoverer(relation_from_rows(HEADER, base_rows()))
        session = DurableSession.create(
            discoverer, primary_dir, checkpoint_every=3, retain=2
        )
        followers = [
            FollowerSession.bootstrap(
                os.path.join(tmp, f"follower{index}"),
                DirectorySource(primary_dir),
                checkpoint_every=4,
            )
            for index in range(2)
        ]
        acknowledged = []
        try:
            for kind, payload in plan:
                if kind == "insert":
                    session.insert(payload)
                    acknowledged.append(("insert", payload))
                elif kind == "delete":
                    rids = _materialize_delete(
                        session.discoverer.relation, payload
                    )
                    session.delete(rids)
                    acknowledged.append(("delete", rids))
                elif kind == "checkpoint":
                    session.checkpoint()
                else:
                    followers[payload].poll()

            final = ("insert", random_rows(random.Random(47), 2))
            if crash_point is not None:
                injector.arm(crash_point)
            try:
                session.insert(final[1])
                acknowledged.append(final)
            except SimulatedCrash:
                session.simulate_power_loss()
                if crash_point not in BATCH_LOST:
                    # Crashed after the record's fsync: durably logged,
                    # so failover must preserve it.
                    acknowledged.append(final)
            else:
                session.close()
            finally:
                injector.reset()

            for follower in followers:
                drain(follower)
            oracle = oracle_bytes(acknowledged)
            assert state_to_bytes(followers[0].session.discoverer) == oracle
            assert state_to_bytes(followers[1].session.discoverer) == oracle
        finally:
            injector.reset()
            for follower in followers:
                follower.close()


# -- mixed-topology service tests --------------------------------------------


def _start_fleet(tmp_path, min_seq_wait_s=10.0):
    """One HTTP primary (replicate-listen) + one HTTP follower."""
    session = make_primary(tmp_path / "primary", checkpoint_every=100)
    primary = DCService(
        session,
        ServiceConfig(port=0, batch_window_ms=0.0, replicate_listen=True),
    )
    primary.start()
    ServiceClient(base_url=primary.url).wait_ready()
    follower = FollowerSession.bootstrap(
        tmp_path / "follower",
        HTTPSource(primary.url),
        primary_url=primary.url,
    )
    service = FollowerService(
        follower,
        ServiceConfig(
            port=0,
            batch_window_ms=0.0,
            min_seq_wait_s=min_seq_wait_s,
            follow_poll_wait_s=0.05,
        ),
        primary_url=primary.url,
    )
    service.start()
    ServiceClient(base_url=service.url).wait_ready()
    return primary, service


class TestMixedTopology:
    def test_reads_during_write_burst(self, tmp_path):
        """Concurrent follower readers during a primary write burst: every
        reader sees monotone snapshot seqs; once caught up (min_seq), the
        follower's /check verdict matches the primary's at the same seq."""
        primary, fservice = _start_fleet(tmp_path)
        pclient = ServiceClient(base_url=primary.url, timeout=10.0)
        stop = threading.Event()
        failures = []

        def reader():
            client = ServiceClient(base_url=fservice.url, timeout=10.0)
            last = -1
            try:
                while not stop.is_set():
                    payload = client.dcs()
                    if payload["seq"] < last:
                        failures.append(
                            f"seq went backwards: {payload['seq']} < {last}"
                        )
                        return
                    last = payload["seq"]
            except Exception as exc:  # surfaced after join
                failures.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            rng = random.Random(53)
            final_seq = 0
            for _ in range(10):
                final_seq = pclient.insert(random_rows(rng, 2))["seq"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures

        fclient = ServiceClient(base_url=fservice.url, timeout=10.0)
        # Read-your-writes across nodes: the commit seq from the primary
        # is a valid staleness token on the follower.
        follower_view = fclient.dcs(min_seq=final_seq)
        assert follower_view["seq"] >= final_seq
        row = random_rows(rng, 1)[0]
        mine = pclient.check(row, min_seq=final_seq)
        theirs = fclient.check(row, min_seq=final_seq)
        for payload in (mine, theirs):
            payload.pop("trace_id", None)
        assert mine == theirs
        status = fclient.status()
        assert status["role"] == "follower"
        assert status["replication"]["lag_seq"] == 0
        fservice.shutdown()
        primary.shutdown()

    def test_follower_rejects_writes_with_redirect(self, tmp_path):
        primary, fservice = _start_fleet(tmp_path)
        fclient = ServiceClient(base_url=fservice.url, timeout=10.0)
        with pytest.raises(NotPrimaryError) as excinfo:
            fclient.insert([(1, "a", 2)])
        assert excinfo.value.primary_url == primary.url
        with pytest.raises(NotPrimaryError):
            fclient.delete([0])
        fservice.shutdown()
        primary.shutdown()

    def test_stale_min_seq_answers_409(self, tmp_path):
        primary, fservice = _start_fleet(tmp_path, min_seq_wait_s=0.1)
        for url in (primary.url, fservice.url):
            client = ServiceClient(base_url=url, timeout=10.0)
            with pytest.raises(ServiceStaleError) as excinfo:
                client.dcs(min_seq=999)
            assert excinfo.value.min_seq == 999
            assert excinfo.value.seq == 0
        fservice.shutdown()
        primary.shutdown()

    def test_min_seq_wait_rides_out_replication_lag(self, tmp_path):
        """A bounded read that arrives *before* the frame does must block
        until the follower publishes the seq, not fail."""
        primary, fservice = _start_fleet(tmp_path)
        pclient = ServiceClient(base_url=primary.url, timeout=10.0)
        fclient = ServiceClient(base_url=fservice.url, timeout=10.0)
        seq = pclient.insert(random_rows(random.Random(59), 2))["seq"]
        payload = fclient.dcs(min_seq=seq)  # may block; must succeed
        assert payload["seq"] >= seq
        fservice.shutdown()
        primary.shutdown()

    def test_promote_flips_follower_to_writable_primary(self, tmp_path):
        primary, fservice = _start_fleet(tmp_path)
        pclient = ServiceClient(base_url=primary.url, timeout=10.0)
        fclient = ServiceClient(base_url=fservice.url, timeout=10.0)
        rng = random.Random(61)
        seq = pclient.insert(random_rows(rng, 2))["seq"]
        fclient.dcs(min_seq=seq)
        primary.shutdown()

        promoted = fclient.promote()
        assert promoted["promoted"] is True
        assert promoted["role"] == "primary"
        assert fclient.promote()["promoted"] is False  # idempotent
        out = fclient.insert(random_rows(rng, 2))
        assert out["seq"] == seq + 1
        assert fclient.status()["role"] == "primary"
        fservice.shutdown()

    def test_replication_endpoints_require_opt_in(self, tmp_path):
        """Without --replicate-listen the frame feed is a 400, so a
        misconfigured follower fails loudly instead of silently stalling."""
        session = make_primary(tmp_path / "primary")
        service = DCService(session, ServiceConfig(port=0, batch_window_ms=0.0))
        service.start()
        client = ServiceClient(base_url=service.url, timeout=10.0)
        client.wait_ready()
        with pytest.raises(ServiceError, match="replicate-listen"):
            client.replication_frames()
        with pytest.raises(ServiceError, match="replicate-listen"):
            client.replication_checkpoint()
        service.shutdown()

    def test_wal_reader_survives_primary_restart(self, tmp_path):
        """A WALReader (hence a DirectorySource follower) tailing a
        directory across the owner's close/recover keeps reading the same
        stream — recovery truncates torn tails in place."""
        primary = make_primary(tmp_path / "primary")
        primary.insert(random_rows(random.Random(5), 2))
        reader = WALReader(os.path.join(tmp_path / "primary", WAL_NAME))
        frames, reset = reader.poll()
        assert [frame.record["seq"] for frame in frames] == [1]
        assert not reset
        primary.close()
        reopened = DurableSession.recover(tmp_path / "primary")
        reopened.insert(random_rows(random.Random(6), 2))
        frames, reset = reader.poll()
        assert [frame.record["seq"] for frame in frames] == [2]
        assert not reset
        reader.close()
        reopened.close()
