"""Tests for schema, relation, loader, and sorting."""

import pytest

from repro.relational import (
    Column,
    ColumnType,
    Relation,
    Schema,
    infer_schema,
    load_csv,
    relation_from_rows,
    sort_by_numeric_columns,
)


class TestSchema:
    def test_positions_and_lookup(self):
        schema = Schema(
            [Column("A", ColumnType.INTEGER), Column("B", ColumnType.STRING)]
        )
        assert schema.position("B") == 1
        assert schema.column("A").ctype is ColumnType.INTEGER
        assert "A" in schema and "Z" not in schema
        assert schema.names == ("A", "B")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Column("A", ColumnType.INTEGER), Column("A", ColumnType.STRING)])

    def test_project(self):
        schema = Schema(
            [
                Column("A", ColumnType.INTEGER),
                Column("B", ColumnType.STRING),
                Column("C", ColumnType.FLOAT),
            ]
        )
        projected = schema.project(["C", "A"])
        assert projected.names == ("C", "A")

    def test_type_comparability(self):
        assert ColumnType.INTEGER.comparable_with(ColumnType.FLOAT)
        assert ColumnType.FLOAT.comparable_with(ColumnType.INTEGER)
        assert ColumnType.STRING.comparable_with(ColumnType.STRING)
        assert not ColumnType.STRING.comparable_with(ColumnType.INTEGER)

    def test_numeric_flags(self):
        assert Column("x", ColumnType.FLOAT).is_numeric
        assert not Column("x", ColumnType.STRING).is_numeric


class TestRelation:
    def _schema(self):
        return Schema(
            [Column("A", ColumnType.INTEGER), Column("B", ColumnType.STRING)]
        )

    def test_insert_assigns_dense_rids(self):
        relation = Relation(self._schema())
        rids = relation.insert([(1, "x"), (2, "y")])
        assert rids == [0, 1]
        assert relation.next_rid == 2
        assert len(relation) == 2
        assert relation.row(1) == (2, "y")

    def test_delete_keeps_rids_stable(self):
        relation = Relation(self._schema())
        relation.insert([(1, "x"), (2, "y"), (3, "z")])
        relation.delete([1])
        assert len(relation) == 2
        assert list(relation.rids()) == [0, 2]
        assert not relation.is_alive(1)
        # Dead row storage remains accessible.
        assert relation.row(1) == (2, "y")
        # New inserts never reuse rids.
        assert relation.insert([(4, "w")]) == [3]

    def test_delete_unknown_rid_raises(self):
        relation = Relation(self._schema())
        relation.insert([(1, "x")])
        with pytest.raises(KeyError):
            relation.delete([5])
        relation.delete([0])
        with pytest.raises(KeyError):
            relation.delete([0])  # double delete

    def test_arity_mismatch_raises(self):
        relation = Relation(self._schema())
        with pytest.raises(ValueError, match="arity"):
            relation.insert([(1,)])

    def test_type_checks(self):
        relation = Relation(self._schema())
        with pytest.raises(TypeError):
            relation.insert([("not-int", "x")])
        with pytest.raises(ValueError, match="null"):
            relation.insert([(None, "x")])

    def test_float_column_accepts_int(self):
        relation = Relation(Schema([Column("F", ColumnType.FLOAT)]))
        relation.insert([(1,), (2.5,)])
        assert len(relation) == 2

    def test_project_reassigns_rids(self):
        relation = Relation(self._schema())
        relation.insert([(1, "x"), (2, "y"), (3, "z")])
        relation.delete([0])
        projected = relation.project(["B"])
        assert list(projected.rows()) == [("y",), ("z",)]
        assert list(projected.rids()) == [0, 1]

    def test_head(self):
        relation = Relation(self._schema())
        relation.insert([(i, "x") for i in range(5)])
        assert len(relation.head(3)) == 3

    def test_from_sparse_rows(self):
        schema = self._schema()
        relation = Relation.from_sparse_rows(
            schema, {0: (1, "x"), 2: (3, "z")}, next_rid=4
        )
        assert list(relation.rids()) == [0, 2]
        assert relation.next_rid == 4
        assert relation.row(2) == (3, "z")
        assert relation.insert([(9, "w")]) == [4]


class TestLoader:
    def test_infer_schema(self):
        rows = [(1, "a", 1.5), (2, "b", 2)]
        schema = infer_schema(["X", "Y", "Z"], rows)
        assert schema.column("X").ctype is ColumnType.INTEGER
        assert schema.column("Y").ctype is ColumnType.STRING
        assert schema.column("Z").ctype is ColumnType.FLOAT

    def test_all_null_column_is_string(self):
        schema = infer_schema(["X"], [(None,), (None,)])
        assert schema.column("X").ctype is ColumnType.STRING

    def test_relation_from_rows_coercion(self):
        relation = relation_from_rows(["X", "Y"], [(1, 2.5), (2, 3)])
        assert relation.schema.column("Y").ctype is ColumnType.FLOAT
        assert relation.row(1) == (2, 3.0)
        assert isinstance(relation.row(1)[1], float)

    def test_null_policies(self):
        header = ["X", "Y"]
        rows = [(1, "a"), (None, "b"), (3, "c")]
        with pytest.raises(ValueError, match="null"):
            relation_from_rows(header, rows)
        dropped = relation_from_rows(header, rows, null_policy="drop")
        assert len(dropped) == 2
        filled = relation_from_rows(header, rows, null_policy="fill")
        assert len(filled) == 3
        assert filled.row(1)[0] == 0  # min(1,3) - 1

    def test_unknown_null_policy(self):
        with pytest.raises(ValueError, match="unknown null policy"):
            relation_from_rows(["X"], [(1,)], null_policy="bogus")

    def test_load_csv_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B,C\n1,x,1.5\n2,y,2.5\n")
        relation = load_csv(path)
        assert len(relation) == 2
        assert relation.row(0) == (1, "x", 1.5)
        assert relation.schema.column("A").ctype is ColumnType.INTEGER

    def test_load_csv_null_tokens_and_max_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n1,x\n?,y\n3,z\n4,w\n")
        relation = load_csv(path, null_policy="drop", max_rows=3)
        assert len(relation) == 2  # row 2 dropped, row 4 beyond max_rows

    def test_load_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)


class TestSorting:
    def test_sort_by_numeric_columns(self):
        relation = relation_from_rows(
            ["N", "S"], [(3, "c"), (1, "b"), (2, "a"), (1, "a")]
        )
        sorted_relation = sort_by_numeric_columns(relation)
        assert list(sorted_relation.rows()) == [
            (1, "a"),
            (1, "b"),
            (2, "a"),
            (3, "c"),
        ]

    def test_sort_pure_categorical(self):
        relation = relation_from_rows(["S"], [("b",), ("a",)])
        assert list(sort_by_numeric_columns(relation).rows()) == [("a",), ("b",)]
