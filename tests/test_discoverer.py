"""End-to-end tests of the DCDiscoverer facade."""

import random

import pytest

from repro import DCDiscoverer, DenialConstraint, relation_from_rows
from repro.enumeration import invert_evidence
from repro.evidence import naive_evidence_set
from repro.predicates import parse_dc
from tests.conftest import random_rows


def static_reference(discoverer):
    """Ground truth: static enumeration over the current relation."""
    masks = invert_evidence(
        discoverer.space,
        list(naive_evidence_set(discoverer.relation, discoverer.space)),
    )
    return sorted(mask for mask in masks if mask)


class TestLifecycle:
    def test_fit_returns_statistics(self, staff):
        discoverer = DCDiscoverer(staff)
        result = discoverer.fit()
        assert result.n_rows == 4
        assert result.n_predicates == discoverer.space.n_bits
        assert result.n_evidence == 12
        assert result.n_dcs == len(discoverer.dcs)
        assert set(result.timings) == {"space", "evidence", "enumeration"}

    def test_requires_fit_before_updates(self, staff):
        discoverer = DCDiscoverer(staff)
        with pytest.raises(RuntimeError, match="fit"):
            discoverer.insert([(9, "Zoe", 2010, 1, 1)])
        with pytest.raises(RuntimeError, match="fit"):
            _ = discoverer.dcs

    def test_invalid_config(self, staff):
        with pytest.raises(ValueError, match="delete_strategy"):
            DCDiscoverer(staff, delete_strategy="bogus")
        with pytest.raises(ValueError, match="maintain_tuple_index"):
            DCDiscoverer(
                staff, delete_strategy="index", maintain_tuple_index=False
            )

    def test_dcs_are_denial_constraints(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        assert all(isinstance(dc, DenialConstraint) for dc in discoverer.dcs)
        assert all(len(dc) >= 1 for dc in discoverer.dcs)

    def test_update_result_statistics(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        result = discoverer.insert([(5, "Ema", 2002, 3, 1)])
        assert result.kind == "insert"
        assert result.delta_size == 1
        assert result.n_rows == 5
        assert result.rids == [4]
        assert result.n_evidence == len(discoverer.evidence_set)
        result = discoverer.delete([4])
        assert result.kind == "delete"
        assert result.n_rows == 4


class TestPaperWalkthrough:
    """The Table I narrative as an executable specification."""

    def test_initial_dcs_hold(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        masks = set(discoverer.dc_masks)
        for text in [
            "!(t.Id = t'.Id)",
            "!(t.Level = t'.Level & t.Mgr != t'.Mgr)",
            "!(t.Hired < t'.Hired & t.Level < t'.Level)",
            "!(t.Mgr = t'.Id & t.Level > t'.Level)",
        ]:
            mask = parse_dc(text, discoverer.space)
            implied = any(dc & mask == dc for dc in masks)
            assert implied, f"{text} should hold (minimal or implied)"

    def test_insert_t5_evolves_phi3_into_phi5(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        discoverer.insert([(5, "Ema", 2002, 3, 1)])
        masks = set(discoverer.dc_masks)
        phi3 = parse_dc(
            "!(t.Hired < t'.Hired & t.Level < t'.Level)", discoverer.space
        )
        phi5 = parse_dc(
            "!(t.Mgr = t'.Mgr & t.Hired < t'.Hired & t.Level < t'.Level)",
            discoverer.space,
        )
        assert phi3 not in masks, "phi3 is violated by (t3, t5)"
        assert phi5 in masks, "phi5 is the minimal evolution of phi3"

    def test_delete_t4_reveals_phi6(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        discoverer.insert([(5, "Ema", 2002, 3, 1)])
        discoverer.delete([3])  # rid of tuple t4
        phi6 = parse_dc("!(t.Level = t'.Level)", discoverer.space)
        assert phi6 in set(discoverer.dc_masks)


@pytest.mark.parametrize("delete_strategy", ["index", "recompute"])
@pytest.mark.parametrize("infer_within_delta", [True, False])
class TestDynamicEqualsStatic:
    def test_rounds(self, delete_strategy, infer_within_delta):
        rng = random.Random(5)
        relation = relation_from_rows(["A", "B", "C"], random_rows(rng, 14))
        discoverer = DCDiscoverer(
            relation,
            delete_strategy=delete_strategy,
            infer_within_delta=infer_within_delta,
        )
        discoverer.fit()
        for _ in range(3):
            discoverer.insert(random_rows(rng, 4))
            assert discoverer.dc_masks == static_reference(discoverer)
            alive = list(discoverer.relation.rids())
            discoverer.delete(rng.sample(alive, 4))
            assert discoverer.dc_masks == static_reference(discoverer)


class TestDynHSBackendInDiscoverer:
    def test_matches_dynei(self):
        rng = random.Random(8)
        rows = random_rows(rng, 12)
        updates = [random_rows(rng, 3) for _ in range(2)]

        results = []
        for backend in ["dynei", "dynhs"]:
            relation = relation_from_rows(["A", "B", "C"], rows)
            discoverer = DCDiscoverer(relation, enumeration_backend=backend)
            discoverer.fit()
            for batch in updates:
                discoverer.insert(batch)
            discoverer.delete(list(discoverer.relation.rids())[:4])
            results.append(discoverer.dc_masks)
        assert results[0] == results[1]


class TestMixedUpdate:
    def test_update_is_delete_then_insert(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        delete_result, insert_result = discoverer.update(
            [3], [(5, "Ema", 2002, 3, 1)]
        )
        assert delete_result.kind == "delete"
        assert insert_result.kind == "insert"
        assert discoverer.dc_masks == static_reference(discoverer)

    def test_row_modification_via_update(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        # "Modify" tuple t4: delete rid 3 and insert the changed row.
        discoverer.update([3], [(4, "Kai", 2002, 3, 2)])
        assert len(discoverer.relation) == 4
        assert discoverer.dc_masks == static_reference(discoverer)


class TestExtras:
    def test_canonical_dcs(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        canonical = discoverer.canonical_dcs
        assert 0 < len(canonical) <= len(discoverer.dcs)
        masks = {dc.mask for dc in canonical}
        assert len(masks) == len(canonical)
        evidence = list(discoverer.evidence_set)
        for dc in canonical:
            assert discoverer.space.satisfiable(dc.mask)
            assert not any(dc.mask & e == dc.mask for e in evidence)

    def test_rank_and_approximate_from_discoverer(self, staff):
        discoverer = DCDiscoverer(staff)
        discoverer.fit()
        ranked = discoverer.rank(top_k=5)
        assert len(ranked) == 5
        approx = discoverer.approximate(0.2)
        assert all(isinstance(dc, DenialConstraint) for dc in approx)
        # Looser constraints: every exact DC contains some approximate DC.
        approx_masks = [dc.mask for dc in approx]
        for mask in discoverer.dc_masks:
            assert any(mask & small == small for small in approx_masks)

    def test_empty_relation_fit_then_grow(self):
        relation = relation_from_rows(["A", "B"], [(1, "x")])
        relation.delete([0])
        discoverer = DCDiscoverer(relation, allow_cross_columns=False)
        discoverer.fit()
        assert discoverer.dc_masks == []
        discoverer.insert([(1, "x"), (1, "y"), (2, "x")])
        assert discoverer.dc_masks == static_reference(discoverer)
