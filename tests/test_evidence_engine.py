"""Tests for the evidence engine: contexts, static build, inserts, deletes.

The naive pair-scan builder is the oracle throughout.
"""

import random

import pytest

from repro.evidence import (
    ColumnIndexes,
    apply_delete_evidence,
    apply_insert_evidence,
    build_contexts,
    build_evidence_state,
    delete_evidence_by_recompute,
    delete_evidence_with_index,
    incremental_evidence_for_insert,
    naive_evidence_set,
    naive_incremental_evidence,
)
from repro.predicates import build_predicate_space

from tests.conftest import random_rows


class TestContexts:
    def test_contexts_partition_partners(self, staff):
        space = build_predicate_space(staff)
        indexes = ColumnIndexes(staff)
        partner_bits = staff.alive_bits & ~1  # all but rid 0
        contexts = build_contexts(space, staff, 0, partner_bits, indexes)
        union = 0
        for bits in contexts.values():
            assert bits, "no empty context classes"
            assert union & bits == 0, "context classes overlap"
            union |= bits
        assert union == partner_bits

    def test_contexts_match_direct_evaluation(self, staff):
        space = build_predicate_space(staff)
        indexes = ColumnIndexes(staff)
        for rid in staff.rids():
            partner_bits = staff.alive_bits & ~(1 << rid)
            contexts = build_contexts(space, staff, rid, partner_bits, indexes)
            row = staff.row(rid)
            for evidence, bits in contexts.items():
                partner = bits
                while partner:
                    low = partner & -partner
                    other = low.bit_length() - 1
                    assert evidence == space.evidence_of_pair(
                        row, staff.row(other)
                    )
                    partner ^= low
            assert staff.is_alive(rid)

    def test_empty_partner_set(self, staff):
        space = build_predicate_space(staff)
        indexes = ColumnIndexes(staff)
        assert build_contexts(space, staff, 0, 0, indexes) == {}


class TestStaticBuild:
    def test_matches_naive_on_staff(self, staff):
        space = build_predicate_space(staff)
        state = build_evidence_state(staff, space)
        assert state.evidence == naive_evidence_set(staff, space)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_naive_on_random(self, abc_factory, seed):
        relation = abc_factory(25, seed)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        assert state.evidence == naive_evidence_set(relation, space)

    def test_total_pairs_invariant(self, abc_factory):
        relation = abc_factory(30, 7)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        assert state.evidence.total_pairs() == 30 * 29

    def test_single_row_relation(self, abc_factory):
        relation = abc_factory(1, 0)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        assert len(state.evidence) == 0

    def test_tuple_index_populated_when_requested(self, staff):
        space = build_predicate_space(staff)
        state = build_evidence_state(staff, space, maintain_tuple_index=True)
        assert state.tuple_index is not None
        # Tuple 0 owns all pairs with later tuples.
        owned = state.tuple_index.owned_evidence(0)
        assert sum(owned.values()) == 3
        assert build_evidence_state(staff, space).tuple_index is None


class TestInsertMaintenance:
    @pytest.mark.parametrize("infer_within_delta", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_insert_matches_naive(self, abc_factory, infer_within_delta, seed):
        rng = random.Random(seed + 100)
        relation = abc_factory(15, seed)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space, maintain_tuple_index=True)
        new_rids = relation.insert(random_rows(rng, 6))
        state.indexes.add_rows(new_rids)
        delta = incremental_evidence_for_insert(
            relation, state, new_rids, infer_within_delta=infer_within_delta
        )
        expected_delta = naive_incremental_evidence(relation, space, new_rids)
        assert delta == expected_delta
        apply_insert_evidence(state, delta)
        assert state.evidence == naive_evidence_set(relation, space)

    def test_new_masks_are_reported(self, abc_factory):
        relation = abc_factory(10, 3)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        before = set(state.evidence)
        new_rids = relation.insert(random_rows(random.Random(9), 4))
        state.indexes.add_rows(new_rids)
        delta = incremental_evidence_for_insert(relation, state, new_rids)
        new_masks = apply_insert_evidence(state, delta)
        assert set(new_masks) == set(state.evidence) - before

    def test_empty_insert(self, abc_factory):
        relation = abc_factory(8, 4)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        delta = incremental_evidence_for_insert(relation, state, [])
        assert len(delta) == 0

    def test_insert_into_empty_relation(self, abc_factory):
        relation = abc_factory(3, 5)
        space = build_predicate_space(relation)
        empty = relation.project(relation.schema.names)
        empty.delete(list(empty.rids()))
        state = build_evidence_state(empty, space)
        new_rids = empty.insert(random_rows(random.Random(1), 5))
        state.indexes.add_rows(new_rids)
        delta = incremental_evidence_for_insert(empty, state, new_rids)
        apply_insert_evidence(state, delta)
        assert state.evidence == naive_evidence_set(empty, space)


class TestDeleteMaintenance:
    @pytest.mark.parametrize("strategy", ["recompute", "index"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delete_matches_naive(self, abc_factory, strategy, seed):
        relation = abc_factory(20, seed)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space, maintain_tuple_index=True)
        rng = random.Random(seed)
        doomed = rng.sample(list(relation.rids()), 7)
        expected_delta = naive_incremental_evidence(relation, space, doomed)
        if strategy == "recompute":
            delta = delete_evidence_by_recompute(relation, state, doomed)
        else:
            delta = delete_evidence_with_index(relation, state, doomed)
        assert delta == expected_delta
        apply_delete_evidence(state, delta)
        relation.delete(doomed)
        state.indexes.remove_rows(doomed)
        assert state.evidence == naive_evidence_set(relation, space)

    def test_index_strategy_requires_tuple_index(self, abc_factory):
        relation = abc_factory(6, 0)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space)
        with pytest.raises(RuntimeError, match="tuple evidence index"):
            delete_evidence_with_index(relation, state, [0])

    def test_delete_all_rows(self, abc_factory):
        relation = abc_factory(8, 2)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space, maintain_tuple_index=True)
        doomed = list(relation.rids())
        delta = delete_evidence_with_index(relation, state, doomed)
        apply_delete_evidence(state, delta)
        relation.delete(doomed)
        state.indexes.remove_rows(doomed)
        assert len(state.evidence) == 0
        assert state.evidence.total_pairs() == 0

    @pytest.mark.parametrize("strategy", ["recompute", "index"])
    def test_interleaved_rounds(self, abc_factory, strategy):
        relation = abc_factory(12, 6)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space, maintain_tuple_index=True)
        rng = random.Random(42)
        for _ in range(4):
            new_rids = relation.insert(random_rows(rng, rng.randint(1, 4)))
            state.indexes.add_rows(new_rids)
            apply_insert_evidence(
                state, incremental_evidence_for_insert(relation, state, new_rids)
            )
            alive = list(relation.rids())
            doomed = rng.sample(alive, rng.randint(1, len(alive) // 3))
            if strategy == "recompute":
                delta = delete_evidence_by_recompute(relation, state, doomed)
            else:
                delta = delete_evidence_with_index(relation, state, doomed)
            apply_delete_evidence(state, delta)
            relation.delete(doomed)
            state.indexes.remove_rows(doomed)
            assert state.evidence == naive_evidence_set(relation, space)

    def test_insert_then_delete_roundtrip(self, abc_factory):
        relation = abc_factory(15, 8)
        space = build_predicate_space(relation)
        state = build_evidence_state(relation, space, maintain_tuple_index=True)
        snapshot = state.evidence.copy()
        rng = random.Random(3)
        new_rids = relation.insert(random_rows(rng, 5))
        state.indexes.add_rows(new_rids)
        apply_insert_evidence(
            state, incremental_evidence_for_insert(relation, state, new_rids)
        )
        delta = delete_evidence_with_index(relation, state, new_rids)
        apply_delete_evidence(state, delta)
        relation.delete(new_rids)
        state.indexes.remove_rows(new_rids)
        assert state.evidence == snapshot
