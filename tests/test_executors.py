"""Tests for the shard executors and the pair-grid decomposition.

The contract under test (docs/distributed.md): for the differential-
oracle workload, every executor backend × shard count produces a
serialized state *byte-identical* to the serial build — and the same
holds when workers die mid-shard (fault injection) or the platform loses
the fork start method.

The process-spanning cases are marked ``distributed`` (CI runs them in a
dedicated job across fork and spawn start methods); the in-process grid
cases run everywhere.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_bytes
from repro.durability.faults import get_injector
from repro.evidence.executors import (
    EXECUTOR_CHOICES,
    EXECUTORS,
    WORKER_FAULT_POINT,
    grid_blocks,
    grid_shard_count,
    make_executor,
    resolve_executor,
    shard_bitmaps,
    validate_executor,
)
from repro.evidence.executors.base import fork_available
from repro.evidence.executors.wire import WireError, recv_message, send_message
from repro.relational.loader import relation_from_rows
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import pick_delete_rids, split_for_insert

DATASET = "Tax"
TOTAL_ROWS = 80
SHARD_COUNTS = (1, 2, 4, 7)

#: Executors exercised by the byte-identity matrix.  ``fork`` is skipped
#: automatically where the platform (or REPRO_FORCE_SPAWN) removed it.
ALL_EXECUTORS = ("serial", "fork", "spawn", "socket")


def _workload(seed=1):
    raw = DATASETS[DATASET].rows(TOTAL_ROWS, seed=0)
    return split_for_insert(raw, ratio=0.25, retain=0.7, seed=seed)


def _run_cycle(workers=1, executor="auto", shards=None, **kwargs):
    """fit → insert → delete on the differential-oracle workload; return
    the discoverer's canonical serialized state."""
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(
        relation, workers=workers, executor=executor, shards=shards, **kwargs
    )
    discoverer.fit()
    discoverer.insert(list(workload.delta_rows))
    discoverer.delete(pick_delete_rids(discoverer.relation, 0.15, seed=3))
    return state_to_bytes(discoverer)


@pytest.fixture(scope="module")
def serial_state():
    return _run_cycle(workers=1)


def _skip_unless_runnable(executor):
    if executor == "fork" and not fork_available():
        pytest.skip("fork start method unavailable")


# -- grid planning ------------------------------------------------------------


def test_grid_blocks_counts():
    for n_shards in range(1, 9):
        blocks = grid_blocks(n_shards)
        assert len(blocks) == n_shards * (n_shards + 1) // 2
        assert len(set(blocks)) == len(blocks)
        assert all(i <= j for i, j in blocks)


def test_grid_shard_count_scales_with_workers():
    # Enough blocks for every worker to have steal targets…
    for workers in (1, 2, 4, 8):
        size = grid_shard_count(workers, n_items=10_000)
        assert size * (size + 1) // 2 >= 2 * workers
    # …but never more shards than items, and explicit override wins.
    assert grid_shard_count(8, n_items=3) <= 3
    assert grid_shard_count(2, n_items=100, shards=7) == 7
    assert grid_shard_count(2, n_items=4, shards=7) == 4
    with pytest.raises(ValueError):
        grid_shard_count(2, n_items=10, shards=0)


def test_shard_bitmaps_stripe_and_partition():
    alive = 0b1011011101
    bitmaps = shard_bitmaps(alive, 3)
    merged = 0
    for bitmap in bitmaps:
        assert merged & bitmap == 0
        merged |= bitmap
    assert merged == alive
    # Striping: sorted positions round-robin over shards.
    positions = [rid for rid in range(10) if (alive >> rid) & 1]
    for shard, bitmap in enumerate(bitmaps):
        expected = sum(1 << rid for rid in positions[shard::3])
        assert bitmap == expected


def test_executor_registry_and_resolution():
    assert set(EXECUTORS) == {"serial", "fork", "spawn", "socket"}
    assert validate_executor(None) == "auto"
    with pytest.raises(ValueError, match="unknown executor"):
        validate_executor("threads")
    assert resolve_executor("serial") == "serial"
    assert resolve_executor("auto") in ("fork", "spawn")
    assert sorted(EXECUTOR_CHOICES)[0] == "auto"


def test_force_spawn_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
    assert not fork_available()
    assert resolve_executor("auto") == "spawn"
    assert resolve_executor("fork") is None
    with pytest.raises(RuntimeError, match="unavailable"):
        make_executor("fork", workers=2)


# -- wire framing -------------------------------------------------------------


class _LoopSocket:
    """In-memory socket double for the framing round-trip tests."""

    def __init__(self, buffer=b""):
        self.buffer = bytearray(buffer)

    def sendall(self, data):
        self.buffer.extend(data)

    def recv(self, n):
        chunk = bytes(self.buffer[:n])
        del self.buffer[: len(chunk)]
        return chunk


def test_wire_round_trip():
    sock = _LoopSocket()
    message = ("task", 3, {"kind": "static", "block": (0, 1)})
    sent = send_message(sock, message)
    received, n_read = recv_message(sock)
    assert received == message
    assert sent == n_read


def test_wire_rejects_corruption():
    sock = _LoopSocket()
    send_message(sock, ("ready", 0))
    sock.buffer[-1] ^= 0xFF  # flip a payload byte → crc mismatch
    with pytest.raises(WireError, match="crc"):
        recv_message(sock)
    send_message(sock, ("ready", 0))
    sock.buffer[0:4] = b"3DCW"  # the WAL's magic is not ours
    with pytest.raises(WireError, match="magic"):
        recv_message(sock)
    with pytest.raises(WireError, match="closed"):
        recv_message(_LoopSocket(b"\x00" * 3))


# -- the byte-identity matrix -------------------------------------------------


@pytest.mark.distributed
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("executor", ALL_EXECUTORS)
def test_executor_states_byte_identical_to_serial(
    executor, shards, serial_state
):
    """Acceptance criterion: every executor backend × shard count in
    {1, 2, 4, 7} reproduces the serial `state_to_bytes` exactly on the
    differential-oracle workload (fit → insert → delete)."""
    _skip_unless_runnable(executor)
    assert _run_cycle(workers=2, executor=executor, shards=shards) == serial_state


@pytest.mark.distributed
def test_base_strategies_byte_identical_to_serial():
    """The non-default strategies (Base inserts, recompute deletes) cross
    the grid's other code paths."""
    kwargs = dict(delete_strategy="recompute", infer_within_delta=False)
    serial = _run_cycle(workers=1, **kwargs)
    for executor in ("serial", resolve_executor("auto")):
        assert _run_cycle(
            workers=3, executor=executor, shards=4, **kwargs
        ) == serial


@pytest.mark.distributed
def test_executor_metrics_reported():
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=2, shards=4)
    report = discoverer.fit().report
    assert report.metric("executor.tasks") == 10  # 4·5/2 grid blocks
    assert report.metric("parallel.shards") == 10
    assert report.metric("executor.bytes_shipped", 0) >= 0
    assert report.metric("evidence.pairs_compared") > 0


def test_fallback_counter_fires_when_fork_unavailable(monkeypatch):
    """Satellite fix: the silent serial fallback is now loud — one
    warning plus the ``parallel.fallback`` counter."""
    monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=4, executor="fork")
    report = discoverer.fit().report
    assert report.metric("parallel.fallback") == 1
    # Degraded but correct: identical to the plain serial build.
    assert state_to_bytes(discoverer) == state_to_bytes(
        _fit_serial(workload)
    )


def _fit_serial(workload):
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=1)
    discoverer.fit()
    return discoverer


# -- fault handling -----------------------------------------------------------


@pytest.mark.distributed
@pytest.mark.parametrize("executor", ("fork", "spawn", "socket"))
def test_worker_death_mid_shard_recovers_byte_identical(
    executor, serial_state, fault_injector
):
    """Kill workers mid-shard via the ``executor.shard`` fault point (it
    fires worker-side only): the lost blocks must be re-dispatched or
    degraded to an in-process run, landing on the exact serial bytes."""
    _skip_unless_runnable(executor)
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=2, executor=executor, shards=4)
    # skip=1: every worker survives its first claimed block and dies on
    # the second, so the run sees both healthy and dying workers.
    fault_injector.arm(WORKER_FAULT_POINT, skip=1)
    try:
        discoverer.fit()
        discoverer.insert(list(workload.delta_rows))
        discoverer.delete(pick_delete_rids(discoverer.relation, 0.15, seed=3))
    finally:
        fault_injector.reset()
    assert state_to_bytes(discoverer) == serial_state


@pytest.mark.distributed
def test_worker_death_every_block_degrades_to_serial(
    serial_state, fault_injector
):
    """skip=0 kills every worker on its first block: the executor loses
    the whole pool and must degrade to the in-process path — still
    byte-identical."""
    executor = resolve_executor("auto")
    workload = _workload()
    relation = relation_from_rows(
        DATASETS[DATASET].header, list(workload.static_rows)
    )
    discoverer = DCDiscoverer(relation, workers=2, executor=executor, shards=2)
    fault_injector.arm(WORKER_FAULT_POINT)
    try:
        discoverer.fit()
        discoverer.insert(list(workload.delta_rows))
        discoverer.delete(pick_delete_rids(discoverer.relation, 0.15, seed=3))
    finally:
        fault_injector.reset()
    assert state_to_bytes(discoverer) == serial_state
    report = discoverer.instrumentation.metrics.counters
    assert report.get("executor.redispatched", 0) > 0


# -- property: random shard counts × executors --------------------------------


@pytest.mark.distributed
@settings(max_examples=8, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=9),
    workers=st.integers(min_value=2, max_value=4),
    executor=st.sampled_from(("serial", "auto")),
)
def test_random_grid_configurations_match_serial(shards, workers, executor):
    """Hypothesis property: any (shard count, worker count, executor)
    triple reproduces the serial state bytes."""
    get_injector().reset()
    expected = _EXPECTED_STATE.setdefault("state", _run_cycle(workers=1))
    assert _run_cycle(
        workers=workers, executor=executor, shards=shards
    ) == expected


_EXPECTED_STATE: dict = {}


# -- scaling-curve artifact shape ---------------------------------------------


def test_distributed_scaling_results_shape():
    """The committed benchmark artifact (uploaded by the CI distributed
    job) keeps the fields the gate and the docs reference."""
    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "results",
        "distributed_scaling.json",
    )
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["benchmark"] == "distributed_scaling"
    rows = payload["rows"]
    assert any(row.get("workers") == 4 for row in rows)
    assert all("evidence_seconds" in row for row in rows)
    notes = payload.get("notes", {})
    assert "cpu_count" in notes
    assert notes["byte_identical"] is True
