"""Tests for the evidence multiset."""

import pytest

from repro.evidence import EvidenceSet


class TestEvidenceSet:
    def test_add_and_count(self):
        evidence = EvidenceSet()
        evidence.add(0b101, 3)
        evidence.add(0b101, 2)
        evidence.add(0b011)
        assert evidence.count(0b101) == 5
        assert evidence.count(0b011) == 1
        assert evidence.count(0b111) == 0
        assert len(evidence) == 2
        assert evidence.total_pairs() == 6

    def test_add_nonpositive_rejected(self):
        evidence = EvidenceSet()
        with pytest.raises(ValueError):
            evidence.add(1, 0)
        with pytest.raises(ValueError):
            evidence.add(1, -2)

    def test_subtract_partial_and_full(self):
        evidence = EvidenceSet({0b1: 3})
        assert evidence.subtract(0b1, 2) is False
        assert evidence.count(0b1) == 1
        assert evidence.subtract(0b1, 1) is True
        assert 0b1 not in evidence

    def test_subtract_missing_raises(self):
        with pytest.raises(KeyError):
            EvidenceSet().subtract(0b1)

    def test_subtract_overdraw_raises(self):
        evidence = EvidenceSet({0b1: 1})
        with pytest.raises(ValueError, match="cannot subtract"):
            evidence.subtract(0b1, 5)

    def test_merge_returns_new_masks(self):
        base = EvidenceSet({0b1: 2})
        delta = EvidenceSet({0b1: 1, 0b10: 4})
        new_masks = base.merge(delta)
        assert new_masks == [0b10]
        assert base.count(0b1) == 3
        assert base.count(0b10) == 4

    def test_subtract_all_returns_vanished(self):
        base = EvidenceSet({0b1: 2, 0b10: 4})
        removed = base.subtract_all(EvidenceSet({0b1: 2, 0b10: 1}))
        assert removed == [0b1]
        assert base.count(0b10) == 3

    def test_copy_and_equality(self):
        base = EvidenceSet({0b1: 2})
        clone = base.copy()
        clone.add(0b10)
        assert base != clone
        assert base == EvidenceSet({0b1: 2})

    def test_iteration(self):
        evidence = EvidenceSet({5: 1, 9: 2})
        assert sorted(evidence) == [5, 9]

    def test_repr(self):
        assert "2 distinct" in repr(EvidenceSet({1: 1, 2: 5}))
