"""DC ranking and approximate DCs on the Tax dataset.

DC discovery returns thousands of constraints even for small data; the
scoring functions of [4], [11] and approximate DCs [4], [7] make the
result explorable.  Both need the evidence *multiplicity* — the statistic
3DC keeps available in dynamic settings (one of its design goals, see
Section II).  This example:

1. discovers DCs on a Tax-like table (zip→city/state FDs, salary→rate OD),
2. ranks them by succinctness + coverage,
3. relaxes to approximate DCs at growing ε and shows how noise-broken
   constraints (here: a corrupted rate column) re-emerge as approximate,
4. shows that the statistics stay exact across an update batch.

Run:  python examples/dc_ranking_explorer.py
"""

import random

from repro import DCDiscoverer, parse_dc
from repro.dcs import violation_count
from repro.workloads import DATASETS


def main():
    rng = random.Random(3)
    spec = DATASETS["Tax"]
    rows = list(spec.rows(200, seed=1))

    # Corrupt the salary→rate order dependency in a handful of rows: the
    # exact OD disappears, but it should survive as an approximate DC.
    salary_position = spec.header.index("salary")
    rate_position = spec.header.index("rate")
    for index in rng.sample(range(len(rows)), 5):
        row = list(rows[index])
        row[rate_position] = row[salary_position] // 100 + rng.randint(5, 40)
        rows[index] = tuple(row)

    from repro import relation_from_rows

    relation = relation_from_rows(spec.header, rows)
    # Focus the space on the columns the Tax constraints live on — the
    # usual workflow when exploring rules for a known quality problem.
    focus = ["zip", "city", "state", "marital", "has_child",
             "salary", "rate", "child_exemp"]
    discoverer = DCDiscoverer(relation, column_names=focus)
    print(f"static discovery: {discoverer.fit()}")

    print("\ntop-10 DCs by interestingness:")
    for entry in discoverer.rank(top_k=10):
        print(
            f"  score={entry.score:.3f} (succ={entry.succinctness:.2f}, "
            f"cov={entry.coverage:.2f})  {entry.dc}"
        )

    od_text = "!(t.salary < t'.salary & t.rate > t'.rate)"
    od_mask = parse_dc(od_text, discoverer.space)
    total_pairs = discoverer.evidence_set.total_pairs()
    violations = violation_count(discoverer.evidence_set, od_mask)
    print(f"\nthe corrupted order dependency: {od_text}")
    print(
        f"  violated by {violations} of {total_pairs} ordered pairs "
        f"({violations / total_pairs:.2%}) -> not an exact DC"
    )

    for epsilon in (0.0005, 0.002, 0.01):
        approximate = discoverer.approximate(epsilon)
        recovered = any(dc.mask == od_mask for dc in approximate)
        print(
            f"  ε={epsilon:<7}: {len(approximate):5d} approximate DCs, "
            f"salary→rate OD recovered: {recovered}"
        )

    print("\napplying an update batch and re-ranking (statistics stay exact):")
    discoverer.insert(spec.rows(30, seed=9))
    discoverer.delete(list(discoverer.relation.rids())[:10])
    for entry in discoverer.rank(top_k=3):
        print(f"  score={entry.score:.3f}  {entry.dc}")


if __name__ == "__main__":
    main()
