"""Data-quality monitoring on a living table — the paper's motivating use.

A hospital registry receives inserts and deletes in batches.  The monitor

1. bootstraps 3DC once on the initial data,
2. maintains the minimal DC set incrementally with every batch,
3. screens each incoming row against a small set of *trusted* DCs (the
   top-ranked ones) BEFORE applying the insert, flagging rows that would
   clash with existing data, and
4. reports the DC churn per batch — the "experts must revisit
   specifications" burden the paper quantifies, here fully automated.

Run:  python examples/data_quality_monitor.py
"""

import random

from repro import DCDiscoverer
from repro.dcs import violating_partners
from repro.workloads import DATASETS

DATASET = "Hospital"
INITIAL_ROWS = 220
BATCHES = 4
BATCH_SIZE = 25
TRUSTED_TOP_K = 8


def screen_batch(discoverer, trusted_dcs, rows):
    """Check rows against trusted DCs without mutating the state.

    Returns (clean_rows, flagged) where flagged maps a row to the DCs it
    would violate together with some existing tuple.
    """
    relation = discoverer.relation
    indexes = discoverer.engine_state.indexes
    flagged = {}
    probe_rids = relation.insert(rows)  # staged
    indexes.add_rows(probe_rids)
    try:
        for rid, row in zip(probe_rids, rows):
            hits = []
            for dc in trusted_dcs:
                as_first, as_second = violating_partners(
                    dc, relation, indexes, rid
                )
                if as_first or as_second:
                    hits.append(dc)
            if hits:
                flagged[row] = hits
    finally:
        indexes.remove_rows(probe_rids)
        relation.delete(probe_rids)
    clean = [row for row in rows if row not in flagged]
    return clean, flagged


def main():
    rng = random.Random(7)
    spec = DATASETS[DATASET]
    all_rows = spec.rows(INITIAL_ROWS + BATCHES * BATCH_SIZE, seed=0)
    initial, stream = all_rows[:INITIAL_ROWS], all_rows[INITIAL_ROWS:]

    from repro import relation_from_rows

    discoverer = DCDiscoverer(relation_from_rows(spec.header, initial))
    result = discoverer.fit()
    print(f"bootstrap on {INITIAL_ROWS} rows: {result}")

    trusted = [entry.dc for entry in discoverer.rank(top_k=TRUSTED_TOP_K)]
    print(f"\ntrusted constraints (top {TRUSTED_TOP_K} by interestingness):")
    for dc in trusted:
        print(f"  {dc}")

    for batch_number in range(BATCHES):
        batch = stream[batch_number * BATCH_SIZE : (batch_number + 1) * BATCH_SIZE]
        # Corrupt one row per batch to give the screen something to catch:
        # duplicate an existing provider id (violates the key DC family).
        victim = list(batch[0])
        victim[0] = discoverer.relation.value(next(discoverer.relation.rids()), 0)
        batch = [tuple(victim)] + list(batch[1:])

        clean, flagged = screen_batch(discoverer, trusted, batch)
        print(f"\n--- batch {batch_number + 1}: {len(batch)} rows ---")
        for row, hits in flagged.items():
            print(f"  FLAGGED {row[:3]}...  violates {len(hits)} trusted DC(s),")
            print(f"          e.g. {hits[0]}")
        update = discoverer.insert(clean)
        print(
            f"  applied {len(clean)} clean rows: DCs {update.n_dcs} "
            f"(+{update.n_new_dcs}/-{update.n_removed_dcs}), "
            f"evidence {update.n_evidence} "
            f"({update.n_evidence_changed:+d} new)"
        )

        # Simulate retention clean-up: drop a few of the oldest rows.
        oldest = list(discoverer.relation.rids())[: rng.randint(2, 5)]
        update = discoverer.delete(oldest)
        print(
            f"  retention delete of {len(oldest)} rows: DCs {update.n_dcs} "
            f"(+{update.n_new_dcs}/-{update.n_removed_dcs})"
        )

    print(f"\nfinal state: {discoverer}")
    print(f"final minimal DCs: {len(discoverer.dcs)}")


if __name__ == "__main__":
    main()
