"""Quickstart — the paper's Table I walkthrough, end to end.

Runs the full 3DC life cycle on the ``staff`` relation: static discovery,
an insert that evolves an order dependency (φ3 → φ5), and a delete that
reveals a latent DC (φ6).

Run:  python examples/quickstart.py
"""

from repro import DCDiscoverer, parse_dc
from repro.workloads import staff_relation


def show_dcs(discoverer, label, highlight=()):
    print(f"\n=== {label}: {len(discoverer.dcs)} minimal DCs ===")
    highlighted = {parse_dc(text, discoverer.space): text for text in highlight}
    masks = set(discoverer.dc_masks)
    for mask, text in highlighted.items():
        status = "HOLDS (minimal)" if mask in masks else (
            "holds (implied)" if any(dc & mask == dc for dc in masks)
            else "VIOLATED"
        )
        print(f"  {status:16s} {text}")


def main():
    staff = staff_relation()
    print("The staff relation (Table I, initial part):")
    print(f"  {staff.schema.names}")
    for rid in staff.rids():
        print(f"  t{rid + 1}: {staff.row(rid)}")

    discoverer = DCDiscoverer(staff)
    result = discoverer.fit()
    print(f"\nStatic discovery: {result}")

    phi = {
        "phi1": "!(t.Id = t'.Id)",
        "phi2": "!(t.Level = t'.Level & t.Mgr != t'.Mgr)",
        "phi3": "!(t.Hired < t'.Hired & t.Level < t'.Level)",
        "phi4": "!(t.Mgr = t'.Id & t.Level > t'.Level)",
        "phi5": "!(t.Mgr = t'.Mgr & t.Hired < t'.Hired & t.Level < t'.Level)",
        "phi6": "!(t.Level = t'.Level)",
    }
    show_dcs(discoverer, "initial state", phi.values())

    print("\n>>> insert t5 = (5, 'Ema', 2002, 3, 1)")
    update = discoverer.insert([(5, "Ema", 2002, 3, 1)])
    print(f"    {update}")
    show_dcs(discoverer, "after insert", phi.values())
    print("  -> phi3 is violated by (t3, t5); phi5 became minimal (its evolution)")

    print("\n>>> delete t4 (rid 3)")
    update = discoverer.delete([3])
    print(f"    {update}")
    show_dcs(discoverer, "after delete", phi.values())
    print("  -> phi6 emerged: with t4 gone, Level is unique; phi2 is now implied")

    print("\nTop-5 DCs by interestingness (succinctness + coverage):")
    for entry in discoverer.rank(top_k=5):
        print(f"  score={entry.score:.3f}  {entry.dc}")


if __name__ == "__main__":
    main()
