"""Dynamic approximate-DC maintenance — the paper's future work, running.

Section VIII of the paper defers approximate DCs in dynamic settings to
future research; the prerequisite it puts in place is an evidence
multiplicity that stays exact across updates.  This example attaches an
:class:`ApproximateDCMonitor` to a live discoverer:

- per-update, the monitor's violation counters track every batch exactly
  (cheap incremental accounting),
- DCs that drift over the ε budget are flagged the moment it happens,
- a ``refresh()`` re-enumerates the minimal approximate DCs on demand and
  reports the diff.

The scenario: a Claim table whose incoming batches get progressively
noisier, eroding the amount→premium pricing rule.

Run:  python examples/approximate_dc_monitoring.py
"""

import random

from repro import DCDiscoverer, parse_dc, relation_from_rows
from repro.workloads import DATASETS

EPSILON = 0.005
INITIAL_ROWS = 160
BATCHES = 4
BATCH_SIZE = 20


def corrupt(rows, rng, noise_rate, amount_position, premium_position):
    """Break the amount→premium correlation in a share of the rows."""
    noisy = []
    for row in rows:
        if rng.random() < noise_rate:
            row = list(row)
            row[premium_position] = row[amount_position] * 1000 + rng.randint(
                5_000, 40_000
            )
            row = tuple(row)
        noisy.append(row)
    return noisy


def main():
    rng = random.Random(11)
    spec = DATASETS["Claim"]
    amount_position = spec.header.index("amount")
    premium_position = spec.header.index("premium")

    discoverer = DCDiscoverer(
        relation_from_rows(spec.header, spec.rows(INITIAL_ROWS, seed=2))
    )
    print(f"bootstrap: {discoverer.fit()}")
    monitor = discoverer.attach_approximate_monitor(EPSILON)
    print(
        f"monitoring {len(monitor.dc_masks)} approximate DCs at "
        f"ε={EPSILON} (budget {monitor.budget} violating pairs)"
    )

    pricing_rule = parse_dc(
        "!(t.amount < t'.amount & t.premium > t'.premium)", discoverer.space
    )
    tracked = pricing_rule in set(monitor.dc_masks)
    print(f"pricing rule tracked as approximate DC: {tracked}")

    for batch_number in range(1, BATCHES + 1):
        batch = spec.rows(BATCH_SIZE, seed=100 + batch_number)
        noise = 0.15 * batch_number
        batch = corrupt(batch, rng, noise, amount_position, premium_position)
        discoverer.insert(batch)
        status = []
        if pricing_rule in set(monitor.dc_masks):
            status.append(
                f"pricing rule at {monitor.violations(pricing_rule)}"
                f"/{monitor.budget} violations"
            )
        else:
            status.append("pricing rule OVER BUDGET")
        print(
            f"batch {batch_number} (noise {noise:.0%}): "
            f"{len(monitor.dc_masks)} DCs within budget; "
            f"{', '.join(status)}; needs_refresh={monitor.needs_refresh}"
        )

    report = monitor.refresh()
    print(
        f"\nrefresh: {report.n_dcs} approximate DCs "
        f"(+{len(report.added)} newly minimal, -{len(report.removed)} gone)"
    )
    still = pricing_rule in set(monitor.dc_masks)
    print(f"pricing rule survives at ε={EPSILON}: {still}")
    if not still:
        print("  -> the noise eroded it past the budget; raising ε would "
              "re-admit it (see dc_ranking_explorer.py)")


if __name__ == "__main__":
    main()
