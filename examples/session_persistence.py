"""Persisting 3DC intermediates across sessions (Figure 2's loop).

3DC's whole premise is that the evidence set and DC antichain of a
previous discovery feed the next incremental call.  This example runs a
"nightly batch" scenario: each session loads the saved state, applies the
day's inserts and deletes, reports the DC churn, and saves the state back
— no static re-discovery after the first session.

Run:  python examples/session_persistence.py
"""

import os
import tempfile
import time

from repro import DCDiscoverer, load_state, save_state
from repro.workloads import DATASETS, pick_delete_rids

DATASET = "Inspection"
INITIAL_ROWS = 250
SESSIONS = 3
DAILY_INSERTS = 30


def main():
    spec = DATASETS[DATASET]
    state_path = os.path.join(tempfile.mkdtemp(), "inspection.3dc.json")

    # Session 0: the only static discovery ever needed.
    discoverer = DCDiscoverer(spec.relation(INITIAL_ROWS, seed=0))
    started = time.perf_counter()
    result = discoverer.fit()
    print(f"session 0 (static bootstrap): {result}")
    save_state(discoverer, state_path)
    size_kib = os.path.getsize(state_path) / 1024
    print(f"  state saved: {state_path} ({size_kib:.0f} KiB)")

    for session in range(1, SESSIONS + 1):
        started = time.perf_counter()
        discoverer = load_state(state_path)
        load_seconds = time.perf_counter() - started

        inserts = spec.rows(DAILY_INSERTS, seed=100 + session)
        insert_result = discoverer.insert(inserts)
        deletes = pick_delete_rids(discoverer.relation, 0.05, seed=session)
        delete_result = discoverer.delete(deletes)

        save_state(discoverer, state_path)
        print(
            f"session {session}: load {load_seconds:.2f}s | "
            f"+{insert_result.delta_size} rows "
            f"(DCs {insert_result.n_dcs}, +{insert_result.n_new_dcs}"
            f"/-{insert_result.n_removed_dcs}) | "
            f"-{delete_result.delta_size} rows "
            f"(DCs {delete_result.n_dcs}, +{delete_result.n_new_dcs}"
            f"/-{delete_result.n_removed_dcs})"
        )

    print(f"\nfinal relation: {discoverer.relation}")
    print(f"final minimal DCs: {len(discoverer.dcs)}")
    print("equivalent CLI workflow:")
    print("  repro-dc discover day0.csv --state state.json")
    print("  repro-dc insert day1.csv --state state.json")
    print("  repro-dc delete --state state.json --rids 3 17 42")


if __name__ == "__main__":
    main()
