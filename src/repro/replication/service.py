"""Serving from a replica: the follower-mode DC service.

A :class:`FollowerService` is a :class:`~repro.service.server.DCService`
whose writer thread is replaced by a replication loop: instead of
draining a write queue, it tails the primary's WAL through a
:class:`~repro.replication.follower.FollowerSession` and publishes a
fresh immutable snapshot after every applied frame batch.  Reads
(``GET /dcs``, ``/rank``, ``/check``, ``/verify``) are served locally
from those snapshots exactly as on the primary — same endpoints, same
payloads, same seq stamps — so a load balancer can spread reads across
the fleet and clients can pin freshness with the ``min_seq`` token.

Writes are refused with HTTP 421 and a ``primary_url`` redirect hint;
:meth:`promote` (or ``POST /promote``) flips the node to primary duty —
the replication loop stops, the write queue gets its writer thread, a
new commit epoch is minted, and the very same session directory starts
accepting writes.  ``POST /follow`` repoints a follower at a different
upstream (how the fleet monitor re-parents survivors after a failover,
and how chains deeper than one hop are built).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.observability import get_logger
from repro.replication.follower import FollowerSession
from repro.replication.source import ReplicationError
from repro.service import protocol
from repro.service.config import ServiceConfig
from repro.service.server import DCService
from repro.service.snapshot import build_snapshot

logger = get_logger(__name__)

#: Backoff after a transient source failure (primary down/restarting).
_SOURCE_RETRY_S = 0.2


class FollowerService(DCService):
    """Serve reads from a replica; tail the primary; refuse writes."""

    role = "follower"

    def __init__(
        self,
        follower: FollowerSession,
        config: Optional[ServiceConfig] = None,
        primary_url: Optional[str] = None,
    ):
        self.follower = follower
        super().__init__(follower.session, config)
        self.primary_url = primary_url or follower.primary_url
        self._replication_stop = threading.Event()
        self._replication_thread: Optional[threading.Thread] = None
        self._promote_lock = threading.Lock()
        self._repoint_lock = threading.Lock()
        self._pending_upstream: Optional[str] = None
        self.source_errors_total = 0
        self.repoints_total = 0
        follower.export_gauges()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP server and start the replication loop."""
        self._start_http()
        self._replication_thread = threading.Thread(
            target=self._replication_loop,
            name="dc-service-replication",
            daemon=True,
        )
        self._replication_thread.start()
        logger.debug(
            "follower serving on %s:%d (primary: %s)",
            self.host,
            self.port,
            self.primary_url,
        )

    def _replication_loop(self) -> None:
        from repro.service.client import ServiceError

        while not self._replication_stop.is_set():
            self._apply_pending_repoint()
            try:
                applied = self.follower.poll(
                    wait_s=self.config.follow_poll_wait_s
                )
            except (OSError, ReplicationError, ServiceError) as exc:
                # Transient by assumption: the primary is down, draining,
                # or mid-rotation.  Keep the replica serving its current
                # snapshot and keep trying — surviving primary death is
                # the point of having a follower.
                self.source_errors_total += 1
                self._metric_gauge(
                    "replication.source_errors", self.source_errors_total
                )
                self.flight.record_event(
                    "replication_source_error", error=str(exc)
                )
                self._replication_stop.wait(_SOURCE_RETRY_S)
                continue
            except Exception as exc:  # apply failed: replica is broken
                self._failure = exc
                logger.error("replication apply failed: %s", exc)
                self.flight.record_event(
                    "replication_failure", error=str(exc)
                )
                return
            if applied:
                with self._metrics_lock:
                    self.session.export_gauges()
                self._publish(build_snapshot(self.session))

    def shutdown(self) -> None:
        self._replication_stop.set()
        if (
            self._replication_thread is not None
            and self._replication_thread.is_alive()
        ):
            self._replication_thread.join(
                timeout=self.config.drain_timeout_s
            )
        super().shutdown()

    # -- write path -------------------------------------------------------

    def submit(self, op, payload, timeout=None) -> dict:
        """Refuse writes while a follower; accept them once promoted."""
        if self.role == "primary":
            return super().submit(op, payload, timeout=timeout)
        raise protocol.NotPrimaryError(self.primary_url)

    # -- failover ---------------------------------------------------------

    def promote(self, epoch: Optional[int] = None) -> bool:
        """Take over primary duty; returns False if already promoted.

        Stops the replication loop, detaches the follower session (its
        directory is already a complete primary directory), mints a new
        commit epoch (``epoch`` to install the fleet-chosen value), and
        starts the writer thread — from here on this node is
        indistinguishable from a service that recovered the directory
        itself.  The epoch bump *is* the fence against the old primary:
        every frame it keeps writing carries a dead epoch and is
        rejected fleet-wide (docs/fleet.md).
        """
        with self._promote_lock:
            if self.role == "primary":
                return False
            self._replication_stop.set()
            if (
                self._replication_thread is not None
                and self._replication_thread.is_alive()
                and threading.current_thread() is not self._replication_thread
            ):
                self._replication_thread.join(
                    timeout=self.config.drain_timeout_s
                )
            self.follower.promote(epoch=epoch)
            self.role = "primary"
            self.started_at = time.time()
            self._metric_gauge("replication.lag_seq", 0)
            self._metric_gauge("replication.lag_seconds", 0.0)
            self._metric_gauge("fleet.epoch", self.session.epoch)
            self._start_writer()
            logger.debug(
                "follower promoted to primary at seq %d (epoch %d)",
                self.session.last_applied_seq,
                self.session.epoch,
            )
            return True

    def promote_payload(self, epoch: Optional[int] = None) -> dict:
        promoted = self.promote(epoch=epoch)
        return {
            "role": self.role,
            "promoted": promoted,
            "seq": self.session.last_applied_seq,
            "epoch": self.session.epoch,
        }

    # -- repointing (follower-of-anything) --------------------------------

    def repoint(self, url: str) -> None:
        """Ask the replication loop to tail a different upstream.

        Applied between polls (the loop owns the source object); the
        fleet monitor uses this to re-parent surviving followers onto a
        freshly promoted primary, and operators use it to build chains
        (a follower tailing another follower's ``/replication/frames``).
        """
        with self._repoint_lock:
            self._pending_upstream = url

    def _apply_pending_repoint(self) -> None:
        with self._repoint_lock:
            pending, self._pending_upstream = self._pending_upstream, None
        if pending is None or self.role != "follower":
            return
        from repro.replication.source import HTTPSource

        old = self.follower.source
        self.follower.source = HTTPSource(pending, epoch=self.session.epoch)
        self.follower.primary_url = pending
        self.primary_url = pending
        self.repoints_total += 1
        self._metric_gauge("replication.repoints", self.repoints_total)
        try:
            old.close()
        except Exception:  # pragma: no cover - defensive
            pass
        logger.debug("follower repointed to upstream %s", pending)

    def follow_payload(self, url: str) -> dict:
        if self.role != "follower":
            return super().follow_payload(url)
        self.repoint(url)
        return {"role": self.role, "upstream_url": url, "status": "repointing"}

    # -- introspection ----------------------------------------------------

    @property
    def upstream_url(self) -> Optional[str]:
        return self.primary_url if self.role == "follower" else None

    def status_payload(self) -> dict:
        payload = super().status_payload()
        if self.role == "follower":
            payload["primary_url"] = self.primary_url
            payload["replication"] = self.follower.status()
        return payload

    def topology_payload(self) -> dict:
        payload = super().topology_payload()
        if self.role == "follower":
            payload["lag_seq"] = self.follower.lag_seq
        return payload
