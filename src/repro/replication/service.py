"""Serving from a replica: the follower-mode DC service.

A :class:`FollowerService` is a :class:`~repro.service.server.DCService`
whose writer thread is replaced by a replication loop: instead of
draining a write queue, it tails the primary's WAL through a
:class:`~repro.replication.follower.FollowerSession` and publishes a
fresh immutable snapshot after every applied frame batch.  Reads
(``GET /dcs``, ``/rank``, ``/check``, ``/verify``) are served locally
from those snapshots exactly as on the primary — same endpoints, same
payloads, same seq stamps — so a load balancer can spread reads across
the fleet and clients can pin freshness with the ``min_seq`` token.

Writes are refused with HTTP 421 and a ``primary_url`` redirect hint;
:meth:`promote` (or ``POST /promote``) flips the node to primary duty —
the replication loop stops, the write queue gets its writer thread, and
the very same session directory starts accepting writes.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.observability import get_logger
from repro.replication.follower import FollowerSession
from repro.replication.source import ReplicationError
from repro.service import protocol
from repro.service.config import ServiceConfig
from repro.service.server import DCService
from repro.service.snapshot import build_snapshot

logger = get_logger(__name__)

#: Backoff after a transient source failure (primary down/restarting).
_SOURCE_RETRY_S = 0.2


class FollowerService(DCService):
    """Serve reads from a replica; tail the primary; refuse writes."""

    role = "follower"

    def __init__(
        self,
        follower: FollowerSession,
        config: Optional[ServiceConfig] = None,
        primary_url: Optional[str] = None,
    ):
        self.follower = follower
        super().__init__(follower.session, config)
        self.primary_url = primary_url or follower.primary_url
        self._replication_stop = threading.Event()
        self._replication_thread: Optional[threading.Thread] = None
        self._promote_lock = threading.Lock()
        self.source_errors_total = 0
        follower.export_gauges()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP server and start the replication loop."""
        self._start_http()
        self._replication_thread = threading.Thread(
            target=self._replication_loop,
            name="dc-service-replication",
            daemon=True,
        )
        self._replication_thread.start()
        logger.debug(
            "follower serving on %s:%d (primary: %s)",
            self.host,
            self.port,
            self.primary_url,
        )

    def _replication_loop(self) -> None:
        while not self._replication_stop.is_set():
            try:
                applied = self.follower.poll(
                    wait_s=self.config.follow_poll_wait_s
                )
            except (OSError, ReplicationError) as exc:
                # Transient by assumption: the primary is down, draining,
                # or mid-rotation.  Keep the replica serving its current
                # snapshot and keep trying — surviving primary death is
                # the point of having a follower.
                self.source_errors_total += 1
                self._metric_gauge(
                    "replication.source_errors", self.source_errors_total
                )
                self.flight.record_event(
                    "replication_source_error", error=str(exc)
                )
                self._replication_stop.wait(_SOURCE_RETRY_S)
                continue
            except Exception as exc:  # apply failed: replica is broken
                self._failure = exc
                logger.error("replication apply failed: %s", exc)
                self.flight.record_event(
                    "replication_failure", error=str(exc)
                )
                return
            if applied:
                with self._metrics_lock:
                    self.session.export_gauges()
                self._publish(build_snapshot(self.session))

    def shutdown(self) -> None:
        self._replication_stop.set()
        if (
            self._replication_thread is not None
            and self._replication_thread.is_alive()
        ):
            self._replication_thread.join(
                timeout=self.config.drain_timeout_s
            )
        super().shutdown()

    # -- write path -------------------------------------------------------

    def submit(self, op, payload, timeout=None) -> dict:
        """Refuse writes while a follower; accept them once promoted."""
        if self.role == "primary":
            return super().submit(op, payload, timeout=timeout)
        raise protocol.NotPrimaryError(self.primary_url)

    # -- failover ---------------------------------------------------------

    def promote(self) -> bool:
        """Take over primary duty; returns False if already promoted.

        Stops the replication loop, detaches the follower session (its
        directory is already a complete primary directory), and starts
        the writer thread — from here on this node is indistinguishable
        from a service that recovered the directory itself.  Fencing the
        old primary is the operator's job; this layer assumes it stays
        dead.
        """
        with self._promote_lock:
            if self.role == "primary":
                return False
            self._replication_stop.set()
            if (
                self._replication_thread is not None
                and self._replication_thread.is_alive()
                and threading.current_thread() is not self._replication_thread
            ):
                self._replication_thread.join(
                    timeout=self.config.drain_timeout_s
                )
            self.follower.promote()
            self.role = "primary"
            self.started_at = time.time()
            self._metric_gauge("replication.lag_seq", 0)
            self._metric_gauge("replication.lag_seconds", 0.0)
            self._start_writer()
            logger.debug(
                "follower promoted to primary at seq %d",
                self.session.last_applied_seq,
            )
            return True

    def promote_payload(self) -> dict:
        promoted = self.promote()
        return {
            "role": self.role,
            "promoted": promoted,
            "seq": self.session.last_applied_seq,
        }

    # -- introspection ----------------------------------------------------

    def status_payload(self) -> dict:
        payload = super().status_payload()
        if self.role == "follower":
            payload["primary_url"] = self.primary_url
            payload["replication"] = self.follower.status()
        return payload
