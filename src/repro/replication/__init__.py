"""Replication: a serving fleet maintained by WAL shipping.

The durability layer's framed, seq-stamped WAL doubles as a replication
log: a primary streams the exact frames it fsyncs, followers append
them verbatim and replay them through the recovery apply path, and every
replica publishes the same immutable seq-stamped snapshots the serving
layer already reads from.  One primary takes writes; any number of
followers serve reads and stand by for promotion (docs/replication.md).

    from repro.replication import FollowerSession, FollowerService
    from repro.replication.source import DirectorySource, HTTPSource

    follower = FollowerSession.bootstrap(
        "replica-dir", HTTPSource("http://primary:8334")
    )
    service = FollowerService(follower, primary_url="http://primary:8334")
    service.start()                  # serves /dcs, /check, ... locally
    ...
    service.promote()                # failover: start accepting writes
"""

from repro.replication.follower import FollowerSession
from repro.replication.service import FollowerService
from repro.replication.source import (
    DirectorySource,
    Frame,
    FrameBatch,
    HTTPSource,
    ReplicationError,
    ReplicationFeed,
)

__all__ = [
    "DirectorySource",
    "FollowerService",
    "FollowerSession",
    "Frame",
    "FrameBatch",
    "HTTPSource",
    "ReplicationError",
    "ReplicationFeed",
]
