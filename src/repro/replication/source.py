"""Frame sources: where a follower gets the primary's WAL stream.

The replication transport is deliberately dumb — the WAL *is* the
protocol.  A primary ships the exact crc32-framed, seq-stamped records
it already fsyncs (:mod:`repro.durability.framing`); a follower verifies
each frame's checksum itself, appends the bytes verbatim to its own WAL,
and replays the record through the same apply path recovery uses.  Two
transports implement the same three-method surface:

- :class:`DirectorySource` reads a primary session directory straight
  off the filesystem — the deterministic in-process transport the
  failover matrix and the Hypothesis topology property run on (no
  sockets, no timing);
- :class:`HTTPSource` long-polls a primary service's
  ``GET /replication/frames`` / ``GET /replication/checkpoint``
  endpoints (enabled by ``--replicate-listen``).

Both hand back :class:`FrameBatch` objects.  ``snapshot_needed`` is the
catch-up signal: the frames after the follower's seq are no longer in
the primary's WAL (a checkpoint incorporated and reset them), so the
follower must install the latest checkpoint and tail from there.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, NamedTuple, Optional

from repro.durability.checkpoint import (
    load_latest_checkpoint,
    parse_checkpoint_seq,
    validate_checkpoint,
)
from repro.durability.framing import decode_envelopes
from repro.durability.session import CHECKPOINT_DIR, WAL_NAME, read_manifest
from repro.durability.wal import WALReader
from repro.observability import get_logger

logger = get_logger(__name__)

#: Small sleep between filesystem re-checks while a directory source
#: waits out ``wait_s`` for new frames.
_WAIT_POLL_S = 0.01


class ReplicationError(RuntimeError):
    """The frame stream or checkpoint fetch cannot be trusted/continued."""


class Frame(NamedTuple):
    """One replicable WAL record: seq, the exact frame bytes, the record."""

    seq: int
    raw: bytes
    record: dict
    #: Commit epoch stamped in the frame envelope (None for frames from
    #: a pre-epoch log — legacy streams still replicate).
    epoch: Optional[int] = None


class FrameBatch(NamedTuple):
    """One poll's worth of replication progress.

    :param frames: new frames with ``seq > after_seq``, seq-ascending.
    :param last_seq: newest seq durable on the primary (checkpointed or
        in its WAL) — the follower's catch-up target, hence its lag.
    :param checkpoint_seq: seq of the primary's newest checkpoint.
    :param snapshot_needed: the requested tail predates the primary's
        WAL; the follower must install the latest checkpoint first.
    :param epoch: the source node's current commit epoch (None when the
        source predates epochs) — the fencing metadata followers check
        every poll.
    :param source_seq: the source's own newest durable seq, *not*
        clamped to ``after_seq`` like ``last_seq`` is.  A requester
        whose seq exceeds this while the source's epoch exceeds its own
        holds a diverged tail and must rebase.
    """

    frames: List[Frame]
    last_seq: int
    checkpoint_seq: int
    snapshot_needed: bool
    epoch: Optional[int] = None
    source_seq: Optional[int] = None


class ReplicationFeed:
    """Frame cache over one session directory's WAL (the primary side).

    Tails the WAL with a :class:`~repro.durability.wal.WALReader` and
    retains every frame currently in it, seq-ascending.  A WAL reset
    (checkpoint) or torn-tail truncation triggers a rescan, after which
    the retained window again mirrors the file exactly; duplicates
    re-read across a rescan are dropped by seq.  One feed serves any
    number of followers at arbitrary ``after_seq`` positions — it is the
    backing store of both :class:`DirectorySource` and the primary's
    ``/replication/frames`` endpoint (which serializes access with a
    lock; the feed itself is not thread-safe).
    """

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        self._reader = WALReader(os.path.join(self.directory, WAL_NAME))
        self._checkpoint_dir = os.path.join(self.directory, CHECKPOINT_DIR)
        self._frames: List[Frame] = []

    def refresh(self) -> None:
        """Pull newly appended frames off the WAL into the cache."""
        tail_frames, reset = self._reader.poll()
        if reset:
            self._frames = []
        last = self._frames[-1].seq if self._frames else -1
        for tail in tail_frames:
            seq = tail.record.get("seq")
            if isinstance(seq, int) and seq > last:
                self._frames.append(
                    Frame(seq, tail.raw, tail.record, tail.epoch)
                )
                last = seq

    def checkpoint_seq(self) -> int:
        """Seq of the newest checkpoint file (0 = none)."""
        try:
            names = os.listdir(self._checkpoint_dir)
        except OSError:
            return 0
        seqs = [parse_checkpoint_seq(name) for name in names]
        return max((seq for seq in seqs if seq is not None), default=0)

    def epoch(self) -> Optional[int]:
        """The directory's current commit epoch (None pre-epoch).

        Read fresh from the manifest each call: a promotion rewrites the
        manifest, and the very next batch a follower fetches must carry
        the new epoch.
        """
        epoch = read_manifest(self.directory).get("epoch")
        return int(epoch) if isinstance(epoch, int) else None

    def fetch(
        self, after_seq: int, max_frames: Optional[int] = None
    ) -> FrameBatch:
        """Frames with ``seq > after_seq``, or the catch-up signal."""
        self.refresh()
        checkpoint_seq = self.checkpoint_seq()
        epoch = self.epoch()
        newest = self._frames[-1].seq if self._frames else 0
        source_seq = max(checkpoint_seq, newest, 0)
        last_seq = max(source_seq, after_seq)
        available = [f for f in self._frames if f.seq > after_seq]
        # A gap between the follower's position and the oldest retained
        # frame means those records were incorporated into a checkpoint
        # and reset away — frame-tailing cannot continue from here.
        gapped = bool(available) and available[0].seq != after_seq + 1
        if gapped or (not available and checkpoint_seq > after_seq):
            return FrameBatch(
                [], last_seq, checkpoint_seq, True, epoch, source_seq
            )
        if max_frames is not None:
            available = available[:max_frames]
        return FrameBatch(
            available, last_seq, checkpoint_seq, False, epoch, source_seq
        )

    def close(self) -> None:
        self._reader.close()


class DirectorySource:
    """Fetch frames straight from a primary session directory.

    The in-process transport: deterministic (no sockets, no server
    threads), safe against a concurrently writing primary (reads never
    mutate the directory), and equally happy reading a *dead* primary's
    directory — which is exactly what failover does.
    """

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        self._feed = ReplicationFeed(self.directory)

    def fetch_frames(
        self,
        after_seq: int,
        wait_s: float = 0.0,
        max_frames: Optional[int] = None,
    ) -> FrameBatch:
        deadline = time.monotonic() + wait_s
        while True:
            batch = self._feed.fetch(after_seq, max_frames)
            if (
                batch.frames
                or batch.snapshot_needed
                or time.monotonic() >= deadline
            ):
                return batch
            time.sleep(_WAIT_POLL_S)

    def fetch_checkpoint(self):
        """``(wal_seq, state_payload)`` of the primary's newest checkpoint."""
        loaded = load_latest_checkpoint(
            os.path.join(self.directory, CHECKPOINT_DIR)
        )
        if loaded is None:
            raise ReplicationError(
                f"no valid checkpoint to replicate in {self.directory}"
            )
        wal_seq, state_payload, _path = loaded
        return wal_seq, state_payload

    def close(self) -> None:
        self._feed.close()

    def __repr__(self) -> str:
        return f"DirectorySource({self.directory!r})"


class HTTPSource:
    """Fetch frames from a primary service over long-polled HTTP.

    Wire format is hex-encoded frame *bytes*, not re-serialized records:
    the follower decodes each frame itself, so the crc32 that protected
    the record on the primary's disk also protects it across the wire.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        epoch: Optional[int] = None,
    ):
        from repro.service.client import ServiceClient

        self.base_url = base_url
        #: The requester's own epoch, advertised on every poll so an
        #: upstream that has seen a newer epoch can fence itself instead
        #: of feeding a stale chain.
        self.epoch = epoch
        self._client = ServiceClient(base_url=base_url, timeout=timeout)

    def fetch_frames(
        self,
        after_seq: int,
        wait_s: float = 0.0,
        max_frames: Optional[int] = None,
    ) -> FrameBatch:
        payload = self._client.replication_frames(
            after_seq=after_seq,
            wait_s=wait_s,
            max_frames=max_frames,
            epoch=self.epoch,
        )
        frames = []
        for entry in payload.get("frames", []):
            raw = bytes.fromhex(entry["raw"])
            envelopes, good_size = decode_envelopes(raw)
            if len(envelopes) != 1 or good_size != len(raw):
                raise ReplicationError(
                    f"frame for seq {entry.get('seq')!r} failed checksum "
                    f"validation in transit"
                )
            record = json.loads(envelopes[0].payload)
            if record.get("seq") != entry.get("seq"):
                raise ReplicationError(
                    f"frame seq mismatch: envelope says {entry.get('seq')!r},"
                    f" record says {record.get('seq')!r}"
                )
            frames.append(Frame(record["seq"], raw, record, envelopes[0].epoch))
        batch_epoch = payload.get("epoch")
        source_seq = payload.get("source_seq")
        return FrameBatch(
            frames,
            int(payload.get("last_seq", after_seq)),
            int(payload.get("checkpoint_seq", 0)),
            bool(payload.get("snapshot_needed", False)),
            int(batch_epoch) if isinstance(batch_epoch, int) else None,
            int(source_seq) if isinstance(source_seq, int) else None,
        )

    def fetch_checkpoint(self):
        payload = self._client.replication_checkpoint()
        document = payload.get("document")
        if not isinstance(document, dict):
            raise ReplicationError("primary returned no checkpoint document")
        state_payload = validate_checkpoint(document)
        return document["wal_seq"], state_payload

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"HTTPSource({self.base_url!r})"
