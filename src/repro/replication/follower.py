"""The follower session: a replica maintained by WAL tailing.

A :class:`FollowerSession` owns a *complete, ordinary* session
directory — manifest, WAL, rotated checkpoints — identical in format to
the primary's, built by replaying the primary's frames through the same
apply path recovery uses.  That identity is the whole failover story:

- **restart** is just :meth:`~repro.durability.session.DurableSession.recover`
  on the follower's own directory (replays its own WAL tail, then keeps
  tailing the primary from where it left off);
- **promotion** is a no-op on disk — the follower stops tailing and its
  directory *is* a primary session directory, byte-compatible with
  every existing tool (``repro-dc serve --dir``, doctor, the CLI).

Catch-up protocol (docs/replication.md walks through it):

1. bootstrap: fetch the primary's latest checkpoint, install it as the
   follower's first checkpoint, recover from the own directory;
2. tail: poll frames after ``last_applied_seq``; append each frame's
   bytes verbatim to the own WAL (log-before-apply), then apply the
   record; duplicates (``seq`` already applied) are skipped — replaying
   a frame twice is idempotent by construction;
3. on ``snapshot_needed`` (the primary checkpointed past us): install
   the latest checkpoint wholesale and resume tailing from its seq.

The follower checkpoints on its *own* cadence — replication never ships
checkpoints in steady state, only the frame stream.

Epoch fencing (docs/fleet.md): every frame and every batch carries the
writer's commit epoch.  A follower rejects frames from an epoch below
its own — the stream of a deposed primary is dead history, never to be
applied — and adopts higher epochs as it sees them, which is how
promotion knowledge spreads down a replication chain.  A fenced node
rejoining as a follower (the zombie-primary path) rebases onto the new
timeline by force-installing the upstream checkpoint, discarding its
unreplicated tail.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.durability.atomic import atomic_write_json
from repro.durability.checkpoint import write_checkpoint
from repro.durability.session import (
    CHECKPOINT_DIR,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_RETAIN,
    INITIAL_EPOCH,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    DurableSession,
)
from repro.observability import get_logger
from repro.observability.probe import get_probe
from repro.replication.source import FrameBatch, ReplicationError

logger = get_logger(__name__)


class FollowerSession:
    """One replica: a durable session fed by a frame source.

    Use :meth:`bootstrap` — it both creates a fresh follower directory
    and resumes an existing one (mirroring ``create``/``recover`` being
    one decision on the primary side).
    """

    def __init__(self, session: DurableSession, source, primary_url=None):
        self.session = session
        self.source = source
        #: Where writes should be redirected (None for DirectorySource).
        self.primary_url = primary_url
        #: Newest seq known durable on the primary (from the last poll).
        self.primary_last_seq = session.last_applied_seq
        self._caught_up_at = time.monotonic()
        self._detached = False
        self.frames_applied_total = 0
        self.frames_duplicate_total = 0
        self.catchups_total = 0
        self.polls_total = 0
        #: Frames rejected because they carried a fenced (lower) epoch.
        self.frames_fenced_total = 0
        #: Diverged local records discarded rebasing onto a new timeline.
        self.tail_discarded_total = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        directory,
        source,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        retain: int = DEFAULT_RETAIN,
        primary_url: Optional[str] = None,
    ) -> "FollowerSession":
        """Create-or-resume a follower directory around a frame source.

        A fresh directory is seeded from the primary's latest checkpoint
        (written locally *before* the manifest, so the manifest stays the
        commit point exactly as in ``DurableSession.create``); an
        existing one — including one whose last run died mid-catch-up —
        is simply recovered, own WAL tail replayed, and tailing resumes
        from wherever it got to.

        A recovered directory that was *fenced* — a deposed primary
        rejoining as a follower — is rebased first: the upstream's
        checkpoint is force-installed, discarding whatever unreplicated
        tail the zombie wrote on its dead epoch.
        """
        directory = os.fspath(directory)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            session = DurableSession.recover(directory)
            follower = cls(session, source, primary_url=primary_url)
            if session.is_fenced:
                follower._rebase_to_source()
            return follower
        wal_seq, state_payload = source.fetch_checkpoint()
        checkpoint_dir = os.path.join(directory, CHECKPOINT_DIR)
        os.makedirs(checkpoint_dir, exist_ok=True)
        write_checkpoint(checkpoint_dir, wal_seq, state_payload)
        atomic_write_json(
            os.path.join(directory, MANIFEST_NAME),
            {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "checkpoint_every": checkpoint_every,
                "retain": retain,
                "epoch": INITIAL_EPOCH,
            },
            fault_prefix="checkpoint",
        )
        session = DurableSession.recover(directory)
        logger.debug(
            "bootstrapped follower in %s from checkpoint seq %d",
            directory,
            wal_seq,
        )
        return cls(session, source, primary_url=primary_url)

    # -- tailing ---------------------------------------------------------

    @property
    def last_applied_seq(self) -> int:
        return self.session.last_applied_seq

    @property
    def lag_seq(self) -> int:
        """How many committed primary records this replica has not applied."""
        return max(0, self.primary_last_seq - self.last_applied_seq)

    @property
    def lag_seconds(self) -> float:
        """Seconds since this replica was last fully caught up (0 = now)."""
        if self.lag_seq == 0:
            return 0.0
        return time.monotonic() - self._caught_up_at

    def poll(self, wait_s: float = 0.0, max_frames: Optional[int] = None) -> int:
        """Fetch and apply one batch of frames; returns records applied.

        Raises :class:`~repro.replication.source.ReplicationError` on a
        frame from a fenced (lower) epoch — a deposed primary's stream
        must never be applied, and the caller should stop tailing this
        source.  Frames from a *higher* epoch adopt that epoch first;
        the batch-level epoch is adopted only after every frame applied,
        because a freshly promoted primary's WAL legitimately still
        holds frames from the previous epoch.
        """
        if self._detached:
            raise ReplicationError("follower is detached (promoted or closed)")
        if hasattr(self.source, "epoch"):
            # Advertise our epoch on every poll — the upstream fences
            # itself if we prove a newer epoch exists (see
            # replication_frames_payload).
            self.source.epoch = self.session.epoch
        batch = self.source.fetch_frames(
            self.last_applied_seq, wait_s=wait_s, max_frames=max_frames
        )
        if (
            batch.epoch is not None
            and batch.epoch > self.session.epoch
            and batch.source_seq is not None
            and self.last_applied_seq > batch.source_seq
        ):
            # The upstream was promoted onto a shorter history than
            # ours: everything we hold past it is a diverged tail on
            # a dead timeline.  Rebase before applying anything.
            self._rebase_to_source()
            batch = self.source.fetch_frames(
                self.last_applied_seq, wait_s=0.0, max_frames=max_frames
            )
        if batch.epoch is not None and batch.epoch < self.session.epoch:
            # The whole upstream timeline is dead, not just one frame —
            # reject before the snapshot path below could adopt a
            # checkpoint full of unfenced zombie history.
            self._count_fenced_frame(None)
            raise ReplicationError(
                f"fenced upstream: source is at epoch {batch.epoch}, "
                f"below local epoch {self.session.epoch}"
            )
        if batch.snapshot_needed:
            self._install_latest_checkpoint()
            batch = self.source.fetch_frames(
                self.last_applied_seq, wait_s=0.0, max_frames=max_frames
            )
            if batch.snapshot_needed:
                # The primary checkpointed again between our two fetches;
                # the next poll restarts the catch-up from the newer one.
                batch = FrameBatch([], batch.last_seq, batch.checkpoint_seq, False)
        applied = 0
        for frame in batch.frames:
            if frame.epoch is not None:
                if frame.epoch < self.session.epoch:
                    self._count_fenced_frame(frame)
                    raise ReplicationError(
                        f"fenced frame: seq {frame.seq} carries epoch "
                        f"{frame.epoch}, below local epoch "
                        f"{self.session.epoch}"
                    )
                if frame.epoch > self.session.epoch:
                    self.session.adopt_epoch(frame.epoch)
            if frame.seq <= self.last_applied_seq:
                self.frames_duplicate_total += 1
                continue
            self.session.apply_replicated(frame.record, frame.raw)
            applied += 1
        if batch.epoch is not None and (
            not batch.frames or batch.frames[-1].seq >= batch.last_seq
        ):
            # Adopt the source's epoch only once caught up to this
            # batch's tip: a truncated (paginated) batch may still have
            # legitimate pre-promotion frames behind it, which adopting
            # early would wrongly fence on the next poll.
            self.session.adopt_epoch(batch.epoch)
        self.frames_applied_total += applied
        self.polls_total += 1
        self.primary_last_seq = max(
            self.primary_last_seq, batch.last_seq, self.last_applied_seq
        )
        if self.lag_seq == 0:
            self._caught_up_at = time.monotonic()
        self.export_gauges()
        return applied

    def _count_fenced_frame(self, frame) -> None:
        self.frames_fenced_total += 1
        probe = get_probe()
        if probe is not None:
            probe.inc("fleet.frames_fenced")
        self.export_gauges()
        logger.warning(
            "follower %s rejected fenced frame seq %s (epoch %s < %d)",
            self.session.directory,
            frame.seq if frame is not None else "(batch)",
            frame.epoch if frame is not None else "(source)",
            self.session.epoch,
        )

    def _install_latest_checkpoint(self) -> None:
        wal_seq, state_payload = self.source.fetch_checkpoint()
        if wal_seq <= self.last_applied_seq:
            # Raced a concurrent checkpoint rotation; the frames we need
            # are (back) in the WAL, so plain tailing can continue.
            return
        self.session.install_checkpoint(wal_seq, state_payload)
        self.catchups_total += 1
        logger.debug(
            "follower %s caught up from checkpoint seq %d",
            self.session.directory,
            wal_seq,
        )

    def _rebase_to_source(self) -> None:
        """Force-install the upstream checkpoint, discarding our tail.

        The rejoin-as-follower path for a deposed primary: local records
        past the upstream's history were acknowledged only on a fenced
        epoch and are discarded; the count lands in
        ``tail_discarded_total`` / the ``fleet.tail_discarded`` counter.
        """
        wal_seq, state_payload = self.source.fetch_checkpoint()
        discarded = self.session.install_checkpoint(
            wal_seq, state_payload, force=True
        )
        # The discarded tail also inflated our view of the primary's
        # durable seq; clamp it back to the adopted timeline.
        self.primary_last_seq = min(self.primary_last_seq, wal_seq)
        self.tail_discarded_total += discarded
        self.catchups_total += 1
        if discarded:
            probe = get_probe()
            if probe is not None:
                probe.inc("fleet.tail_discarded", discarded)
        logger.warning(
            "follower %s rebased onto checkpoint seq %d, discarding %d "
            "diverged records",
            self.session.directory,
            wal_seq,
            discarded,
        )

    # -- gauges / status -------------------------------------------------

    def export_gauges(self) -> None:
        """Publish ``replication.*`` gauges next to the session's own."""
        instrumentation = self.session.discoverer.instrumentation
        instrumentation.set_gauge("replication.lag_seq", self.lag_seq)
        instrumentation.set_gauge(
            "replication.lag_seconds", round(self.lag_seconds, 6)
        )
        instrumentation.set_gauge(
            "replication.frames_applied", self.frames_applied_total
        )
        instrumentation.set_gauge(
            "replication.frames_duplicate", self.frames_duplicate_total
        )
        instrumentation.set_gauge(
            "replication.catchups", self.catchups_total
        )
        instrumentation.set_gauge("replication.polls", self.polls_total)
        instrumentation.set_gauge(
            "fleet.frames_fenced", self.frames_fenced_total
        )
        instrumentation.set_gauge(
            "fleet.tail_discarded", self.tail_discarded_total
        )
        instrumentation.set_gauge("fleet.epoch", self.session.epoch)

    def status(self) -> dict:
        """Machine-readable replication status (joins session status)."""
        return {
            "last_applied_seq": self.last_applied_seq,
            "primary_last_seq": self.primary_last_seq,
            "lag_seq": self.lag_seq,
            "lag_seconds": round(self.lag_seconds, 6),
            "frames_applied": self.frames_applied_total,
            "frames_duplicate": self.frames_duplicate_total,
            "catchups": self.catchups_total,
            "polls": self.polls_total,
            "frames_fenced": self.frames_fenced_total,
            "tail_discarded": self.tail_discarded_total,
            "epoch": self.session.epoch,
            "primary_url": self.primary_url,
        }

    # -- failover --------------------------------------------------------

    def promote(self, epoch: Optional[int] = None) -> DurableSession:
        """Stop tailing and hand over the session for primary duty.

        Nothing on disk changes beyond the manifest: the follower
        directory already is a valid primary session directory, and the
        promotion mints a new commit epoch there (``epoch`` to install a
        fleet-chosen value, default one past the current).  The bumped
        epoch is the split-brain arbiter: frames the deposed primary
        keeps writing carry its old epoch and are fenced off by every
        follower and frames endpoint that has seen the new one (see
        docs/fleet.md for the full guarantee and its limits).
        """
        self._detached = True
        self.source.close()
        if epoch is not None:
            self.session.bump_epoch(epoch)
        else:
            self.session.bump_epoch()
        logger.debug(
            "promoted follower %s at seq %d (epoch %d)",
            self.session.directory,
            self.last_applied_seq,
            self.session.epoch,
        )
        return self.session

    def close(self) -> None:
        self._detached = True
        self.source.close()
        self.session.close()

    def __enter__(self) -> "FollowerSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FollowerSession({self.session.directory!r}, "
            f"seq={self.last_applied_seq}, lag={self.lag_seq})"
        )
