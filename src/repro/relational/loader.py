"""CSV ingestion with type inference and explicit null policies.

DC semantics over nulls are undefined in the paper (all evaluated datasets
are complete), so :class:`repro.relational.relation.Relation` rejects
``None``.  The loader therefore forces callers to pick a policy:

- ``"reject"`` (default) — raise on the first null;
- ``"drop"`` — skip rows containing nulls;
- ``"fill"`` — replace nulls with a type-dependent sentinel (empty string,
  or the column minimum minus one for numerics).
"""

from __future__ import annotations

import csv
from typing import Iterable, Optional, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema

_NULL_TOKENS = {"", "null", "NULL", "NaN", "nan", "None", "?"}


def _parse_cell(text: str):
    """Parse a CSV cell into int, float, str, or None for null tokens."""
    if text in _NULL_TOKENS:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def infer_schema(header: Sequence[str], rows: Iterable[Sequence]) -> Schema:
    """Infer a schema from parsed rows.

    A column is INTEGER if every non-null value is an int, FLOAT if every
    non-null value is int-or-float with at least one float, and STRING
    otherwise (including all-null columns).
    """
    saw_int = [False] * len(header)
    saw_float = [False] * len(header)
    saw_other = [False] * len(header)
    for row in rows:
        for position, value in enumerate(row):
            if value is None:
                continue
            if isinstance(value, bool):
                saw_other[position] = True
            elif isinstance(value, int):
                saw_int[position] = True
            elif isinstance(value, float):
                saw_float[position] = True
            else:
                saw_other[position] = True
    columns = []
    for position, name in enumerate(header):
        if saw_other[position] or not (saw_int[position] or saw_float[position]):
            ctype = ColumnType.STRING
        elif saw_float[position]:
            ctype = ColumnType.FLOAT
        else:
            ctype = ColumnType.INTEGER
        columns.append(Column(name, ctype))
    return Schema(columns)


def _coerce_row(row: Sequence, schema: Schema) -> tuple:
    """Coerce parsed values to the schema's types (e.g. int cell in a
    STRING column becomes its string form, int in FLOAT becomes float)."""
    coerced = []
    for value, column in zip(row, schema):
        if value is None:
            coerced.append(None)
        elif column.ctype is ColumnType.STRING:
            coerced.append(value if isinstance(value, str) else str(value))
        elif column.ctype is ColumnType.FLOAT:
            coerced.append(float(value))
        else:
            coerced.append(value)
    return tuple(coerced)


def _fill_value(position: int, schema: Schema, rows: list):
    column = schema[position]
    if column.ctype is ColumnType.STRING:
        return ""
    present = [row[position] for row in rows if row[position] is not None]
    lowest = min(present) if present else 0
    return lowest - 1 if column.ctype is ColumnType.INTEGER else float(lowest) - 1.0


def _apply_null_policy(rows: list, schema: Schema, null_policy: str) -> list:
    if null_policy == "reject":
        for row_number, row in enumerate(rows):
            if any(value is None for value in row):
                raise ValueError(
                    f"null value in data row {row_number}; pass "
                    "null_policy='drop' or 'fill' to handle nulls"
                )
        return rows
    if null_policy == "drop":
        return [row for row in rows if all(value is not None for value in row)]
    if null_policy == "fill":
        fills = {}
        filled = []
        for row in rows:
            if any(value is None for value in row):
                row = tuple(
                    fills.setdefault(position, _fill_value(position, schema, rows))
                    if value is None
                    else value
                    for position, value in enumerate(row)
                )
            filled.append(row)
        return filled
    raise ValueError(f"unknown null policy {null_policy!r}")


def relation_from_rows(
    header: Sequence[str],
    rows: Iterable[Sequence],
    schema: Optional[Schema] = None,
    null_policy: str = "reject",
) -> Relation:
    """Build a relation from in-memory rows, inferring the schema if needed."""
    materialized = [tuple(row) for row in rows]
    if schema is None:
        schema = infer_schema(header, materialized)
    coerced = [_coerce_row(row, schema) for row in materialized]
    coerced = _apply_null_policy(coerced, schema, null_policy)
    relation = Relation(schema)
    relation.insert(coerced)
    return relation


def load_csv(
    path,
    schema: Optional[Schema] = None,
    null_policy: str = "reject",
    max_rows: Optional[int] = None,
    delimiter: str = ",",
) -> Relation:
    """Load a CSV file (with header row) into a :class:`Relation`.

    :param schema: use this schema instead of inferring one.
    :param null_policy: ``"reject"``, ``"drop"``, or ``"fill"``.
    :param max_rows: stop after this many data rows.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        rows = []
        for row in reader:
            if max_rows is not None and len(rows) >= max_rows:
                break
            rows.append(tuple(_parse_cell(cell) for cell in row))
    return relation_from_rows(header, rows, schema=schema, null_policy=null_policy)
