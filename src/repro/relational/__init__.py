"""In-memory relational substrate.

The DC algorithms need a minimal relational engine: typed schemas, stable
row ids that survive deletes (evidence contexts and indexes are keyed by
rid), batch inserts/deletes, and CSV ingestion with type inference.  The
paper additionally sorts tables on their numerical columns before building
indexes (Section V-D); :func:`repro.relational.sorting.sort_by_numeric_columns`
implements that preprocessing.
"""

from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.relation import Relation
from repro.relational.loader import infer_schema, load_csv, relation_from_rows
from repro.relational.sorting import sort_by_numeric_columns
from repro.relational.profiling import (
    ColumnProfile,
    GroupProfile,
    RelationProfile,
    profile_relation,
)

__all__ = [
    "ColumnProfile",
    "GroupProfile",
    "RelationProfile",
    "profile_relation",
    "Column",
    "ColumnType",
    "Schema",
    "Relation",
    "infer_schema",
    "load_csv",
    "relation_from_rows",
    "sort_by_numeric_columns",
]
