"""Relation profiling: evidence-entropy estimation for DC workloads.

The feasibility of DC discovery on a table is governed less by its row
count than by the *redundancy of its evidence set* (Section V-A): each
predicate group contributes one comparison outcome per tuple pair, so the
number of distinct evidences grows roughly like the product of per-group
outcome diversities — every independent "balanced" column multiplies it.

:func:`profile_relation` measures, per column and per prospective
predicate group, the probability of each pair outcome (equal / greater /
smaller), their Shannon entropies, and an *upper-bound estimate* of the
distinct-evidence count ``≈ min(2^{Σ H(group)}, n(n−1))`` (upper bound
because inter-column correlations — FDs, monotone derivations — only
reduce it).  The synthetic dataset generators in
:mod:`repro.workloads.datasets` were tuned with exactly this lens; the
profile lets users run the same sanity check on their own tables before a
discovery run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.relational.relation import Relation


@dataclass(frozen=True)
class ColumnProfile:
    """Pairwise-outcome statistics of one column."""

    name: str
    type_name: str
    n_distinct: int
    top_frequency: float  # share of the most common value
    p_equal: float  # probability a random ordered pair has equal values
    entropy_bits: float  # Shannon entropy of the pair outcome

    @property
    def is_key_like(self) -> bool:
        return self.p_equal < 1e-9


@dataclass(frozen=True)
class GroupProfile:
    """Pairwise-outcome statistics of one prospective predicate group."""

    lhs: str
    rhs: str
    p_equal: float
    p_greater: float
    p_smaller: float
    entropy_bits: float


@dataclass(frozen=True)
class RelationProfile:
    """Evidence-entropy profile of a relation."""

    n_rows: int
    columns: Tuple[ColumnProfile, ...]
    groups: Tuple[GroupProfile, ...]
    total_entropy_bits: float
    estimated_distinct_evidence: int
    max_distinct_evidence: int
    pair_count: int

    @property
    def redundancy_ratio(self) -> float:
        """Pairs per estimated distinct evidence (higher = cheaper)."""
        if self.estimated_distinct_evidence == 0:
            return float("inf")
        return self.pair_count / self.estimated_distinct_evidence

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"rows={self.n_rows}  pairs={self.pair_count}  "
            f"estimated distinct evidences ≤ {self.estimated_distinct_evidence} "
            f"(redundancy ≥ {self.redundancy_ratio:.1f} pairs/evidence)",
            "heaviest groups by entropy:",
        ]
        heavy = sorted(self.groups, key=lambda g: -g.entropy_bits)[:6]
        for group in heavy:
            lines.append(
                f"  t.{group.lhs} ? t'.{group.rhs}: "
                f"H={group.entropy_bits:.2f} bits "
                f"(eq={group.p_equal:.2f}, gt={group.p_greater:.2f}, "
                f"lt={group.p_smaller:.2f})"
            )
        return "\n".join(lines)


def _entropy(probabilities) -> float:
    return -sum(p * math.log2(p) for p in probabilities if p > 0.0)


def _value_counts(relation: Relation, position: int) -> dict:
    counts = {}
    values = relation.column_values(position)
    for rid in relation.rids():
        value = values[rid]
        counts[value] = counts.get(value, 0) + 1
    return counts


def _pair_outcomes(counts_a: dict, counts_b: dict, n_a: int, n_b: int,
                   same_column: bool = False):
    """(p_equal, p_greater, p_smaller) of a random ordered value pair.

    For a single column (``same_column``) the pair is drawn over distinct
    tuples, so the diagonal is excluded exactly; for cross-column pairs
    the with-replacement approximation is used (O(1/n) error).
    """
    if same_column:
        total = n_a * (n_a - 1)
        equal_pairs = sum(c * c - c for c in counts_a.values())
    else:
        total = n_a * n_b
        equal_pairs = sum(
            count * counts_b.get(value, 0) for value, count in counts_a.items()
        )
    if total <= 0:
        return 0.0, 0.0, 0.0
    p_equal = equal_pairs / total
    # P(a > b) via a sorted merge with a cumulative count of b-values
    # (diagonal pairs are equal, so the numerator needs no correction).
    items_b = sorted(counts_b.items())
    sorted_a = sorted(counts_a.items())
    greater_pairs = 0
    cumulative_b = 0
    index_b = 0
    for value_a, count_a in sorted_a:
        while index_b < len(items_b) and items_b[index_b][0] < value_a:
            cumulative_b += items_b[index_b][1]
            index_b += 1
        greater_pairs += count_a * cumulative_b
    p_greater = greater_pairs / total
    p_smaller = max(0.0, 1.0 - p_equal - p_greater)
    return p_equal, p_greater, p_smaller


def profile_relation(relation: Relation, cross_column_ratio: float = 0.3) -> RelationProfile:
    """Profile a relation's evidence entropy.

    Uses the same predicate-group structure the discovery would (single
    columns plus the cross-column pairs admitted by the shared-value
    rule), treating groups as independent — hence an upper bound.
    """
    n = len(relation)
    columns: List[ColumnProfile] = []
    groups: List[GroupProfile] = []
    counts_by_position = {}
    for position, column in enumerate(relation.schema):
        counts = _value_counts(relation, position)
        counts_by_position[position] = counts
        distinct_total = n * (n - 1)
        p_equal = (
            sum(c * c - c for c in counts.values()) / distinct_total
            if distinct_total
            else 0.0
        )
        if column.is_numeric:
            p_eq, p_gt, p_lt = _pair_outcomes(counts, counts, n, n,
                                              same_column=True)
            entropy = _entropy((p_eq, p_gt, p_lt))
            groups.append(
                GroupProfile(column.name, column.name, p_eq, p_gt, p_lt, entropy)
            )
        else:
            entropy = _entropy((p_equal, 1.0 - p_equal))
            groups.append(
                GroupProfile(
                    column.name, column.name, p_equal, 0.0, 1.0 - p_equal, entropy
                )
            )
        top = max(counts.values()) / n if counts else 0.0
        columns.append(
            ColumnProfile(
                name=column.name,
                type_name=column.ctype.value,
                n_distinct=len(counts),
                top_frequency=top,
                p_equal=p_equal,
                entropy_bits=entropy,
            )
        )

    # Cross-column groups admitted by the shared-value rule; one entry per
    # unordered pair (the two directions carry the same outcome).
    positions = list(range(len(relation.schema)))
    for i in positions:
        for j in positions[i + 1 :]:
            left, right = relation.schema[i], relation.schema[j]
            if not left.ctype.comparable_with(right.ctype):
                continue
            counts_i = counts_by_position[i]
            counts_j = counts_by_position[j]
            shared = len(counts_i.keys() & counts_j.keys())
            smaller = min(len(counts_i), len(counts_j))
            if smaller == 0 or shared / smaller < cross_column_ratio:
                continue
            if left.is_numeric and right.is_numeric:
                p_eq, p_gt, p_lt = _pair_outcomes(counts_i, counts_j, n, n)
                entropy = _entropy((p_eq, p_gt, p_lt))
            else:
                p_eq = sum(
                    c * counts_j.get(v, 0) for v, c in counts_i.items()
                ) / (n * n)
                p_gt, p_lt = 0.0, 1.0 - p_eq
                entropy = _entropy((p_eq, 1.0 - p_eq))
            groups.append(
                GroupProfile(left.name, right.name, p_eq, p_gt, p_lt, entropy)
            )

    total_entropy = sum(group.entropy_bits for group in groups)
    pair_count = n * (n - 1)
    estimated = int(min(2.0 ** min(total_entropy, 60.0), float(pair_count)))
    # Hard upper bound: the product of each group's *realized* outcome
    # counts (independence can only overcount; correlations reduce it).
    log_max = 0.0
    for group in groups:
        realized = sum(
            1 for p in (group.p_equal, group.p_greater, group.p_smaller) if p > 0
        )
        log_max += math.log2(max(realized, 1))
    max_distinct = int(min(2.0 ** min(log_max, 60.0), float(max(pair_count, 0))))
    return RelationProfile(
        n_rows=n,
        columns=tuple(columns),
        groups=tuple(groups),
        total_entropy_bits=total_entropy,
        estimated_distinct_evidence=estimated,
        max_distinct_evidence=max_distinct,
        pair_count=pair_count,
    )
