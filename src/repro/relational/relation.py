"""Columnar relation with stable row ids.

Row ids (*rids*) are dense integers assigned at insertion time and never
reused: evidence contexts, column indexes, and the per-tuple evidence index
all key on rids, so a delete must not shift ids.  Deleted slots keep their
storage (values of dead rows are retained — delete maintenance needs to
recompute the evidence the dying tuples produced) but are excluded from the
``alive`` bitmap, iteration, and indexes built afterwards.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.bitmaps import IntBitset
from repro.relational.schema import ColumnType, Schema

#: The single NaN object every stored NaN is canonicalized to.  CPython
#: dict lookups short-circuit on identity before trying ``==`` (which is
#: always false for NaN), so funneling all NaNs through one object gives
#: the equality indexes and the evidence pipeline a deterministic
#: "NaN = NaN" semantics; the range layer orders NaN greater than every
#: number (see :mod:`repro.evidence.indexes`).
CANONICAL_NAN = float("nan")


def canonical_value(value):
    """Replace any NaN float with the shared :data:`CANONICAL_NAN` object."""
    if isinstance(value, float) and value != value:
        return CANONICAL_NAN
    return value


class Relation:
    """An insert/delete-able relation instance."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._columns = [[] for _ in schema]
        self._alive = IntBitset()
        self._next_rid = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_sparse_rows(cls, schema: Schema, rows_by_rid: dict, next_rid: int):
        """Rebuild a relation with pre-assigned rids (state deserialization).

        ``rows_by_rid`` maps alive rids to row tuples; rids absent from the
        mapping but below ``next_rid`` become dead slots.  Dead slots hold
        type-neutral placeholders — they are never consulted: evidence of
        dead rows was subtracted before the state was saved.
        """
        relation = cls(schema)
        placeholders = tuple(
            "" if column.ctype is ColumnType.STRING
            else (0 if column.ctype is ColumnType.INTEGER else 0.0)
            for column in schema
        )
        for rid in range(next_rid):
            row = rows_by_rid.get(rid)
            alive = row is not None
            if not alive:
                row = placeholders
            for position, value in enumerate(row):
                relation._columns[position].append(canonical_value(value))
            if alive:
                relation._alive.add(rid)
        relation._next_rid = next_rid
        return relation

    # -- modification -------------------------------------------------------

    def insert(self, rows: Iterable[Sequence]) -> list:
        """Append ``rows`` and return their newly assigned rids.

        Each row must be a sequence with one value per schema column, in
        schema order.  Values are type-checked against the column type.
        """
        new_rids = []
        for row in rows:
            if len(row) != len(self.schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(self.schema)}"
                )
            for position, (value, column) in enumerate(zip(row, self.schema)):
                self._check_value(value, column.ctype, column.name)
                self._columns[position].append(canonical_value(value))
            rid = self._next_rid
            self._next_rid += 1
            self._alive.add(rid)
            new_rids.append(rid)
        return new_rids

    def delete(self, rids: Iterable[int]) -> list:
        """Mark ``rids`` dead and return them as a list.

        :raises KeyError: if any rid is not currently alive.
        """
        deleted = []
        for rid in rids:
            if rid not in self._alive:
                raise KeyError(f"rid {rid} is not an alive row")
            self._alive.discard(rid)
            deleted.append(rid)
        return deleted

    @staticmethod
    def _check_value(value, ctype: ColumnType, name: str) -> None:
        if value is None:
            raise ValueError(
                f"null in column {name!r}: nulls are not supported; "
                "use the loader's null policy to resolve them at load time"
            )
        if ctype is ColumnType.STRING and not isinstance(value, str):
            raise TypeError(f"column {name!r} expects str, got {type(value).__name__}")
        if ctype is ColumnType.INTEGER and not isinstance(value, int):
            raise TypeError(f"column {name!r} expects int, got {type(value).__name__}")
        if ctype is ColumnType.FLOAT and not isinstance(value, (int, float)):
            raise TypeError(
                f"column {name!r} expects float, got {type(value).__name__}"
            )

    # -- access --------------------------------------------------------------

    def value(self, rid: int, position: int):
        """Value of column ``position`` in row ``rid`` (alive or dead)."""
        return self._columns[position][rid]

    def row(self, rid: int) -> tuple:
        """Full tuple of row ``rid`` (alive or dead)."""
        return tuple(column[rid] for column in self._columns)

    def column_values(self, position: int) -> list:
        """The raw value list of a column, indexed by rid (includes dead rows)."""
        return self._columns[position]

    @property
    def alive(self) -> IntBitset:
        """Bitmap of alive rids (a copy; callers may mutate freely)."""
        return self._alive.copy()

    @property
    def alive_bits(self) -> int:
        """Alive rids as a raw int bit pattern (do not mutate via this)."""
        return self._alive.bits

    def is_alive(self, rid: int) -> bool:
        return rid in self._alive

    @property
    def next_rid(self) -> int:
        """The rid the next inserted row will receive."""
        return self._next_rid

    def __len__(self) -> int:
        """Number of alive rows."""
        return len(self._alive)

    def rids(self) -> Iterator[int]:
        """Alive rids in ascending order."""
        return iter(self._alive)

    def rows(self) -> Iterator[tuple]:
        """Alive rows in rid order."""
        for rid in self._alive:
            yield self.row(rid)

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Relation":
        """New relation with only ``names`` columns and only alive rows.

        Rids are re-assigned densely in the projection.
        """
        projected = Relation(self.schema.project(names))
        positions = [self.schema.position(name) for name in names]
        projected.insert(
            tuple(self._columns[position][rid] for position in positions)
            for rid in self._alive
        )
        return projected

    def head(self, n: int) -> "Relation":
        """New relation with the first ``n`` alive rows (re-assigned rids)."""
        fresh = Relation(self.schema)
        rows = []
        for rid in self._alive:
            if len(rows) >= n:
                break
            rows.append(self.row(rid))
        fresh.insert(rows)
        return fresh

    def __repr__(self) -> str:
        return (
            f"Relation({len(self.schema)} columns, {len(self)} alive rows, "
            f"next_rid={self._next_rid})"
        )
