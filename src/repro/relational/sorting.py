"""Table preprocessing: multi-column sort on numeric columns.

The paper sorts the table on its numerical columns before building indexes
and running Algorithm 1 "to enhance bitmap compression and the performance
of the set operations" (Section V-D).  Sorting reorders rows — and thereby
re-assigns rids — so it is only valid as a preprocessing step on the
*initial* static data, before any evidence has been keyed to rids.  The
ablation benchmark ``bench_ablation_sort`` measures its effect.
"""

from __future__ import annotations

from repro.relational.relation import Relation


def sort_by_numeric_columns(relation: Relation) -> Relation:
    """Return a new relation whose alive rows are sorted by all numeric
    columns (in schema order), then by the remaining columns as tiebreaker.

    Rids are re-assigned densely in the returned relation.
    """
    numeric_positions = [
        position
        for position, column in enumerate(relation.schema)
        if column.is_numeric
    ]
    other_positions = [
        position
        for position, column in enumerate(relation.schema)
        if not column.is_numeric
    ]
    key_positions = numeric_positions + other_positions

    def sort_key(row):
        return tuple(row[position] for position in key_positions)

    sorted_relation = Relation(relation.schema)
    sorted_relation.insert(sorted(relation.rows(), key=sort_key))
    return sorted_relation
