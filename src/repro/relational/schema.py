"""Schemas and column typing for the relational substrate.

DC discovery distinguishes only two predicate-relevant type classes:
*categorical* columns admit ``{=, ≠}`` and *numeric* columns admit all six
comparison operators (Section III-A4).  The loader keeps the finer
INTEGER/FLOAT distinction because it matters for parsing and for the
synthetic dataset generators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator


class ColumnType(enum.Enum):
    """Storage type of a column."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)

    def comparable_with(self, other: "ColumnType") -> bool:
        """Whether cross-column predicates between the types are allowed.

        The predicate-space restrictions of [4] require both columns of a
        two-column predicate to have the same data type; we treat the two
        numeric types as one type class for this purpose.
        """
        if self.is_numeric and other.is_numeric:
            return True
        return self is other


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    @property
    def is_numeric(self) -> bool:
        return self.ctype.is_numeric

    def __str__(self) -> str:
        return f"{self.name}:{self.ctype.value}"


class Schema:
    """An ordered collection of uniquely named columns."""

    def __init__(self, columns: Iterable[Column]):
        self._columns = tuple(columns)
        names = [column.name for column in self._columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names: {duplicates}")
        self._index = {column.name: i for i, column in enumerate(self._columns)}

    @property
    def columns(self) -> tuple:
        return self._columns

    @property
    def names(self) -> tuple:
        return tuple(column.name for column in self._columns)

    def position(self, name: str) -> int:
        """Ordinal position of column ``name``; raises ``KeyError`` if absent."""
        return self._index[name]

    def column(self, name: str) -> Column:
        return self._columns[self._index[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, position: int) -> Column:
        return self._columns[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._columns == other._columns
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._columns)

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a new schema with only the given columns, in given order."""
        return Schema(self.column(name) for name in names)

    def __repr__(self) -> str:
        return f"Schema({', '.join(map(str, self._columns))})"
