"""Pluggable enumeration backends for the discoverer.

Both backends maintain the minimal-DC antichain across evidence-set
changes; :class:`DynEIBackend` is the paper's contribution (Section VI),
:class:`DynHSBackend` the dynamic hitting-set baseline [19].  The
discoverer talks to them through three methods: ``bootstrap``, ``insert``,
and ``delete``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.enumeration.dynamic import dynei_delete
from repro.enumeration.dynamic_hs import DynHS
from repro.enumeration.inversion import maximal_masks, refine_sigma
from repro.enumeration.mmcs import mmcs_enumerate
from repro.enumeration.settrie import SetTrie
from repro.predicates.space import PredicateSpace


class DynEIBackend:
    """Dynamic evidence inversion (3DC's enumerator).

    The *static* bootstrap enumerator is a free choice (Figure 2: any
    static algorithm can feed the first 3DC call).  The paper picks EI
    because it is fastest in the Java implementations it builds on; in
    this Python substrate MMCS is markedly faster for full bootstraps
    (EI's intermediate-antichain churn dominates), so the bootstrap uses
    MMCS while all *incremental* maintenance is DynEI, as in the paper.
    """

    name = "dynei"

    def __init__(self, space: PredicateSpace):
        self._space = space
        self._trie = SetTrie()

    def bootstrap(self, evidence_masks: Iterable[int]) -> None:
        self._trie = SetTrie(mmcs_enumerate(self._space, evidence_masks))

    def insert(self, new_evidence_masks: Sequence[int], remaining_unused=None) -> None:
        # The antichain trie persists across batches, so an insert only
        # pays for the evidences it actually folds in (Algorithm 2).
        if new_evidence_masks:
            refine_sigma(
                self._space, self._trie, maximal_masks(new_evidence_masks)
            )

    def delete(
        self,
        removed_evidence_masks: Sequence[int],
        remaining_evidence_masks: Iterable[int],
        verifier=None,
    ) -> None:
        if removed_evidence_masks:
            masks = dynei_delete(
                self._space,
                self._trie.masks(),
                removed_evidence_masks,
                remaining_evidence_masks,
                verifier=verifier,
            )
            self._trie = SetTrie(masks)

    @property
    def masks(self) -> List[int]:
        return sorted(self._trie.masks())

    def set_masks(
        self, masks: Sequence[int], evidence_masks: Iterable[int] = ()
    ) -> None:
        """Restore a previously saved antichain (state deserialization)."""
        self._trie = SetTrie(masks)


class DynHSBackend:
    """Dynamic hitting-set enumeration (the [19] baseline)."""

    name = "dynhs"

    def __init__(self, space: PredicateSpace):
        self._space = space
        self._enumerator = DynHS(space)

    def bootstrap(self, evidence_masks: Iterable[int]) -> None:
        self._enumerator = DynHS(self._space, evidence_masks)

    def insert(self, new_evidence_masks: Sequence[int], remaining_unused=None) -> None:
        self._enumerator.insert_evidence(new_evidence_masks)

    def delete(
        self,
        removed_evidence_masks: Sequence[int],
        remaining_evidence_masks: Iterable[int],
        verifier=None,
    ) -> None:
        # DynHS keeps its own criticality state; the verifier fast path
        # only applies to DynEI's drop/re-add split.
        self._enumerator.delete_evidence(
            removed_evidence_masks, remaining_evidence_masks
        )

    @property
    def masks(self) -> List[int]:
        return self._enumerator.dc_masks

    def set_masks(
        self, masks: Sequence[int], evidence_masks: Iterable[int] = ()
    ) -> None:
        raise NotImplementedError(
            "DynHS cannot restore from bare masks — it needs criticality "
            "state; bootstrap from the evidence set instead"
        )


class FixedSigmaBackend:
    """A frozen antichain for verify-only maintenance.

    ``mode="verify"`` tracks a *fixed* Σ instead of rediscovering: every
    enumeration hook is a no-op, ``masks`` always returns the constraints
    the discoverer was configured with.  Masks are installed via
    :meth:`set_masks` (at ``fit()`` or state restore).
    """

    name = "fixed"

    def __init__(self, space: PredicateSpace):
        self._space = space
        self._masks: List[int] = []

    def bootstrap(self, evidence_masks: Iterable[int]) -> None:
        pass

    def insert(self, new_evidence_masks: Sequence[int], remaining_unused=None) -> None:
        pass

    def delete(
        self,
        removed_evidence_masks: Sequence[int],
        remaining_evidence_masks: Iterable[int],
        verifier=None,
    ) -> None:
        pass

    @property
    def masks(self) -> List[int]:
        return list(self._masks)

    def set_masks(
        self, masks: Sequence[int], evidence_masks: Iterable[int] = ()
    ) -> None:
        self._masks = sorted(set(masks))


_BACKENDS = {
    "dynei": DynEIBackend,
    "dynhs": DynHSBackend,
    "fixed": FixedSigmaBackend,
}


def make_backend(name: str, space: PredicateSpace):
    """Instantiate an enumeration backend by name."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown enumeration backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None
    return factory(space)
