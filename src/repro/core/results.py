"""Result objects returned by the 3DC discoverer.

Each discovery/maintenance call reports the statistics the paper's
evaluation plots: evidence counts, new-evidence counts, DC counts, DC
churn, and per-phase wall-clock timings (Figures 8 and 13).

Since the observability subsystem landed, the authoritative record of a
call is its :class:`~repro.observability.report.RunReport` (nested span
tree + per-call metric deltas), carried in :attr:`DiscoveryResult.report`
/ :attr:`UpdateResult.report`.  The flat ``timings`` dicts are retained
as a derived compatibility view — the discoverer fills them from the
report's first span level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability.report import RunReport


@dataclass
class DiscoveryResult:
    """Outcome of the initial (static) discovery."""

    n_rows: int
    n_predicates: int
    n_evidence: int
    n_dcs: int
    timings: Dict[str, float] = field(default_factory=dict)
    report: Optional[RunReport] = None

    def __str__(self) -> str:
        times = ", ".join(f"{k}={v:.3f}s" for k, v in self.timings.items())
        return (
            f"DiscoveryResult(rows={self.n_rows}, predicates={self.n_predicates}, "
            f"evidence={self.n_evidence}, dcs={self.n_dcs}, {times})"
        )


@dataclass
class UpdateResult:
    """Outcome of one incremental maintenance step (insert or delete)."""

    kind: str  # "insert" or "delete"
    delta_size: int
    n_rows: int
    n_evidence: int
    n_evidence_changed: int  # new masks (insert) / vanished masks (delete)
    n_dcs: int
    n_new_dcs: int
    n_removed_dcs: int
    rids: List[int] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    report: Optional[RunReport] = None

    def __str__(self) -> str:
        times = ", ".join(f"{k}={v:.3f}s" for k, v in self.timings.items())
        return (
            f"UpdateResult({self.kind} |Δr|={self.delta_size}, rows={self.n_rows}, "
            f"evidence={self.n_evidence} ({self.n_evidence_changed:+d} changed), "
            f"dcs={self.n_dcs} (+{self.n_new_dcs}/-{self.n_removed_dcs}), {times})"
        )
