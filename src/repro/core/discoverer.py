"""The 3DC discoverer — stateful dynamic DC discovery (Figure 2).

:class:`DCDiscoverer` owns the relation, the predicate space, the column
indexes, the evidence set (with multiplicities), the optional per-tuple
evidence index, and the current minimal-DC antichain.  ``fit()`` performs
the static bootstrap (any static algorithm could seed 3DC; we use the
evidence-context pipeline + evidence inversion, the ECP analog);
``insert()`` / ``delete()`` / ``update()`` maintain everything
incrementally.

The predicate space is frozen at ``fit()`` time from the initial data —
matching the paper, where the space (and hence the DC search space) is a
property of the schema and the initial value distributions.

Every call returns a result whose :attr:`~repro.core.results.UpdateResult.report`
carries the nested span tree and per-call metric deltas of the operation
(see :mod:`repro.observability`); the flat ``timings`` dicts are a
derived view of the report's first span level.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.backends import make_backend
from repro.core.results import DiscoveryResult, UpdateResult
from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.ranking import DCScore, rank_dcs
from repro.dcs.approximate import approximate_dcs
from repro.evidence.builder import build_evidence_state
from repro.evidence.deletes import (
    apply_delete_evidence,
    delete_evidence_by_recompute,
    delete_evidence_with_index,
)
from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.incremental import (
    apply_insert_evidence,
    incremental_evidence_for_insert,
)
from repro.observability import Instrumentation, flight, get_logger
from repro.predicates.space import (
    DEFAULT_CROSS_COLUMN_RATIO,
    PredicateSpace,
    build_predicate_space,
)
from repro.relational.relation import Relation

logger = get_logger(__name__)


class DCDiscoverer:
    """Dynamic denial-constraint discovery over one relation.

    :param relation: the initial relation instance (may be empty).
    :param cross_column_ratio: shared-value threshold for cross-column
        predicates (Section III-A4; default 30 %).
    :param allow_cross_columns: disable to restrict the space to
        single-column predicates.
    :param column_names: restrict the predicate space to these columns
        (used by the column-scaling experiments).
    :param maintain_tuple_index: keep the per-tuple evidence index that
        accelerates deletes (Section V-C); slight insert-time overhead.
    :param delete_strategy: ``"index"`` (needs the tuple index) or
        ``"recompute"`` (Figure 10 compares the two).
    :param infer_within_delta: apply evidence inference among the
        incremental tuples themselves (the Figure 9 "Opt" strategy).
    :param enumeration_backend: ``"dynei"`` (3DC) or ``"dynhs"`` ([19]).
    :param workers: worker-pool size for evidence construction: 1 (the
        default) runs fully serial, ``n > 1`` shards the static scan,
        insert deltas, and delete batches over ``n`` forked processes,
        and 0 means one worker per CPU.  Results are byte-for-byte
        identical for any worker count (the shard merge is deterministic);
        platforms without the ``fork`` start method fall back to serial.
    :param executor: shard-executor backend for parallel evidence runs —
        ``"auto"`` (the default: fork where available, spawn otherwise),
        ``"serial"``, ``"fork"``, ``"spawn"``, or ``"socket"`` (worker
        processes over crc32-framed loopback TCP).  Results are
        byte-for-byte identical for any executor; an execution knob like
        ``workers`` — not persisted with the state.
    :param shards: pair-grid shard count override for parallel evidence
        runs (``None`` = derived from ``workers``); results are identical
        for any shard count.
    :param backend: evidence-kernel backend — ``"auto"`` (the default;
        NumPy-vectorized when available, pure Python otherwise),
        ``"python"``, or ``"numpy"``.  Results are byte-for-byte
        identical for any backend; like ``workers``, the choice is an
        execution setting of this process and is not persisted with the
        state.
    :param instrumentation: the observability bundle this discoverer
        reports through; defaults to a fresh enabled
        :class:`~repro.observability.Instrumentation`.  Pass
        ``Instrumentation(enabled=False)`` to skip all deep accounting
        (phase timings are always recorded).
    :param mode: ``"discover"`` (the default: maintain evidence and
        rediscover Σ on every update) or ``"verify"``: track a *fixed*
        Σ of ``constraints`` without any evidence maintenance — updates
        only maintain the column indexes and the violating pairs of the
        tracked DCs (via the verification kernel), which is far cheaper
        when the constraint set is already known.
    :param constraints: the DCs to track in ``mode="verify"`` — DC
        strings (``"!(t.A = t'.A ∧ …)"``), predicate masks, or
        :class:`~repro.dcs.DenialConstraint` objects; resolved against
        the predicate space at ``fit()``.
    :param verify_pruning: in discover mode, use the verification kernel
        for the exact minimality re-check of conservatively dropped DCs
        on deletes (near-linear index sweeps instead of a scan over all
        remaining evidence; the resulting antichain is identical).  An
        execution knob like ``workers`` — not persisted with the state.
    """

    def __init__(
        self,
        relation: Relation,
        cross_column_ratio: float = DEFAULT_CROSS_COLUMN_RATIO,
        allow_cross_columns: bool = True,
        column_names: Optional[Sequence[str]] = None,
        maintain_tuple_index: bool = True,
        delete_strategy: str = "index",
        infer_within_delta: bool = True,
        enumeration_backend: str = "dynei",
        workers: int = 1,
        backend: str = "auto",
        executor: str = "auto",
        shards: Optional[int] = None,
        instrumentation: Optional[Instrumentation] = None,
        mode: str = "discover",
        constraints: Optional[Sequence] = None,
        verify_pruning: bool = True,
    ):
        from repro.evidence.kernels import validate_backend

        if delete_strategy not in ("index", "recompute"):
            raise ValueError(
                f"delete_strategy must be 'index' or 'recompute', "
                f"got {delete_strategy!r}"
            )
        if delete_strategy == "index" and not maintain_tuple_index:
            raise ValueError(
                "delete_strategy='index' requires maintain_tuple_index=True"
            )
        if mode not in ("discover", "verify"):
            raise ValueError(
                f"mode must be 'discover' or 'verify', got {mode!r}"
            )
        if mode == "discover" and constraints is not None:
            raise ValueError("constraints are only meaningful with mode='verify'")
        self.relation = relation
        self.cross_column_ratio = cross_column_ratio
        self.allow_cross_columns = allow_cross_columns
        self.column_names = tuple(column_names) if column_names else None
        self.maintain_tuple_index = maintain_tuple_index
        self.delete_strategy = delete_strategy
        self.infer_within_delta = infer_within_delta
        self.mode = mode
        # A verify-mode discoverer always runs the frozen-Σ backend, so
        # the persisted config round-trips through state_from_dict.
        self.enumeration_backend = "fixed" if mode == "verify" else enumeration_backend
        self.constraints = list(constraints) if constraints is not None else None
        self.verify_pruning = verify_pruning
        from repro.evidence.executors import validate_executor

        self.workers = workers
        self.backend = validate_backend(backend)
        self.executor = validate_executor(executor)
        self.shards = shards
        self.instrumentation = instrumentation or Instrumentation()
        self.space: Optional[PredicateSpace] = None
        self._state = None
        self._backend = None
        self._fitted = False
        self._monitors = []
        self._watchers = []
        self._verify_watcher = None

    # -- bootstrap -----------------------------------------------------------

    def fit(self) -> DiscoveryResult:
        """Run the static discovery on the current relation state.

        In ``mode="verify"`` there is nothing to discover: ``fit()``
        freezes the predicate space, indexes the relation, resolves the
        configured ``constraints`` against the space, and seeds the
        violating-pair watcher from one verification-kernel enumeration
        (no evidence set is ever built).
        """
        if self.mode == "verify":
            return self._fit_verify()
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        with instrumentation.activate():
            with tracer.span("fit") as root:
                with tracer.span("space"):
                    self.space = build_predicate_space(
                        self.relation,
                        cross_column_ratio=self.cross_column_ratio,
                        allow_cross_columns=self.allow_cross_columns,
                        column_names=self.column_names,
                    )
                with tracer.span("evidence"):
                    self._state = build_evidence_state(
                        self.relation,
                        self.space,
                        maintain_tuple_index=self.maintain_tuple_index,
                        workers=self.workers,
                        backend=self.backend,
                        executor=self.executor,
                        shards=self.shards,
                    )
                with tracer.span("enumeration"):
                    self._backend = make_backend(
                        self.enumeration_backend, self.space
                    )
                    self._backend.bootstrap(list(self._state.evidence))
        self._fitted = True
        self._record_state_gauges()
        report = instrumentation.finish_operation("fit", root, before)
        logger.debug(
            "fit: %d rows, %d predicates, %d evidences, %d DCs in %.3fs",
            len(self.relation), self.space.n_bits,
            len(self._state.evidence), len(self.dc_masks), root.duration,
        )
        return DiscoveryResult(
            n_rows=len(self.relation),
            n_predicates=self.space.n_bits,
            n_evidence=len(self._state.evidence),
            n_dcs=len(self.dc_masks),
            timings=report.phase_timings(),
            report=report,
        )

    def _resolve_constraint_masks(self) -> List[int]:
        """Constraint inputs (strings, masks, DC objects) → sorted masks."""
        from repro.predicates.parser import parse_dc

        masks = []
        for constraint in self.constraints:
            if isinstance(constraint, DenialConstraint):
                mask = constraint.mask
            elif isinstance(constraint, int):
                mask = constraint
            else:
                mask = parse_dc(constraint, self.space)
            if not mask:
                raise ValueError("cannot track an empty constraint")
            if mask & ~self.space.full_mask:
                raise ValueError(
                    f"constraint mask {mask:#x} has predicates outside the "
                    f"space; widen it (e.g. cross_column_ratio=0.0)"
                )
            masks.append(mask)
        return sorted(set(masks))

    def _seed_verify_watcher(self):
        """Build the verify-mode watcher, its pairs enumerated by the
        verification kernel (instead of the watcher's own per-row scan)."""
        from repro.dcs.watcher import ViolationWatcher
        from repro.verification.kernel import Verifier

        verifier = Verifier(self.relation, self._state.indexes, self.space)
        dcs = [
            DenialConstraint(mask, self.space)
            for mask in self._backend.masks
            if mask
        ]
        pairs_by_mask = {
            dc.mask: set(verifier.violating_pairs(dc)) for dc in dcs
        }
        watcher = ViolationWatcher.from_pairs(
            self.relation, self._state.indexes, dcs, pairs_by_mask
        )
        self._verify_watcher = watcher
        self._watchers.append(watcher)
        return watcher

    def _fit_verify(self) -> DiscoveryResult:
        from repro.evidence.builder import EvidenceEngineState
        from repro.evidence.indexes import ColumnIndexes

        if not self.constraints:
            raise ValueError(
                "mode='verify' requires constraints=[...] "
                "(DC strings, masks, or DenialConstraint objects)"
            )
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        with instrumentation.activate():
            with tracer.span("fit") as root:
                with tracer.span("space"):
                    self.space = build_predicate_space(
                        self.relation,
                        cross_column_ratio=self.cross_column_ratio,
                        allow_cross_columns=self.allow_cross_columns,
                        column_names=self.column_names,
                    )
                with tracer.span("evidence"):
                    # No evidence set in verify mode — only the indexes.
                    self._state = EvidenceEngineState(
                        space=self.space,
                        indexes=ColumnIndexes(self.relation),
                        evidence=EvidenceSet(),
                        tuple_index=None,
                    )
                with tracer.span("enumeration"):
                    self._backend = make_backend("fixed", self.space)
                    self._backend.set_masks(self._resolve_constraint_masks())
                    self._seed_verify_watcher()
        self._fitted = True
        self._record_state_gauges()
        report = instrumentation.finish_operation("fit", root, before)
        logger.debug(
            "fit(verify): %d rows, %d predicates, %d constraints, "
            "%d violating pairs in %.3fs",
            len(self.relation), self.space.n_bits, len(self.dc_masks),
            self._verify_watcher.total_violations(), root.duration,
        )
        return DiscoveryResult(
            n_rows=len(self.relation),
            n_predicates=self.space.n_bits,
            n_evidence=0,
            n_dcs=len(self.dc_masks),
            timings=report.phase_timings(),
            report=report,
        )

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() before incremental maintenance")

    # -- incremental maintenance -----------------------------------------------

    def insert(self, rows: Iterable[Sequence]) -> UpdateResult:
        """Insert a batch of rows and update evidence and DCs.

        An empty batch is a no-op on the engine state but still notifies
        attached monitors/watchers (with an empty delta), so downstream
        consumers observe every maintenance call symmetrically.
        """
        self._require_fitted()
        if self.mode == "verify":
            return self._insert_verify(rows)
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        previous_masks = set(self._backend.masks)

        with instrumentation.activate():
            with tracer.span("insert") as root:
                with tracer.span("evidence"):
                    new_rids = self.relation.insert(rows)
                    tracer.annotate("batch_rows", len(new_rids))
                    if new_rids:
                        with tracer.span("index_update"):
                            self._state.indexes.add_rows(new_rids)
                        with tracer.span("delta"):
                            evidence_delta = incremental_evidence_for_insert(
                                self.relation,
                                self._state,
                                new_rids,
                                infer_within_delta=self.infer_within_delta,
                                workers=self.workers,
                                backend=self.backend,
                                executor=self.executor,
                                shards=self.shards,
                            )
                        with tracer.span("apply"):
                            new_masks = apply_insert_evidence(
                                self._state, evidence_delta
                            )
                    else:
                        evidence_delta = EvidenceSet()
                        new_masks = []
                    with tracer.span("notify"):
                        for monitor in self._monitors:
                            monitor.apply_insert_delta(
                                evidence_delta, len(self.relation)
                            )
                        for watcher in self._watchers:
                            watcher.on_insert(new_rids)
                with tracer.span("enumeration"):
                    tracer.annotate("einc_size", len(new_masks))
                    self._backend.insert(new_masks)

        if instrumentation.enabled:
            instrumentation.inc("discoverer.inserts")
            instrumentation.inc("discoverer.rows_inserted", len(new_rids))
            instrumentation.inc("enumeration.einc_size", len(new_masks))
        return self._update_result(
            "insert", new_rids, len(new_masks), previous_masks, root, before
        )

    def delete(self, rids: Iterable[int]) -> UpdateResult:
        """Delete a batch of rows (by rid) and update evidence and DCs.

        Like :meth:`insert`, an empty batch still notifies attached
        monitors/watchers with an empty delta.
        """
        self._require_fitted()
        if self.mode == "verify":
            return self._delete_verify(rids)
        rid_list = sorted(rids)
        # Validate before touching any state: evidence subtraction happens
        # before the relation delete, so a bad rid must not get that far.
        for rid in rid_list:
            if not self.relation.is_alive(rid):
                raise KeyError(f"rid {rid} is not an alive row")
        if len(set(rid_list)) != len(rid_list):
            raise ValueError("duplicate rids in delete batch")
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        previous_masks = set(self._backend.masks)

        with instrumentation.activate():
            with tracer.span("delete") as root:
                with tracer.span("evidence"):
                    tracer.annotate("batch_rows", len(rid_list))
                    if rid_list:
                        with tracer.span("delta"):
                            if self.delete_strategy == "index":
                                evidence_delta = delete_evidence_with_index(
                                    self.relation, self._state, rid_list,
                                    workers=self.workers,
                                    backend=self.backend,
                                    executor=self.executor,
                                    shards=self.shards,
                                )
                            else:
                                evidence_delta = delete_evidence_by_recompute(
                                    self.relation, self._state, rid_list,
                                    workers=self.workers,
                                    backend=self.backend,
                                    executor=self.executor,
                                    shards=self.shards,
                                )
                        with tracer.span("apply"):
                            removed_masks = apply_delete_evidence(
                                self._state, evidence_delta
                            )
                            self.relation.delete(rid_list)
                            self._state.indexes.remove_rows(rid_list)
                    else:
                        evidence_delta = EvidenceSet()
                        removed_masks = []
                    with tracer.span("notify"):
                        for monitor in self._monitors:
                            monitor.apply_delete_delta(
                                evidence_delta, len(self.relation)
                            )
                        for watcher in self._watchers:
                            watcher.on_delete(rid_list)
                with tracer.span("enumeration"):
                    tracer.annotate("einc_size", len(removed_masks))
                    verifier = None
                    if self.verify_pruning and removed_masks:
                        from repro.verification.kernel import Verifier

                        # Relation and indexes are post-delete here, so
                        # kernel sweeps see exactly the remaining rows.
                        verifier = Verifier(
                            self.relation, self._state.indexes, self.space
                        )
                    self._backend.delete(
                        removed_masks,
                        list(self._state.evidence),
                        verifier=verifier,
                    )

        if instrumentation.enabled:
            instrumentation.inc("discoverer.deletes")
            instrumentation.inc("discoverer.rows_deleted", len(rid_list))
            instrumentation.inc("enumeration.einc_size", len(removed_masks))
        return self._update_result(
            "delete", rid_list, len(removed_masks), previous_masks, root, before
        )

    def _insert_verify(self, rows: Iterable[Sequence]) -> UpdateResult:
        """Verify-mode insert: index the rows, extend the violation sets
        of the tracked DCs — no evidence work, no enumeration."""
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        previous_masks = set(self._backend.masks)
        with instrumentation.activate():
            with tracer.span("insert") as root:
                with tracer.span("evidence"):
                    new_rids = self.relation.insert(rows)
                    tracer.annotate("batch_rows", len(new_rids))
                    if new_rids:
                        with tracer.span("index_update"):
                            self._state.indexes.add_rows(new_rids)
                    with tracer.span("notify"):
                        n_new_pairs = 0
                        for watcher in self._watchers:
                            damage = watcher.on_insert(new_rids)
                            if watcher is self._verify_watcher:
                                n_new_pairs = sum(
                                    len(pairs) for pairs in damage.values()
                                )
        if instrumentation.enabled:
            instrumentation.inc("discoverer.inserts")
            instrumentation.inc("discoverer.rows_inserted", len(new_rids))
            instrumentation.inc("verification.new_violations", n_new_pairs)
        return self._update_result(
            "insert", new_rids, 0, previous_masks, root, before
        )

    def _delete_verify(self, rids: Iterable[int]) -> UpdateResult:
        """Verify-mode delete: unindex the rows, drop their violating
        pairs — no evidence work, no enumeration."""
        rid_list = sorted(rids)
        for rid in rid_list:
            if not self.relation.is_alive(rid):
                raise KeyError(f"rid {rid} is not an alive row")
        if len(set(rid_list)) != len(rid_list):
            raise ValueError("duplicate rids in delete batch")
        instrumentation = self.instrumentation
        tracer = instrumentation.tracer
        before = instrumentation.begin_operation()
        previous_masks = set(self._backend.masks)
        with instrumentation.activate():
            with tracer.span("delete") as root:
                with tracer.span("evidence"):
                    tracer.annotate("batch_rows", len(rid_list))
                    if rid_list:
                        with tracer.span("index_update"):
                            self.relation.delete(rid_list)
                            self._state.indexes.remove_rows(rid_list)
                    with tracer.span("notify"):
                        n_cleared = 0
                        for watcher in self._watchers:
                            removed = watcher.on_delete(rid_list)
                            if watcher is self._verify_watcher:
                                n_cleared = sum(
                                    len(pairs) for pairs in removed.values()
                                )
        if instrumentation.enabled:
            instrumentation.inc("discoverer.deletes")
            instrumentation.inc("discoverer.rows_deleted", len(rid_list))
            instrumentation.inc("verification.cleared_violations", n_cleared)
        return self._update_result(
            "delete", rid_list, 0, previous_masks, root, before
        )

    def update(
        self, delete_rids: Iterable[int], insert_rows: Iterable[Sequence]
    ) -> Tuple[UpdateResult, UpdateResult]:
        """Mixed update, modeled as deletes followed by inserts
        (Section III-B).  Returns ``(delete_result, insert_result)``."""
        return self.delete(delete_rids), self.insert(insert_rows)

    def _update_result(
        self, kind, rids, n_changed, previous_masks, root, before
    ) -> UpdateResult:
        current = self._backend.masks
        current_set = set(current)
        n_new = len(current_set - previous_masks)
        n_removed = len(previous_masks - current_set)
        instrumentation = self.instrumentation
        if instrumentation.enabled:
            instrumentation.inc("discoverer.dcs_added", n_new)
            instrumentation.inc("discoverer.dcs_removed", n_removed)
        self._record_state_gauges()
        report = instrumentation.finish_operation(kind, root, before)
        # Mirror the maintenance span tree into the flight recorder under
        # the active trace context (no-op outside the serving layer).
        flight.record_report_spans(report)
        logger.debug(
            "%s: |Δr|=%d, E^inc=%d, DCs +%d/-%d in %.3fs",
            kind, len(rids), n_changed, n_new, n_removed, root.duration,
        )
        return UpdateResult(
            kind=kind,
            delta_size=len(rids),
            n_rows=len(self.relation),
            n_evidence=len(self._state.evidence),
            n_evidence_changed=n_changed,
            n_dcs=len(current),
            n_new_dcs=n_new,
            n_removed_dcs=n_removed,
            rids=list(rids),
            timings=report.phase_timings(),
            report=report,
        )

    def _record_state_gauges(self) -> None:
        instrumentation = self.instrumentation
        if not instrumentation.enabled:
            return
        instrumentation.set_gauge("discoverer.rows", len(self.relation))
        instrumentation.set_gauge(
            "discoverer.evidence_distinct", len(self._state.evidence)
        )
        instrumentation.set_gauge("discoverer.dcs", len(self._backend.masks))

    # -- results ------------------------------------------------------------------

    @property
    def dc_masks(self) -> List[int]:
        """Current minimal DC predicate masks (the empty mask excluded)."""
        self._require_fitted()
        return [mask for mask in self._backend.masks if mask]

    @property
    def dcs(self) -> List[DenialConstraint]:
        """Current minimal, non-trivial DCs."""
        return [DenialConstraint(mask, self.space) for mask in self.dc_masks]

    @property
    def canonical_dcs(self) -> List[DenialConstraint]:
        """Current DCs with implied operator pairs rewritten to their
        canonical single operator (``{≤,≥}→{=}``, ``{≠,≤}→{<}``,
        ``{≠,≥}→{>}``) and the resulting duplicates removed — a smaller,
        semantically equivalent presentation of :attr:`dcs`."""
        from repro.dcs.canonical import canonicalize_masks

        return [
            DenialConstraint(mask, self.space)
            for mask in canonicalize_masks(self.dc_masks, self.space)
        ]

    @property
    def evidence_set(self):
        """The maintained evidence set (with multiplicities)."""
        self._require_fitted()
        return self._state.evidence

    @property
    def engine_state(self):
        """The full evidence-engine state (indexes, tuple index, …)."""
        self._require_fitted()
        return self._state

    def rank(self, top_k: Optional[int] = None, **weights) -> List[DCScore]:
        """Rank the current DCs by interestingness (Section II)."""
        return rank_dcs(self.dcs, self.evidence_set, top_k=top_k, **weights)

    def approximate(self, epsilon: float) -> List[DenialConstraint]:
        """Approximate DCs from the maintained evidence multiplicities."""
        self._require_fitted()
        masks = approximate_dcs(self.space, self._state.evidence, epsilon)
        return [DenialConstraint(mask, self.space) for mask in masks if mask]

    def attach_approximate_monitor(self, epsilon: float):
        """Track the ε-approximate DCs across future updates.

        Returns an :class:`~repro.dcs.dynamic_approximate.ApproximateDCMonitor`
        whose violation counters are maintained exactly on every
        ``insert``/``delete`` of this discoverer (the dynamic
        approximate-DC layer the paper defers to future work).
        """
        self._require_fitted()
        from repro.dcs.dynamic_approximate import ApproximateDCMonitor

        monitor = ApproximateDCMonitor(
            self.space, self._state.evidence, epsilon, len(self.relation)
        )
        self._monitors.append(monitor)
        return monitor

    def verification_report(self, sample: int = 10) -> dict:
        """Per-constraint verdicts of a ``mode="verify"`` discoverer.

        Counts come straight from the incrementally maintained watcher —
        no rescan.  ``sample`` caps the violating pairs listed per DC.
        """
        self._require_fitted()
        if self._verify_watcher is None:
            raise RuntimeError("verification_report() requires mode='verify'")
        constraints = []
        for dc in self._verify_watcher.dcs:
            pairs = sorted(self._verify_watcher.violations(dc))
            constraints.append(
                {
                    "dc": str(dc),
                    "mask": format(dc.mask, "x"),
                    "holds": not pairs,
                    "n_violations": len(pairs),
                    "sample_pairs": [list(pair) for pair in pairs[:sample]],
                }
            )
        return {
            "mode": self.mode,
            "n_rows": len(self.relation),
            "n_constraints": len(constraints),
            "n_violated": sum(
                1 for entry in constraints if not entry["holds"]
            ),
            "total_violations": sum(
                entry["n_violations"] for entry in constraints
            ),
            "constraints": constraints,
        }

    def attach_violation_watcher(self, dcs: Iterable[DenialConstraint]):
        """Maintain the violating pairs of the given DCs across updates.

        The DCs need not be valid — watching *invalid* constraints (e.g.
        business rules the data is known to break) is the typical
        data-cleaning use.  Returns a
        :class:`~repro.dcs.watcher.ViolationWatcher` updated on every
        ``insert``/``delete`` of this discoverer.
        """
        self._require_fitted()
        from repro.dcs.watcher import ViolationWatcher

        watcher = ViolationWatcher(self.relation, self._state.indexes, dcs)
        self._watchers.append(watcher)
        return watcher

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return (
            f"DCDiscoverer({status}, {len(self.relation)} rows, "
            f"backend={self.enumeration_backend})"
        )
