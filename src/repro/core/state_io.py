"""Persistence of 3DC intermediates between sessions.

3DC's whole point is reusing the evidence set and DC antichain of a
previous discovery (Figure 2).  This module serializes the full discoverer
state — schema, alive rows (with their original rids), the exact predicate
space, the evidence multiplicities, the DC antichain, and the per-tuple
evidence index — to a JSON document, so a later process can resume
incremental maintenance without re-running the static bootstrap.

Masks are hex strings (they exceed 64 bits routinely); rids are decimal
string keys (JSON objects demand string keys).
"""

from __future__ import annotations

import json

from repro.core.backends import make_backend
from repro.core.discoverer import DCDiscoverer
from repro.durability.atomic import atomic_write_bytes, canonical_json_bytes
from repro.evidence.builder import EvidenceEngineState
from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.indexes import ColumnIndexes
from repro.evidence.tuple_index import TupleEvidenceIndex
from repro.predicates.space import build_space_from_pairs
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema

FORMAT_NAME = "3dc-state"
FORMAT_VERSION = 1


class StateFormatError(ValueError):
    """The document is not a 3DC state (foreign JSON, missing fields)."""


class StateVersionError(ValueError):
    """The document is a 3DC state of an unsupported schema version."""

    def __init__(self, found):
        super().__init__(
            f"unsupported state version {found!r} "
            f"(this build reads version {FORMAT_VERSION}); "
            f"re-run discovery to migrate the state"
        )
        self.found = found
        self.supported = FORMAT_VERSION


def _tuple_index_to_dict(tuple_index: TupleEvidenceIndex) -> dict:
    # Sorted rids and masks: serialization must be canonical so that runs
    # with different worker-pool sizes produce byte-identical documents.
    return {
        "owned": {
            str(rid): {
                format(mask, "x"): counter[mask] for mask in sorted(counter)
            }
            for rid, counter in sorted(tuple_index.owned.items())
        },
        "partners": {
            str(rid): format(bits, "x")
            for rid, bits in sorted(tuple_index.partners_of.items())
        },
    }


def _tuple_index_from_dict(payload: dict) -> TupleEvidenceIndex:
    tuple_index = TupleEvidenceIndex()
    tuple_index.owned = {
        int(rid): {int(mask, 16): count for mask, count in counter.items()}
        for rid, counter in payload["owned"].items()
    }
    tuple_index.partners_of = {
        int(rid): int(bits, 16) for rid, bits in payload["partners"].items()
    }
    return tuple_index


def state_to_dict(discoverer: DCDiscoverer) -> dict:
    """Serialize a fitted discoverer to a JSON-compatible dict."""
    if discoverer.space is None:
        raise RuntimeError("cannot serialize an unfitted discoverer")
    relation = discoverer.relation
    state = discoverer.engine_state
    if state.tuple_index is not None:
        # The index's lazy corrections need the retained values of dead
        # rows, which do not survive serialization — settle them now.
        state.tuple_index.compact(relation, discoverer.space)
    config = {
        "cross_column_ratio": discoverer.cross_column_ratio,
        "allow_cross_columns": discoverer.allow_cross_columns,
        "column_names": list(discoverer.column_names)
        if discoverer.column_names
        else None,
        "maintain_tuple_index": discoverer.maintain_tuple_index,
        "delete_strategy": discoverer.delete_strategy,
        "infer_within_delta": discoverer.infer_within_delta,
        "enumeration_backend": discoverer.enumeration_backend,
        # The workers, (evidence-kernel) backend, and verify_pruning
        # knobs are deliberately NOT persisted: they are execution
        # settings of one process, not part of the data state, and
        # leaving them out keeps saved states byte-identical across
        # worker counts and backends.
    }
    if discoverer.mode != "discover":
        # Only serialized when it deviates from the default, so every
        # discover-mode state stays byte-identical to earlier versions.
        config["mode"] = discoverer.mode
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "config": config,
        "schema": [
            [column.name, column.ctype.value] for column in relation.schema
        ],
        "rows": {str(rid): list(relation.row(rid)) for rid in relation.rids()},
        "next_rid": relation.next_rid,
        "space_pairs": [
            [group.predicates[0].lhs, group.predicates[0].rhs]
            for group in discoverer.space.groups
        ],
        "evidence": {
            format(mask, "x"): state.evidence.counts[mask]
            for mask in sorted(state.evidence.counts)
        },
        "sigma": sorted(format(mask, "x") for mask in discoverer._backend.masks),
        "tuple_index": (
            _tuple_index_to_dict(state.tuple_index)
            if state.tuple_index is not None
            else None
        ),
    }


_REQUIRED_KEYS = (
    "config",
    "schema",
    "rows",
    "next_rid",
    "space_pairs",
    "evidence",
    "sigma",
    "tuple_index",
)


def state_from_dict(payload: dict) -> DCDiscoverer:
    """Rebuild a fitted discoverer from :func:`state_to_dict` output.

    Raises :class:`StateFormatError` for foreign/incomplete documents and
    :class:`StateVersionError` for other schema versions (both subclass
    ``ValueError``) — never an opaque ``KeyError``.
    """
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise StateFormatError(f"not a {FORMAT_NAME} document")
    if payload.get("version") != FORMAT_VERSION:
        raise StateVersionError(payload.get("version"))
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise StateFormatError(
            f"{FORMAT_NAME} document is missing fields: {', '.join(missing)}"
        )

    schema = Schema(
        Column(name, ColumnType(ctype)) for name, ctype in payload["schema"]
    )
    rows_by_rid = {
        int(rid): tuple(
            float(value)
            if column.ctype is ColumnType.FLOAT and isinstance(value, int)
            else value
            for value, column in zip(row, schema)
        )
        for rid, row in payload["rows"].items()
    }
    relation = Relation.from_sparse_rows(schema, rows_by_rid, payload["next_rid"])

    config = payload["config"]
    discoverer = DCDiscoverer(relation, **config)
    discoverer.space = build_space_from_pairs(
        schema, [tuple(pair) for pair in payload["space_pairs"]]
    )

    evidence = EvidenceSet(
        {int(mask, 16): count for mask, count in payload["evidence"].items()}
    )
    tuple_index = (
        _tuple_index_from_dict(payload["tuple_index"])
        if payload["tuple_index"] is not None
        else None
    )
    discoverer._state = EvidenceEngineState(
        space=discoverer.space,
        indexes=ColumnIndexes(relation),
        evidence=evidence,
        tuple_index=tuple_index,
    )
    backend = make_backend(config["enumeration_backend"], discoverer.space)
    try:
        backend.set_masks(
            [int(mask, 16) for mask in payload["sigma"]], list(evidence)
        )
    except NotImplementedError:
        backend.bootstrap(list(evidence))
    discoverer._backend = backend
    discoverer._fitted = True
    if discoverer.mode == "verify":
        # Re-enumerate the tracked DCs' violating pairs with the
        # verification kernel (they are derived state, not serialized)
        # and keep the restored constraints for future round trips.
        discoverer.constraints = list(backend.masks)
        discoverer._seed_verify_watcher()
    return discoverer


def state_to_bytes(discoverer: DCDiscoverer) -> bytes:
    """Canonical on-disk encoding of the discoverer state.

    Sorted keys, compact separators: equal logical states encode to
    equal bytes, which is what the worker-determinism and crash-matrix
    suites compare on.
    """
    return canonical_json_bytes(state_to_dict(discoverer))


def save_state(discoverer: DCDiscoverer, path) -> None:
    """Atomically write the discoverer state as JSON to ``path``.

    The write goes through the temp+fsync+rename sequence of
    :mod:`repro.durability.atomic`: a crash at any instant leaves either
    the complete previous state or the complete new one, never a
    truncated hybrid.
    """
    atomic_write_bytes(path, state_to_bytes(discoverer), fault_prefix="state_save")


def load_state(path) -> DCDiscoverer:
    """Load a discoverer state written by :func:`save_state`."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise StateFormatError(f"{path}: not valid JSON ({exc})") from exc
    return state_from_dict(payload)
