"""The 3DC core: the dynamic DC discoverer, result objects, enumeration
backends, and state persistence."""

from repro.core.discoverer import DCDiscoverer
from repro.core.results import DiscoveryResult, UpdateResult
from repro.core.backends import DynEIBackend, DynHSBackend, make_backend
from repro.core.state_io import (
    StateFormatError,
    StateVersionError,
    load_state,
    save_state,
    state_from_dict,
    state_to_bytes,
    state_to_dict,
)

__all__ = [
    "DCDiscoverer",
    "DiscoveryResult",
    "UpdateResult",
    "DynEIBackend",
    "DynHSBackend",
    "make_backend",
    "StateFormatError",
    "StateVersionError",
    "save_state",
    "load_state",
    "state_to_bytes",
    "state_to_dict",
    "state_from_dict",
]
