"""Predicate spaces: bit layout, groups, symmetry, satisfiability.

The space assigns each predicate a bit; an *evidence* (the set of
predicates a tuple pair satisfies) and a DC's predicate set are then plain
``int`` masks.  Three pieces of precomputed structure make the algorithms
fast:

- **Groups** (one per ordered column pair): the pipeline stages of
  Algorithm 1.  Each group knows the bit patterns produced by the three
  outcomes of comparing ``t.A`` with ``t'.B`` (equal / partner greater /
  partner smaller), which is all a reconciliation stage needs.
- **Symmetry tables**: the permutation ``sym`` with
  ``(t, t') ⊨ p  ⇔  (t', t) ⊨ sym(p)`` realizes the paper's evidence
  inference (Section V-B3) as a bit permutation, applied bytewise through
  lookup tables.
- **Satisfiable patterns**: per group, the operator subsets a real tuple
  pair can satisfy (Trichotomy Law); candidates whose bits violate them
  are trivial DCs and are pruned at generation time.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.predicates.operator import (
    CATEGORICAL_OPERATORS,
    CATEGORICAL_PATTERNS,
    NUMERIC_OPERATORS,
    NUMERIC_PATTERNS,
    Operator,
)
from repro.predicates.predicate import Predicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Default minimum ratio of shared distinct values for cross-column
#: predicates; 30 % "has been shown to work well in practice" [4].
DEFAULT_CROSS_COLUMN_RATIO = 0.3


class PredicateGroup:
    """All predicates over one ordered column pair ``(t.A, t'.B)``.

    A group is one reconciliation stage: given the comparison outcome
    between ``t.A`` and the partner's ``B`` value, the satisfied bits
    within the group are fixed.
    """

    __slots__ = (
        "lhs_position",
        "rhs_position",
        "numeric",
        "predicates",
        "mask",
        "bit_of_op",
        "eq_bits",
        "gt_bits",
        "lt_bits",
        "ahead_bits",
        "patterns",
    )

    def __init__(self, lhs_position, rhs_position, numeric, predicates, first_bit):
        self.lhs_position = lhs_position
        self.rhs_position = rhs_position
        self.numeric = numeric
        self.predicates = tuple(predicates)
        self.bit_of_op = {
            predicate.op: first_bit + offset
            for offset, predicate in enumerate(self.predicates)
        }
        self.mask = 0
        for bit in self.bit_of_op.values():
            self.mask |= 1 << bit

        def bits(operators) -> int:
            value = 0
            for op in operators:
                bit = self.bit_of_op.get(op)
                if bit is not None:
                    value |= 1 << bit
            return value

        if numeric:
            # Outcomes of comparing t.A against partner value t'.B.
            self.eq_bits = bits({Operator.EQ, Operator.LE, Operator.GE})
            self.gt_bits = bits({Operator.NE, Operator.LT, Operator.LE})
            self.lt_bits = bits({Operator.NE, Operator.GT, Operator.GE})
            patterns = NUMERIC_PATTERNS
        else:
            self.eq_bits = bits({Operator.EQ})
            self.gt_bits = 0
            self.lt_bits = bits({Operator.NE})
            patterns = CATEGORICAL_PATTERNS
        # 'ahead' presumes the partner value is smaller (operators ≠, >, ≥),
        # i.e. the lowest-selectivity outcome (Section V-A).
        self.ahead_bits = self.lt_bits
        self.patterns = tuple(bits(pattern) for pattern in patterns)

    @property
    def is_single_column(self) -> bool:
        return self.lhs_position == self.rhs_position

    def __repr__(self) -> str:
        first = self.predicates[0]
        return (
            f"PredicateGroup(t.{first.lhs} ? t'.{first.rhs}, "
            f"{len(self.predicates)} predicates)"
        )


class PredicateSpace:
    """An immutable predicate space with bit-level helpers."""

    def __init__(self, schema: Schema, groups: Sequence[PredicateGroup]):
        self.schema = schema
        self.groups = tuple(groups)
        self.predicates = tuple(
            predicate for group in self.groups for predicate in group.predicates
        )
        self.n_bits = len(self.predicates)
        self.full_mask = (1 << self.n_bits) - 1
        self._bit_of = {}
        self.group_of_bit = [None] * self.n_bits
        bit = 0
        for group in self.groups:
            for predicate in group.predicates:
                self._bit_of[(predicate.lhs, predicate.op, predicate.rhs)] = bit
                self.group_of_bit[bit] = group
                bit += 1
        self.ahead_mask = 0
        self.range_mask = 0
        for group in self.groups:
            self.ahead_mask |= group.ahead_bits
            for predicate in group.predicates:
                if predicate.op.is_order:
                    self.range_mask |= 1 << self._bit_of[
                        (predicate.lhs, predicate.op, predicate.rhs)
                    ]
        self.sym = self._build_symmetry_permutation()
        self._sym_tables = self._build_symmetry_tables()

    # -- construction helpers -------------------------------------------------

    def _build_symmetry_permutation(self) -> list:
        permutation = []
        for predicate in self.predicates:
            key = predicate.symmetric_key
            if key not in self._bit_of:
                raise ValueError(
                    f"predicate space is not symmetry-closed: no counterpart "
                    f"for {predicate}"
                )
            permutation.append(self._bit_of[key])
        return permutation

    def _build_symmetry_tables(self) -> list:
        n_bytes = (self.n_bits + 7) // 8
        tables = []
        for byte_index in range(n_bytes):
            table = [0] * 256
            base = byte_index * 8
            for byte_value in range(256):
                mask = 0
                bits = byte_value
                while bits:
                    low = bits & -bits
                    bit = base + low.bit_length() - 1
                    if bit < self.n_bits:
                        mask |= 1 << self.sym[bit]
                    bits ^= low
                table[byte_value] = mask
            tables.append(table)
        return tables

    # -- bit-level API ----------------------------------------------------------

    def bit(self, lhs: str, op: Operator, rhs: str) -> int:
        """Bit position of the predicate ``t.lhs op t'.rhs``."""
        return self._bit_of[(lhs, op, rhs)]

    def bit_of_predicate(self, predicate: Predicate) -> int:
        return self._bit_of[(predicate.lhs, predicate.op, predicate.rhs)]

    def mask_of(self, predicates: Iterable[Predicate]) -> int:
        """Bitmask of a collection of predicates."""
        mask = 0
        for predicate in predicates:
            mask |= 1 << self.bit_of_predicate(predicate)
        return mask

    def predicates_of(self, mask: int) -> list:
        """Predicates whose bits are set in ``mask``, ascending by bit."""
        result = []
        while mask:
            low = mask & -mask
            result.append(self.predicates[low.bit_length() - 1])
            mask ^= low
        return result

    def symmetrize(self, mask: int) -> int:
        """Evidence of the swapped pair: ``e(t', t)`` from ``e(t, t')``.

        Implemented as a bytewise permutation lookup; the general form of
        the copy/XOR inference of Section V-B3.
        """
        out = 0
        index = 0
        tables = self._sym_tables
        while mask:
            byte = mask & 0xFF
            if byte:
                out |= tables[index][byte]
            mask >>= 8
            index += 1
        return out

    # -- satisfiability (trivial-DC pruning) ------------------------------------

    def satisfiable_with(self, mask: int, bit: int) -> bool:
        """Whether ``mask | (1 << bit)`` stays satisfiable, given that
        ``mask`` already is.  Only the group of ``bit`` needs rechecking
        because satisfiability is per-group."""
        group = self.group_of_bit[bit]
        bits = (mask | (1 << bit)) & group.mask
        return any(bits & ~pattern == 0 for pattern in group.patterns)

    def satisfiable(self, mask: int) -> bool:
        """Whether some tuple-pair valuation can satisfy all predicates in
        ``mask`` simultaneously (per-group Trichotomy check)."""
        for group in self.groups:
            bits = mask & group.mask
            if bits and not any(bits & ~pattern == 0 for pattern in group.patterns):
                return False
        return True

    # -- direct evaluation (oracle path) ------------------------------------------

    def evidence_of_pair(self, row_t, row_u) -> int:
        """Evidence mask of the ordered tuple pair ``(t, t')`` computed by
        direct comparison — the correctness oracle for the bitmap pipeline.

        NaN follows the engine-wide total order: NaN equals NaN and is
        greater than every number (see
        :class:`repro.evidence.indexes.RangeIndex`).
        """
        mask = 0
        for group in self.groups:
            a = row_t[group.lhs_position]
            b = row_u[group.rhs_position]
            if a == b:
                mask |= group.eq_bits
            elif group.numeric:
                if b != b:  # partner NaN: greater unless both are NaN
                    mask |= group.eq_bits if a != a else group.gt_bits
                elif a != a:  # own NaN against a number: partner smaller
                    mask |= group.lt_bits
                else:
                    mask |= group.gt_bits if a < b else group.lt_bits
            else:
                mask |= group.lt_bits  # categorical 'different' bits
        return mask

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:
        return (
            f"PredicateSpace({self.n_bits} predicates, {len(self.groups)} groups)"
        )


def _distinct_values(relation: Relation, position: int) -> set:
    values = relation.column_values(position)
    return {values[rid] for rid in relation.rids()}


def _share_ratio(left: set, right: set) -> float:
    if not left or not right:
        return 0.0
    return len(left & right) / min(len(left), len(right))


def build_space_from_pairs(schema: Schema, pairs: Sequence) -> PredicateSpace:
    """Rebuild a predicate space from an explicit ordered list of column
    pairs ``(lhs_name, rhs_name)`` — used by state deserialization, where
    the original space must be reproduced exactly even though the data
    (and hence the shared-value ratios) may have changed since ``fit()``.
    """
    groups = []
    bit = 0
    for lhs_name, rhs_name in pairs:
        lhs_position = schema.position(lhs_name)
        rhs_position = schema.position(rhs_name)
        lhs_column = schema[lhs_position]
        rhs_column = schema[rhs_position]
        numeric = lhs_column.is_numeric and rhs_column.is_numeric
        operators = NUMERIC_OPERATORS if numeric else CATEGORICAL_OPERATORS
        predicates = [
            Predicate(lhs_name, op, rhs_name, lhs_position, rhs_position)
            for op in operators
        ]
        groups.append(
            PredicateGroup(lhs_position, rhs_position, numeric, predicates, bit)
        )
        bit += len(predicates)
    return PredicateSpace(schema, groups)


def build_predicate_space(
    relation: Relation,
    cross_column_ratio: float = DEFAULT_CROSS_COLUMN_RATIO,
    allow_cross_columns: bool = True,
    column_names: Optional[Sequence[str]] = None,
) -> PredicateSpace:
    """Build the predicate space of a relation with the restrictions of [4].

    - categorical (string) columns: operators ``{=, ≠}``;
    - numeric columns: all six operators;
    - cross-column predicates only between same-type-class columns sharing
      at least ``cross_column_ratio`` of their distinct values (ratio over
      the smaller distinct set); both directions ``(A, B)`` and ``(B, A)``
      are added together, keeping the space symmetry-closed.

    :param column_names: restrict the space to a subset of columns (used by
        the column-scaling experiments).
    """
    schema = relation.schema
    if column_names is None:
        positions = list(range(len(schema)))
    else:
        positions = [schema.position(name) for name in column_names]

    groups = []
    bit = 0

    def add_group(lhs_position: int, rhs_position: int) -> None:
        nonlocal bit
        lhs_column = schema[lhs_position]
        rhs_column = schema[rhs_position]
        numeric = lhs_column.is_numeric and rhs_column.is_numeric
        operators = NUMERIC_OPERATORS if numeric else CATEGORICAL_OPERATORS
        predicates = [
            Predicate(lhs_column.name, op, rhs_column.name, lhs_position, rhs_position)
            for op in operators
        ]
        group = PredicateGroup(lhs_position, rhs_position, numeric, predicates, bit)
        groups.append(group)
        bit += len(predicates)

    for position in positions:
        add_group(position, position)

    if allow_cross_columns:
        distinct = {position: _distinct_values(relation, position) for position in positions}
        for i, left in enumerate(positions):
            for right in positions[i + 1 :]:
                if not schema[left].ctype.comparable_with(schema[right].ctype):
                    continue
                if _share_ratio(distinct[left], distinct[right]) < cross_column_ratio:
                    continue
                add_group(left, right)
                add_group(right, left)

    return PredicateSpace(schema, groups)
