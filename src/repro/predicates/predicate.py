"""A single DC predicate ``t.A θ t'.B``."""

from __future__ import annotations

from dataclasses import dataclass

from repro.predicates.operator import Operator


@dataclass(frozen=True)
class Predicate:
    """An atomic predicate over an (ordered) pair of tuples.

    ``lhs``/``rhs`` are column names resolved against the schema at
    predicate-space build time; ``lhs_position``/``rhs_position`` cache the
    ordinal positions for evaluation without name lookups.
    """

    lhs: str
    op: Operator
    rhs: str
    lhs_position: int
    rhs_position: int

    def eval(self, row_t, row_t2) -> bool:
        """Evaluate the predicate on the tuple pair ``(t, t')``."""
        return self.op.eval(row_t[self.lhs_position], row_t2[self.rhs_position])

    @property
    def symmetric_key(self) -> tuple:
        """Key ``(lhs, op, rhs)`` of the predicate satisfied by the swapped
        pair exactly when ``self`` is satisfied by the original pair:
        ``t.A θ t'.B  ⇔  t'.B θ⁻¹ t.A``, i.e. the space predicate
        ``t.B θ⁻¹ t'.A`` evaluated on ``(t', t)``."""
        return (self.rhs, self.op.converse, self.lhs)

    @property
    def is_cross_column(self) -> bool:
        return self.lhs != self.rhs

    def __str__(self) -> str:
        return f"t.{self.lhs} {self.op.symbol} t'.{self.rhs}"

    def __repr__(self) -> str:
        return f"Predicate({self})"
