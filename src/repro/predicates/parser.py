"""Parsing and pretty-printing of predicates and DCs.

Accepted predicate syntax: ``t.A <op> t'.B`` with operators written either
as ASCII (``=  !=  <  <=  >  >=``) or as the paper's symbols
(``=  ≠  <  ≤  >  ≥``).  DCs accept both the paper's form
``¬(t.A = t'.A ∧ t.B < t'.B)`` and the ASCII form
``!(t.A = t'.A & t.B < t'.B)``.
"""

from __future__ import annotations

import re

from repro.predicates.operator import Operator

_OPERATOR_TOKENS = {
    "=": Operator.EQ,
    "==": Operator.EQ,
    "!=": Operator.NE,
    "<>": Operator.NE,
    "≠": Operator.NE,
    "<": Operator.LT,
    "<=": Operator.LE,
    "≤": Operator.LE,
    ">": Operator.GT,
    ">=": Operator.GE,
    "≥": Operator.GE,
}

_PREDICATE_RE = re.compile(
    r"""^\s*t\.(?P<lhs>[^\s=!<>≠≤≥]+)\s*"""
    r"""(?P<op>==|!=|<>|<=|>=|[=<>≠≤≥])\s*"""
    r"""t'\.(?P<rhs>[^\s)]+)\s*$"""
)


def parse_predicate(text: str, space):
    """Parse ``text`` into the matching :class:`Predicate` of ``space``.

    :raises ValueError: on syntax errors or predicates outside the space.
    """
    match = _PREDICATE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse predicate: {text!r}")
    op = _OPERATOR_TOKENS[match.group("op")]
    lhs = match.group("lhs")
    rhs = match.group("rhs")
    try:
        bit = space.bit(lhs, op, rhs)
    except KeyError:
        raise ValueError(
            f"predicate t.{lhs} {op.symbol} t'.{rhs} is not in the predicate space"
        ) from None
    return space.predicates[bit]


def parse_dc(text: str, space) -> int:
    """Parse a DC string into its predicate bitmask over ``space``."""
    stripped = text.strip()
    for negation in ("¬", "!", "not "):
        if stripped.startswith(negation):
            stripped = stripped[len(negation) :].strip()
            break
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1]
    parts = re.split(r"∧|&&|&|\bAND\b|\band\b", stripped)
    mask = 0
    for part in parts:
        if not part.strip():
            raise ValueError(f"empty conjunct in DC: {text!r}")
        predicate = parse_predicate(part, space)
        mask |= 1 << space.bit_of_predicate(predicate)
    if mask == 0:
        raise ValueError(f"DC has no predicates: {text!r}")
    return mask


def format_dc(mask: int, space, ascii_only: bool = False) -> str:
    """Render a DC predicate mask in the paper's notation."""
    joiner = " & " if ascii_only else " ∧ "
    negation = "!" if ascii_only else "¬"
    conjuncts = []
    for predicate in space.predicates_of(mask):
        op = predicate.op.value if ascii_only else predicate.op.symbol
        conjuncts.append(f"t.{predicate.lhs} {op} t'.{predicate.rhs}")
    return f"{negation}({joiner.join(conjuncts)})"
