"""The comparison-operator algebra behind DC predicates.

Besides evaluation, the DC algorithms need three structural relations on
operators (Section V-B3):

- *negation* — ``¬(a = b)`` is ``a ≠ b``; used by hitting-set reasoning;
- *converse* — ``a < b  ⇔  b > a``; used by evidence inference to derive
  ``e(t', t)`` from ``e(t, t')``;
- *implication* — ``a < b`` implies ``a ≤ b`` and ``a ≠ b``; it induces the
  three satisfiable operator patterns ``{=, ≤, ≥}``, ``{≠, <, ≤}``,
  ``{≠, >, ≥}`` (Trichotomy Law) that drive trivial-DC pruning.
"""

from __future__ import annotations

import enum


class Operator(enum.Enum):
    """A binary comparison operator."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def eval(self, a, b) -> bool:
        """Evaluate ``a θ b`` under the engine's value order.

        NaN follows the engine-wide total order — NaN equals NaN and is
        strictly greater than every number — matching the range indexes
        and :meth:`~repro.predicates.space.PredicateSpace.evidence_of_pair`
        (IEEE NaN is unordered, which would make direct pair evaluation
        disagree with every index-driven path on NaN data).
        """
        a_nan = isinstance(a, float) and a != a
        b_nan = isinstance(b, float) and b != b
        if a_nan or b_nan:
            if self is Operator.EQ:
                return a_nan and b_nan
            if self is Operator.NE:
                return a_nan != b_nan
            if self is Operator.LT:
                return b_nan and not a_nan
            if self is Operator.LE:
                return b_nan
            if self is Operator.GT:
                return a_nan and not b_nan
            return a_nan  # GE
        if self is Operator.EQ:
            return a == b
        if self is Operator.NE:
            return a != b
        if self is Operator.LT:
            return a < b
        if self is Operator.LE:
            return a <= b
        if self is Operator.GT:
            return a > b
        return a >= b

    @property
    def negation(self) -> "Operator":
        """The operator satisfied exactly when ``self`` is not."""
        return _NEGATION[self]

    @property
    def converse(self) -> "Operator":
        """The operator θ' with ``a θ b  ⇔  b θ' a``."""
        return _CONVERSE[self]

    @property
    def implied(self) -> frozenset:
        """All operators θ' (including ``self``) with ``a θ b ⇒ a θ' b``."""
        return _IMPLIED[self]

    @property
    def is_order(self) -> bool:
        """Whether this is a range operator (<, ≤, >, ≥)."""
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE)

    @property
    def symbol(self) -> str:
        return _SYMBOLS[self]

    def __str__(self) -> str:
        return self.value


_NEGATION = {
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.LT: Operator.GE,
    Operator.GE: Operator.LT,
    Operator.GT: Operator.LE,
    Operator.LE: Operator.GT,
}

_CONVERSE = {
    Operator.EQ: Operator.EQ,
    Operator.NE: Operator.NE,
    Operator.LT: Operator.GT,
    Operator.GT: Operator.LT,
    Operator.LE: Operator.GE,
    Operator.GE: Operator.LE,
}

_IMPLIED = {
    Operator.EQ: frozenset({Operator.EQ, Operator.LE, Operator.GE}),
    Operator.NE: frozenset({Operator.NE}),
    Operator.LT: frozenset({Operator.LT, Operator.LE, Operator.NE}),
    Operator.GT: frozenset({Operator.GT, Operator.GE, Operator.NE}),
    Operator.LE: frozenset({Operator.LE}),
    Operator.GE: frozenset({Operator.GE}),
}

_SYMBOLS = {
    Operator.EQ: "=",
    Operator.NE: "≠",
    Operator.LT: "<",
    Operator.LE: "≤",
    Operator.GT: ">",
    Operator.GE: "≥",
}

#: Operators allowed on categorical (string) column pairs [4].
CATEGORICAL_OPERATORS = (Operator.EQ, Operator.NE)

#: Operators allowed on numeric column pairs [4].
NUMERIC_OPERATORS = (
    Operator.EQ,
    Operator.NE,
    Operator.LT,
    Operator.LE,
    Operator.GT,
    Operator.GE,
)

#: The satisfiable operator patterns of a numeric predicate group: any
#: tuple pair satisfies exactly one of "equal", "less", "greater", so the
#: operators it satisfies within one group are exactly one of these sets.
NUMERIC_PATTERNS = (
    frozenset({Operator.EQ, Operator.LE, Operator.GE}),
    frozenset({Operator.NE, Operator.LT, Operator.LE}),
    frozenset({Operator.NE, Operator.GT, Operator.GE}),
)

#: Satisfiable operator patterns of a categorical predicate group.
CATEGORICAL_PATTERNS = (
    frozenset({Operator.EQ}),
    frozenset({Operator.NE}),
)
