"""Predicates, predicate spaces, and predicate groups.

A DC predicate has the form ``t.A θ t'.B`` with
``θ ∈ {=, ≠, <, ≤, >, ≥}`` (Section III-A).  The
:class:`~repro.predicates.space.PredicateSpace` assigns every predicate a
bit position so that evidences and DC predicate sets become plain integer
bitmasks; :class:`~repro.predicates.space.PredicateGroup` partitions the
space into the pipeline stages of Algorithm 1 (predicates differing only
in the operator).
"""

from repro.predicates.operator import (
    CATEGORICAL_OPERATORS,
    NUMERIC_OPERATORS,
    Operator,
)
from repro.predicates.predicate import Predicate
from repro.predicates.space import PredicateGroup, PredicateSpace, build_predicate_space
from repro.predicates.parser import format_dc, parse_dc, parse_predicate

__all__ = [
    "Operator",
    "CATEGORICAL_OPERATORS",
    "NUMERIC_OPERATORS",
    "Predicate",
    "PredicateGroup",
    "PredicateSpace",
    "build_predicate_space",
    "parse_predicate",
    "parse_dc",
    "format_dc",
]
