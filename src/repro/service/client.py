"""Python client for the DC service — drive it like an application.

:class:`ServiceClient` speaks the JSON-over-HTTP protocol of
:mod:`repro.service.server` with nothing but the stdlib.  Each call opens
its own connection (simple and unconditionally thread-safe: the
concurrency tests and the closed-loop benchmark share one client across
many threads).

Error mapping mirrors the protocol's status codes:

- 409 → :class:`ServiceStaleError` (the node could not reach the
  requested ``min_seq`` within its wait budget);
- 421 → :class:`NotPrimaryError` (the node is a read-only follower;
  ``.primary_url`` says where the write belongs);
- 429 → :class:`ServiceSaturatedError` (back off and retry);
- 503 → :class:`ServiceUnavailableError` (draining, or commit timeout
  with *unknown* outcome);
- other non-2xx → :class:`ServiceError`.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterable, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.observability.tracectx import TraceContext


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("message") or payload.get("error") or "?"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceSaturatedError(ServiceError):
    """The write queue is full (HTTP 429) — back off and retry."""


class ServiceUnavailableError(ServiceError):
    """Draining or commit timeout (HTTP 503); write outcome unknown."""


class ServiceStaleError(ServiceError):
    """A ``min_seq``-bounded read could not be served fresh enough
    (HTTP 409): the node's snapshot seq is in ``.seq``."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status, payload)
        self.min_seq = payload.get("min_seq")
        self.seq = payload.get("seq")


class NotPrimaryError(ServiceError):
    """A write reached a read-only follower (HTTP 421); retry against
    ``.primary_url``."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status, payload)
        self.primary_url = payload.get("primary_url")


class ServiceClient:
    """Blocking client for one service endpoint."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if base_url is not None:
            parts = urlsplit(base_url)
            self.host = parts.hostname or "127.0.0.1"
            self.port = parts.port or 80
        else:
            if host is None or port is None:
                raise ValueError("pass base_url or host and port")
            self.host = host
            self.port = port
        self.timeout = timeout
        #: Trace id of the most recent request (from the X-Trace-Id
        #: response header), resolvable at ``GET /debug/trace``.
        self.last_trace_id: Optional[str] = None

    # -- transport --------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        # Mint one trace context per call; the server adopts it, so the
        # client-side id and the server-side trace are the same.
        trace = TraceContext.mint()
        try:
            body = None
            headers = {"traceparent": trace.traceparent()}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        self.last_trace_id = (
            response.headers.get("X-Trace-Id") or trace.trace_id
        )
        if response.headers.get_content_type() == "text/plain":
            document = {"text": raw.decode("utf-8")}
        else:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status == 409:
            raise ServiceStaleError(response.status, document)
        if response.status == 421:
            raise NotPrimaryError(response.status, document)
        if response.status == 429:
            raise ServiceSaturatedError(response.status, document)
        if response.status == 503:
            raise ServiceUnavailableError(response.status, document)
        if response.status >= 400:
            raise ServiceError(response.status, document)
        return document

    def wait_ready(self, deadline_s: float = 10.0) -> dict:
        """Poll ``/status`` until the service answers (or raise)."""
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                return self.status()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- writes -----------------------------------------------------------

    def insert(
        self, rows: Iterable[Sequence], timeout: Optional[float] = None
    ) -> dict:
        """Durably insert rows; returns ``{"seq", "rids", ...}``."""
        payload = {"rows": [list(row) for row in rows]}
        if timeout is not None:
            payload["timeout"] = timeout
        return self._request("POST", "/insert", payload)

    def delete(
        self, rids: Iterable[int], timeout: Optional[float] = None
    ) -> dict:
        """Durably delete rows by rid."""
        payload = {"rids": [int(rid) for rid in rids]}
        if timeout is not None:
            payload["timeout"] = timeout
        return self._request("POST", "/delete", payload)

    # -- reads ------------------------------------------------------------
    #
    # ``min_seq`` on any read is the cross-node read-your-writes token:
    # pass the seq a commit returned and the answering node either serves
    # a snapshot at least that fresh or raises ServiceStaleError.

    def dcs(self, min_seq: Optional[int] = None) -> dict:
        """Current canonical DCs of the latest snapshot."""
        query = f"?min_seq={int(min_seq)}" if min_seq is not None else ""
        return self._request("GET", f"/dcs{query}")

    def rank(self, top: int = 10, min_seq: Optional[int] = None) -> dict:
        """Top-k ranked DCs of the latest snapshot."""
        query = f"/rank?top={int(top)}"
        if min_seq is not None:
            query += f"&min_seq={int(min_seq)}"
        return self._request("GET", query)

    def check(
        self,
        row: Sequence,
        dcs: Optional[List[str]] = None,
        limit: Optional[int] = None,
        min_seq: Optional[int] = None,
    ) -> dict:
        """Violation-check a candidate row *before* inserting it."""
        payload: dict = {"row": list(row)}
        if dcs is not None:
            payload["dcs"] = list(dcs)
        if limit is not None:
            payload["limit"] = int(limit)
        if min_seq is not None:
            payload["min_seq"] = int(min_seq)
        return self._request("POST", "/check", payload)

    def verify(
        self, limit: Optional[int] = None, min_seq: Optional[int] = None
    ) -> dict:
        """Per-DC verification verdicts of the latest snapshot.

        ``limit`` caps the violation count per DC (``None`` = server
        default, usually exact).
        """
        params = []
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if min_seq is not None:
            params.append(f"min_seq={int(min_seq)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/verify{query}")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def metrics_text(self) -> str:
        """Prometheus exposition text of the live registry."""
        return self._request("GET", "/metrics")["text"]

    def log(self, since: int = -1) -> dict:
        """Commit history with seq > ``since`` (oracle replay feed)."""
        return self._request("GET", f"/log?since={int(since)}")

    def debug_trace(
        self,
        trace_id: Optional[str] = None,
        slow: bool = False,
        limit: Optional[int] = None,
    ) -> dict:
        """Query the flight recorder: one resolved trace (``trace_id``),
        the slow-span ring (``slow=True``), or the recent spans/events."""
        params = []
        if trace_id is not None:
            params.append(f"trace_id={trace_id}")
        if slow:
            params.append("slow=1")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/debug/trace{query}")

    # -- replication ------------------------------------------------------

    def replication_frames(
        self,
        after_seq: int = 0,
        wait_s: float = 0.0,
        max_frames: Optional[int] = None,
    ) -> dict:
        """Long-poll the primary's WAL frame feed (hex frame bytes)."""
        query = f"?after_seq={int(after_seq)}&wait_s={float(wait_s):g}"
        if max_frames is not None:
            query += f"&max_frames={int(max_frames)}"
        return self._request("GET", f"/replication/frames{query}")

    def replication_checkpoint(self) -> dict:
        """The primary's newest checkpoint document (follower catch-up)."""
        return self._request("GET", "/replication/checkpoint")

    def promote(self) -> dict:
        """Ask a follower to take over primary duty (idempotent)."""
        return self._request("POST", "/promote")

    def shutdown(self) -> dict:
        """Ask the service to drain and stop (returns immediately)."""
        return self._request("POST", "/shutdown")

    def __repr__(self) -> str:
        return f"ServiceClient(http://{self.host}:{self.port})"
