"""Python client for the DC service — drive it like an application.

:class:`ServiceClient` speaks the JSON-over-HTTP protocol of
:mod:`repro.service.server` with nothing but the stdlib.  Each call opens
its own connection (simple and unconditionally thread-safe: the
concurrency tests and the closed-loop benchmark share one client across
many threads).

Error mapping mirrors the protocol's status codes:

- 409 → :class:`ServiceStaleError` (the node could not reach the
  requested ``min_seq`` within its wait budget; ``.retry_after`` echoes
  the server's Retry-After hint) or :class:`FencedError` (the write
  reached a deposed primary — rerouting is mandatory, retrying here is
  futile);
- 421 → :class:`NotPrimaryError` (the node is a read-only follower;
  ``.primary_url`` says where the write belongs);
- 429 → :class:`ServiceSaturatedError` (back off and retry);
- 503 → :class:`ServiceUnavailableError` (draining, or commit timeout
  with *unknown* outcome);
- other non-2xx → :class:`ServiceError`.

Failover ergonomics (both off by default, so the error surface of
existing callers is unchanged):

- ``follow_writes=True`` makes :meth:`insert`/:meth:`delete` chase 421
  redirects through at most two hops (a loop of follower hints cannot
  spin the client);
- ``connect_retry_s > 0`` retries connection-refused failures with
  jittered backoff inside that budget — the promote window, where the
  old primary's socket is gone and the new one's is seconds away.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Iterable, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.observability.tracectx import TraceContext

#: Hard cap on 421 redirect hops per logical write.
MAX_REDIRECT_HOPS = 2

#: Initial backoff for connection-refused retries (doubles per attempt,
#: with up to 50% random jitter so a thundering herd of clients spreads
#: out across the promote window).
_CONNECT_BACKOFF_S = 0.05


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("message") or payload.get("error") or "?"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceSaturatedError(ServiceError):
    """The write queue is full (HTTP 429) — back off and retry."""


class ServiceUnavailableError(ServiceError):
    """Draining or commit timeout (HTTP 503); write outcome unknown."""


class ServiceStaleError(ServiceError):
    """A ``min_seq``-bounded read could not be served fresh enough
    (HTTP 409): the node's snapshot seq is in ``.seq`` and the server's
    Retry-After hint (seconds) in ``.retry_after``."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status, payload)
        self.min_seq = payload.get("min_seq")
        self.seq = payload.get("seq")
        self.retry_after = payload.get("retry_after")


class FencedError(ServiceError):
    """A write reached a fenced (deposed) primary — HTTP 409 with error
    code ``fenced``.  Unlike a stale read, retrying the same node is
    futile: reroute to the fleet's current primary."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status, payload)
        self.epoch = payload.get("epoch")
        self.fenced_below = payload.get("fenced_below")


class NotPrimaryError(ServiceError):
    """A write reached a read-only follower (HTTP 421); retry against
    ``.primary_url``."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status, payload)
        self.primary_url = payload.get("primary_url")


class ServiceClient:
    """Blocking client for one service endpoint."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
        follow_writes: bool = False,
        connect_retry_s: float = 0.0,
    ):
        if base_url is not None:
            parts = urlsplit(base_url)
            self.host = parts.hostname or "127.0.0.1"
            self.port = parts.port or 80
        else:
            if host is None or port is None:
                raise ValueError("pass base_url or host and port")
            self.host = host
            self.port = port
        self.timeout = timeout
        #: Chase 421 redirects on writes (capped at MAX_REDIRECT_HOPS).
        self.follow_writes = follow_writes
        #: Total budget (seconds) for retrying connection-refused writes
        #: with jittered backoff; 0 disables retrying.
        self.connect_retry_s = connect_retry_s
        #: Trace id of the most recent request (from the X-Trace-Id
        #: response header), resolvable at ``GET /debug/trace``.
        self.last_trace_id: Optional[str] = None

    # -- transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        target: Optional[str] = None,
    ) -> dict:
        host, port = self.host, self.port
        if target is not None:
            parts = urlsplit(target)
            host = parts.hostname or host
            port = parts.port or 80
        connection = http.client.HTTPConnection(
            host, port, timeout=self.timeout
        )
        # Mint one trace context per call; the server adopts it, so the
        # client-side id and the server-side trace are the same.
        trace = TraceContext.mint()
        try:
            body = None
            headers = {"traceparent": trace.traceparent()}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        self.last_trace_id = (
            response.headers.get("X-Trace-Id") or trace.trace_id
        )
        if response.headers.get_content_type() == "text/plain":
            document = {"text": raw.decode("utf-8")}
        else:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status == 409:
            if document.get("error") == "fenced":
                raise FencedError(response.status, document)
            raise ServiceStaleError(response.status, document)
        if response.status == 421:
            raise NotPrimaryError(response.status, document)
        if response.status == 429:
            raise ServiceSaturatedError(response.status, document)
        if response.status == 503:
            raise ServiceUnavailableError(response.status, document)
        if response.status >= 400:
            raise ServiceError(response.status, document)
        return document

    def wait_ready(self, deadline_s: float = 10.0) -> dict:
        """Poll ``/status`` until the service answers (or raise)."""
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                return self.status()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- writes -----------------------------------------------------------

    def _write_request(self, path: str, payload: dict) -> dict:
        """POST one write, optionally chasing redirects and cold sockets.

        With ``follow_writes``, a 421 redirect hint is followed for at
        most :data:`MAX_REDIRECT_HOPS` hops (a redirect loop raises the
        last 421 instead of spinning).  With ``connect_retry_s``, a
        connection-refused failure — the signature of the promote
        window, when no node has the listening socket yet — is retried
        with exponential, jittered backoff until the budget runs out.
        """
        target: Optional[str] = None
        hops = 0
        deadline = time.monotonic() + self.connect_retry_s
        backoff = _CONNECT_BACKOFF_S
        while True:
            try:
                return self._request("POST", path, payload, target=target)
            except NotPrimaryError as exc:
                if (
                    not self.follow_writes
                    or exc.primary_url is None
                    or hops >= MAX_REDIRECT_HOPS
                ):
                    raise
                hops += 1
                target = exc.primary_url
            except ConnectionRefusedError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(
                    min(remaining, backoff * (1 + random.random() * 0.5))
                )
                backoff *= 2

    def insert(
        self, rows: Iterable[Sequence], timeout: Optional[float] = None
    ) -> dict:
        """Durably insert rows; returns ``{"seq", "rids", ...}``."""
        payload = {"rows": [list(row) for row in rows]}
        if timeout is not None:
            payload["timeout"] = timeout
        return self._write_request("/insert", payload)

    def delete(
        self, rids: Iterable[int], timeout: Optional[float] = None
    ) -> dict:
        """Durably delete rows by rid."""
        payload = {"rids": [int(rid) for rid in rids]}
        if timeout is not None:
            payload["timeout"] = timeout
        return self._write_request("/delete", payload)

    # -- reads ------------------------------------------------------------
    #
    # ``min_seq`` on any read is the cross-node read-your-writes token:
    # pass the seq a commit returned and the answering node either serves
    # a snapshot at least that fresh or raises ServiceStaleError.

    def dcs(self, min_seq: Optional[int] = None) -> dict:
        """Current canonical DCs of the latest snapshot."""
        query = f"?min_seq={int(min_seq)}" if min_seq is not None else ""
        return self._request("GET", f"/dcs{query}")

    def rank(self, top: int = 10, min_seq: Optional[int] = None) -> dict:
        """Top-k ranked DCs of the latest snapshot."""
        query = f"/rank?top={int(top)}"
        if min_seq is not None:
            query += f"&min_seq={int(min_seq)}"
        return self._request("GET", query)

    def check(
        self,
        row: Sequence,
        dcs: Optional[List[str]] = None,
        limit: Optional[int] = None,
        min_seq: Optional[int] = None,
    ) -> dict:
        """Violation-check a candidate row *before* inserting it."""
        payload: dict = {"row": list(row)}
        if dcs is not None:
            payload["dcs"] = list(dcs)
        if limit is not None:
            payload["limit"] = int(limit)
        if min_seq is not None:
            payload["min_seq"] = int(min_seq)
        return self._request("POST", "/check", payload)

    def verify(
        self, limit: Optional[int] = None, min_seq: Optional[int] = None
    ) -> dict:
        """Per-DC verification verdicts of the latest snapshot.

        ``limit`` caps the violation count per DC (``None`` = server
        default, usually exact).
        """
        params = []
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if min_seq is not None:
            params.append(f"min_seq={int(min_seq)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/verify{query}")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def metrics_text(self) -> str:
        """Prometheus exposition text of the live registry."""
        return self._request("GET", "/metrics")["text"]

    def log(self, since: int = -1) -> dict:
        """Commit history with seq > ``since`` (oracle replay feed)."""
        return self._request("GET", f"/log?since={int(since)}")

    def debug_trace(
        self,
        trace_id: Optional[str] = None,
        slow: bool = False,
        limit: Optional[int] = None,
    ) -> dict:
        """Query the flight recorder: one resolved trace (``trace_id``),
        the slow-span ring (``slow=True``), or the recent spans/events."""
        params = []
        if trace_id is not None:
            params.append(f"trace_id={trace_id}")
        if slow:
            params.append("slow=1")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/debug/trace{query}")

    # -- replication ------------------------------------------------------

    def replication_frames(
        self,
        after_seq: int = 0,
        wait_s: float = 0.0,
        max_frames: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> dict:
        """Long-poll the primary's WAL frame feed (hex frame bytes).

        ``epoch`` advertises the requester's commit epoch; an upstream
        that is provably staler fences itself and answers 409.
        """
        query = f"?after_seq={int(after_seq)}&wait_s={float(wait_s):g}"
        if max_frames is not None:
            query += f"&max_frames={int(max_frames)}"
        if epoch is not None:
            query += f"&epoch={int(epoch)}"
        return self._request("GET", f"/replication/frames{query}")

    def replication_checkpoint(self) -> dict:
        """The primary's newest checkpoint document (follower catch-up)."""
        return self._request("GET", "/replication/checkpoint")

    def promote(self, epoch: Optional[int] = None) -> dict:
        """Ask a follower to take over primary duty (idempotent).

        ``epoch`` installs the fleet-chosen commit epoch; omitted, the
        node mints the next epoch after its own.
        """
        payload = {"epoch": int(epoch)} if epoch is not None else None
        return self._request("POST", "/promote", payload)

    def fence(self, epoch: int) -> dict:
        """Declare every epoch below ``epoch`` dead on this node."""
        return self._request("POST", "/fence", {"epoch": int(epoch)})

    def follow(self, url: str) -> dict:
        """Repoint a follower at a different upstream."""
        return self._request("POST", "/follow", {"url": url})

    def topology(self) -> dict:
        """This node's own view of its place in the fleet."""
        return self._request("GET", "/topology")

    def shutdown(self) -> dict:
        """Ask the service to drain and stop (returns immediately)."""
        return self._request("POST", "/shutdown")

    def __repr__(self) -> str:
        return f"ServiceClient(http://{self.host}:{self.port})"
