"""Configuration of the serving layer.

One :class:`ServiceConfig` parameterizes everything operational about a
:class:`~repro.service.server.DCService`: where it listens, how deep the
write queue may grow before admission control rejects (backpressure), how
long the writer lingers collecting concurrent writes into one coalesced
batch (the paper's batch-update model driven by live traffic), and how
long a client request may wait for its commit before being told to retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

DEFAULT_HOST = "127.0.0.1"
DEFAULT_QUEUE_DEPTH = 64
DEFAULT_BATCH_WINDOW_MS = 5.0
DEFAULT_REQUEST_TIMEOUT_S = 30.0
DEFAULT_FLIGHT_RECORDER_SPANS = 2048
DEFAULT_SLOW_TRACE_THRESHOLD_S = 1.0


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one service instance.

    :param host: bind address.
    :param port: bind port (0 = pick an ephemeral port; read the actual
        one from :attr:`DCService.port` after start).
    :param queue_depth: bounded write-queue capacity.  A write arriving
        at a full queue is rejected immediately with HTTP 429 — requests
        never hang on saturation.
    :param batch_window_ms: after picking up the first queued write, the
        writer waits this long for more requests to coalesce into the
        same batch.  0 disables the window: the writer still merges
        whatever has accumulated while it was busy, but never waits.
    :param request_timeout_s: how long a write request waits for its
        commit before the server answers 503.  The request stays queued
        — the 503 means "outcome unknown, poll /status", not "rolled
        back"; see docs/service.md.
    :param drain_timeout_s: shutdown grace period for the writer to
        drain the queue and checkpoint.
    :param cycle_delay_s: artificial stall at the start of every write
        cycle.  0 in production; the backpressure tests use it to make
        queue saturation and commit timeouts deterministic.
    :param flight_recorder_spans: capacity of the in-memory flight
        recorder's span ring (``GET /debug/trace`` serves from it).
    :param slow_trace_threshold_s: spans at least this long are copied
        into the recorder's slow ring, which outlives the main ring.
    :param metrics_out: when set, the service writes a final JSON metrics
        snapshot to this path on shutdown, after the drain — so the last
        coalesced cycle's counters survive a SIGTERM.
    :param verification_limit: default per-DC violation-count cap for
        ``GET /verify`` when the request carries no ``limit`` parameter.
        ``None`` (the default) counts exactly; a cap turns each check
        into a cheap "holds / violated at least N times" probe.
    :param replicate_listen: serve the replication feed
        (``GET /replication/frames`` and ``/replication/checkpoint``) so
        followers can tail this node's WAL.  Off by default — shipping
        the update stream is opt-in.
    :param min_seq_wait_s: how long a ``min_seq``-bounded read may block
        waiting for a fresh enough snapshot before answering 409.  The
        staleness token's wait budget, on primaries and followers alike.
    :param replication_wait_s_cap: upper bound a ``/replication/frames``
        long-poll honors for its ``wait_s`` parameter (keeps handler
        threads from being parked indefinitely by a bad client).
    :param replication_max_frames: frame-count cap per
        ``/replication/frames`` response (a lagging follower simply
        polls again).
    :param follow_poll_wait_s: how long a follower's replication loop
        asks its source to wait for new frames per poll (the long-poll
        interval; also bounds shutdown latency of the loop).
    """

    host: str = DEFAULT_HOST
    port: int = 0
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S
    drain_timeout_s: float = 60.0
    cycle_delay_s: float = 0.0
    flight_recorder_spans: int = DEFAULT_FLIGHT_RECORDER_SPANS
    slow_trace_threshold_s: float = DEFAULT_SLOW_TRACE_THRESHOLD_S
    metrics_out: Optional[str] = None
    verification_limit: Optional[int] = None
    replicate_listen: bool = False
    min_seq_wait_s: float = 5.0
    replication_wait_s_cap: float = 30.0
    replication_max_frames: int = 512
    follow_poll_wait_s: float = 0.5

    def __post_init__(self):
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if self.flight_recorder_spans < 1:
            raise ValueError("flight_recorder_spans must be >= 1")
        if self.slow_trace_threshold_s < 0:
            raise ValueError("slow_trace_threshold_s must be >= 0")
        if self.verification_limit is not None and self.verification_limit < 1:
            raise ValueError("verification_limit must be >= 1 or None")
        if self.min_seq_wait_s < 0:
            raise ValueError("min_seq_wait_s must be >= 0")
        if self.replication_wait_s_cap < 0:
            raise ValueError("replication_wait_s_cap must be >= 0")
        if self.replication_max_frames < 1:
            raise ValueError("replication_max_frames must be >= 1")
        if self.follow_poll_wait_s < 0:
            raise ValueError("follow_poll_wait_s must be >= 0")
