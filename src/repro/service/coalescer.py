"""Request coalescing: many concurrent writes, one batch-update cycle.

The paper's update model is *batched*: evidence maintenance and DC
enumeration pay per batch, not per row, so N concurrent single-row
inserts applied as one merged batch cost one incremental evidence update
and one WAL append cycle instead of N.  This module turns a slice of the
write queue into that merged batch:

- every request is validated *individually* against the pre-cycle state
  (a bad row or dead rid fails its own request, never the cycle);
- validated deletes are unioned (a rid claimed by an earlier request in
  the cycle rejects later claimants — double-delete is a client error);
- validated inserts are concatenated in arrival order, and each request
  remembers its slice so the newly assigned rids can be handed back;
- the merged batch applies as delete-then-insert, matching the paper's
  (and :meth:`DurableSession.update`'s) decomposition.

Pure logic, no threads: the writer loop in
:mod:`repro.service.server` owns the concurrency.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

OP_INSERT = "insert"
OP_DELETE = "delete"


class WriteRequest:
    """One client write waiting for its commit.

    The submitting thread blocks on :attr:`done`; the writer thread
    stores :attr:`outcome` (a response payload) before setting it.
    :attr:`trace` carries the submitting request's trace context across
    the queue, so the batch cycle that commits it can link back.
    """

    __slots__ = ("op", "payload", "done", "outcome", "trace")

    def __init__(self, op: str, payload, trace=None):
        if op not in (OP_INSERT, OP_DELETE):
            raise ValueError(f"unknown write op {op!r}")
        self.op = op
        self.payload = payload
        self.done = threading.Event()
        self.outcome: Optional[dict] = None
        self.trace = trace

    def resolve(self, outcome: dict) -> None:
        self.outcome = outcome
        self.done.set()

    def __repr__(self) -> str:
        return f"WriteRequest({self.op}, {len(self.payload)} items)"


class CoalescedBatch:
    """The merge of one cycle's admitted requests."""

    __slots__ = ("delete_rids", "insert_rows", "deletes", "inserts", "rejected")

    def __init__(self):
        #: Union of all admitted delete rids (sorted).
        self.delete_rids: List[int] = []
        #: Concatenation of all admitted insert rows, arrival order.
        self.insert_rows: list = []
        #: ``(request, rids)`` per admitted delete request.
        self.deletes: List[Tuple[WriteRequest, list]] = []
        #: ``(request, offset, count)`` per admitted insert request —
        #: the slice of the merged row list (and of the assigned rids).
        self.inserts: List[Tuple[WriteRequest, int, int]] = []
        #: ``(request, message)`` per rejected request.
        self.rejected: List[Tuple[WriteRequest, str]] = []

    @property
    def n_admitted(self) -> int:
        return len(self.deletes) + len(self.inserts)


def coalesce(session, requests: List[WriteRequest]) -> CoalescedBatch:
    """Validate and merge one cycle's requests against ``session``.

    ``session`` is only read (schema, alive rids); nothing is applied.
    Requests are processed in arrival order, so when two requests claim
    the same rid the earlier one wins deterministically.
    """
    batch = CoalescedBatch()
    claimed = set()
    for request in requests:
        if request.op == OP_DELETE:
            try:
                rid_list = session.validate_delete_rids(request.payload)
            except (KeyError, ValueError, TypeError) as exc:
                batch.rejected.append((request, str(exc)))
                continue
            stolen = [rid for rid in rid_list if rid in claimed]
            if stolen:
                batch.rejected.append(
                    (
                        request,
                        f"rid {stolen[0]} already deleted by an earlier "
                        f"request in this batch",
                    )
                )
                continue
            claimed.update(rid_list)
            batch.deletes.append((request, rid_list))
        else:
            try:
                rows = session.validate_insert_rows(request.payload)
            except (KeyError, ValueError, TypeError) as exc:
                batch.rejected.append((request, str(exc)))
                continue
            batch.inserts.append((request, len(batch.insert_rows), len(rows)))
            batch.insert_rows.extend(rows)
    batch.delete_rids = sorted(claimed)
    return batch
