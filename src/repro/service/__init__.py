"""The concurrent DC serving layer (docs/service.md).

Turns a :class:`~repro.durability.session.DurableSession` into a
long-running online system: concurrent writes are coalesced into the
paper's batch-update cycles by a single writer thread, reads are served
lock-free from immutable snapshots, and an online violation-check API
answers "would this row violate the current constraints?" before the row
is committed.

    from repro.service import DCService, ServiceClient, ServiceConfig

    service = DCService(session, ServiceConfig(port=8334))
    service.start()
    client = ServiceClient(base_url=service.url)
    client.insert([[5, "Ema", 2002, 3, 1]])
    client.check([5, "Ana", 2000, 5, 1])     # violates? don't commit.
    service.shutdown()
"""

from repro.service.client import (
    FencedError,
    NotPrimaryError,
    ServiceClient,
    ServiceError,
    ServiceSaturatedError,
    ServiceStaleError,
    ServiceUnavailableError,
)
from repro.service.coalescer import CoalescedBatch, WriteRequest, coalesce
from repro.service.config import ServiceConfig
from repro.service.server import DCService, ServiceStopped
from repro.service.snapshot import Snapshot, build_snapshot

__all__ = [
    "CoalescedBatch",
    "DCService",
    "FencedError",
    "NotPrimaryError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceSaturatedError",
    "ServiceStaleError",
    "ServiceStopped",
    "ServiceUnavailableError",
    "Snapshot",
    "WriteRequest",
    "build_snapshot",
    "coalesce",
]
