"""Immutable published state: what readers see between write cycles.

After every applied batch the writer thread builds one :class:`Snapshot`
and publishes it with a single reference assignment (atomic under the
GIL).  Read endpoints grab the current reference and work on that object
alone, so reads never block on — and are never blocked by — the writer:

- the relation copy and the cloned column indexes share no mutable
  structure with the live engine (see
  :meth:`~repro.evidence.indexes.ColumnIndexes.snapshot_clone`);
- the evidence multiset is copied (counts dict), so rankings computed
  from a snapshot are rankings *of that seq*, not of whatever the writer
  is mid-way through;
- the predicate space is shared by reference — it is frozen at fit()
  time by design (the DC search space is a property of the schema and
  the initial distributions, Section III), so sharing is safe.

A snapshot also answers the serving-time question of the companion
detection line of work: :meth:`Snapshot.check` runs the candidate row
through :func:`~repro.dcs.violations.violating_partners_for_row` against
the snapshot's indexes — an admission check *before* the row is
committed, at index-probe cost.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.bitmaps.bitutils import iter_bits
from repro.dcs.canonical import canonicalize_masks
from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.ranking import rank_dcs
from repro.dcs.violations import violating_partners_for_row
from repro.evidence.evidence_set import EvidenceSet
from repro.relational.relation import Relation
from repro.verification import ProbeCache, Verifier


class Snapshot:
    """One immutable published state of the served session."""

    __slots__ = (
        "seq",
        "created_at",
        "relation",
        "indexes",
        "space",
        "dc_masks",
        "canonical",
        "evidence",
        "status",
        "_rank_cache",
        "_verify_cache",
    )

    def __init__(
        self,
        seq: int,
        relation: Relation,
        indexes,
        space,
        dc_masks: List[int],
        canonical: List[DenialConstraint],
        evidence: EvidenceSet,
        status: dict,
    ):
        self.seq = seq
        self.created_at = time.time()
        self.relation = relation
        self.indexes = indexes
        self.space = space
        self.dc_masks = dc_masks
        self.canonical = canonical
        self.evidence = evidence
        self.status = status
        self._rank_cache = {}
        self._verify_cache = {}

    # -- read endpoints ---------------------------------------------------

    def dcs_payload(self) -> dict:
        """Body of ``GET /dcs``."""
        return {
            "seq": self.seq,
            "n_rows": len(self.relation),
            "n_minimal": len(self.dc_masks),
            "dcs": [str(dc) for dc in self.canonical],
            "masks": [format(mask, "x") for mask in sorted(self.dc_masks)],
        }

    def rank_payload(self, top: int) -> dict:
        """Body of ``GET /rank?top=K`` (per-snapshot memoized)."""
        cached = self._rank_cache.get(top)
        if cached is None:
            entries = rank_dcs(self.canonical, self.evidence, top_k=top or None)
            cached = {
                "seq": self.seq,
                "top": top,
                "ranking": [
                    {
                        "dc": str(entry.dc),
                        "score": round(entry.score, 6),
                        "succinctness": round(entry.succinctness, 6),
                        "coverage": round(entry.coverage, 6),
                    }
                    for entry in entries
                ],
            }
            # Benign race: two readers may compute the same entry; the
            # dict assignment is atomic and both results are identical.
            self._rank_cache[top] = cached
        return cached

    def check(
        self,
        row: Sequence,
        dcs: Optional[List[DenialConstraint]] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """Violation-check a candidate row against this snapshot.

        ``dcs`` defaults to the snapshot's canonical DC set; pass parsed
        constraints to check business rules instead.  ``limit`` caps the
        partners listed per direction (the bit counts stay exact).
        Returns the body of ``POST /check``.

        All DCs of one check share a :class:`~repro.verification.ProbeCache`:
        a minimal cover reuses predicates heavily, so deduplicating the
        ``(column, op, value)`` probes cuts the per-check index work well
        below one probe per predicate per DC.
        """
        violations = []
        cache = ProbeCache(self.indexes)
        for dc in dcs if dcs is not None else self.canonical:
            as_first, as_second = violating_partners_for_row(
                dc, row, self.indexes, probes=cache.partners
            )
            if not as_first and not as_second:
                continue
            violations.append(
                {
                    "dc": str(dc),
                    "mask": format(dc.mask, "x"),
                    "n_partners": (as_first | as_second).bit_count(),
                    "as_first": _rid_list(as_first, limit),
                    "as_second": _rid_list(as_second, limit),
                }
            )
        return {
            "seq": self.seq,
            "ok": not violations,
            "n_violated_dcs": len(violations),
            "violations": violations,
            "probes": {"lookups": cache.lookups, "unique": cache.misses},
        }

    def verify_payload(self, limit: Optional[int] = None, sample: int = 5) -> dict:
        """Body of ``GET /verify`` (per-snapshot memoized).

        Runs the verification kernel over the snapshot's full Σ: per DC,
        does it hold on the published relation, and how many ordered pairs
        violate it (counted exactly, or up to ``limit``).  On a discover-
        mode session every tracked DC holds by construction — the endpoint
        is the self-audit; on a verify-mode session it reports the
        violation counts of the fixed constraint set.
        """
        key = (limit, sample)
        cached = self._verify_cache.get(key)
        if cached is None:
            verifier = Verifier(self.relation, self.indexes, self.space)
            constraints = []
            for mask in sorted(self.dc_masks):
                result = verifier.verify(
                    DenialConstraint(mask, self.space), limit=limit, sample=sample
                )
                constraints.append(
                    {
                        "dc": str(result.dc),
                        "mask": format(mask, "x"),
                        "holds": result.holds,
                        "n_violations": result.n_violations,
                        "truncated": result.truncated,
                        "sample_pairs": [list(pair) for pair in result.pairs],
                        "plan": result.plan,
                    }
                )
            cached = {
                "seq": self.seq,
                "n_rows": len(self.relation),
                "n_constraints": len(constraints),
                "n_violated": sum(
                    1 for entry in constraints if not entry["holds"]
                ),
                "total_violations": sum(
                    entry["n_violations"] for entry in constraints
                ),
                "limit": limit,
                "probe_operations": verifier.probe_operations(),
                "constraints": constraints,
            }
            # Benign race, as for rank_payload: identical results.
            self._verify_cache[key] = cached
        return cached

    def status_payload(self) -> dict:
        """Session-level portion of ``GET /status``."""
        payload = dict(self.status)
        payload["seq"] = self.seq
        payload["snapshot_age_s"] = round(time.time() - self.created_at, 3)
        return payload

    def __repr__(self) -> str:
        return (
            f"Snapshot(seq={self.seq}, {len(self.relation)} rows, "
            f"{len(self.dc_masks)} DCs)"
        )


def _rid_list(bits: int, limit: Optional[int]) -> List[int]:
    rids = []
    for rid in iter_bits(bits):
        if limit is not None and len(rids) >= limit:
            break
        rids.append(rid)
    return rids


def _copy_relation(relation: Relation) -> Relation:
    rows = {rid: relation.row(rid) for rid in relation.rids()}
    return Relation.from_sparse_rows(relation.schema, rows, relation.next_rid)


def build_snapshot(session) -> Snapshot:
    """Materialize the current session state as an immutable snapshot.

    Called by the writer thread between cycles — never concurrently with
    maintenance, so plain reads of the live structures are safe here.
    """
    discoverer = session.discoverer
    relation_copy = _copy_relation(discoverer.relation)
    indexes = discoverer.engine_state.indexes.snapshot_clone(relation_copy)
    dc_masks = list(discoverer.dc_masks)
    canonical = [
        DenialConstraint(mask, discoverer.space)
        for mask in canonicalize_masks(dc_masks, discoverer.space)
    ]
    evidence = EvidenceSet(dict(discoverer.evidence_set.counts))
    return Snapshot(
        seq=session.last_applied_seq,
        relation=relation_copy,
        indexes=indexes,
        space=discoverer.space,
        dc_masks=dc_masks,
        canonical=canonical,
        evidence=evidence,
        status=session.status(),
    )
