"""The long-running DC service: one writer, many lock-free readers.

Architecture (docs/service.md has the operator view)::

    clients ──HTTP──▶ handler threads ──▶ bounded write queue ─▶ writer
                         │                                        │
                         │ reads                    one coalesced batch
                         ▼                          per cycle (WAL+apply)
                  latest Snapshot ◀── publish ────────────┘

- **Write path**: POST /insert and /delete enqueue a
  :class:`~repro.service.coalescer.WriteRequest` and block until the
  writer commits it (or the per-request timeout fires).  The single
  writer thread drains the queue into one merged delta per cycle — N
  concurrent clients pay one incremental evidence update and one WAL
  append cycle instead of N.
- **Read path**: GET /dcs, /rank, /status and POST /check serve from the
  latest published :class:`~repro.service.snapshot.Snapshot` without
  taking any lock the writer can hold.
- **Backpressure**: a full queue rejects instantly with 429; a commit
  that outlives the request timeout answers 503 with outcome unknown.
- **Shutdown**: SIGTERM (or POST /shutdown) stops admissions, drains the
  queue, writes a final checkpoint, and closes the session — the durable
  state equals the serially-applied commit history.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.violations import UnsupportedProbeError
from repro.durability.session import SessionFencedError
from repro.observability import (
    LATENCY_BOUNDS_S,
    PROMETHEUS_CONTENT_TYPE,
    FlightRecorder,
    TraceContext,
    get_logger,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.observability import flight, tracectx
from repro.observability.flight import set_recorder, split_counters, trace_span
from repro.predicates.parser import parse_dc
from repro.service import protocol
from repro.service.coalescer import (
    OP_DELETE,
    OP_INSERT,
    WriteRequest,
    coalesce,
)
from repro.service.config import ServiceConfig
from repro.service.snapshot import Snapshot, build_snapshot

logger = get_logger(__name__)

#: How often the idle writer wakes to notice a shutdown request.
_IDLE_POLL_S = 0.05

#: Deterministic engine work counters split per request each cycle.  Any
#: probe counter would do; these are the ones Rapidash-style cost models
#: care about (pairs compared, index probes, evidence ops).
_WORK_COUNTERS = (
    "evidence.pairs_compared",
    "evidence.index_probes",
    "evidence.context_pipelines",
    "evidence.contexts_out",
    "evidence.pairs_inferred",
)


class ServiceStopped(RuntimeError):
    """A write was submitted to a service that no longer accepts any."""


class DCService:
    """Serves one :class:`~repro.durability.session.DurableSession`.

    The session (and its discoverer) is owned by the writer thread from
    :meth:`start` until the drain completes; everything any other thread
    needs is published through immutable snapshots.
    """

    #: What this node is: ``"primary"`` accepts writes; a follower
    #: subclass (:class:`~repro.replication.service.FollowerService`)
    #: flips this to ``"follower"`` until promoted.
    role = "primary"

    def __init__(self, session, config: Optional[ServiceConfig] = None):
        self.session = session
        self.config = config or ServiceConfig()
        self.instrumentation = session.discoverer.instrumentation
        self._queue: "queue.Queue[WriteRequest]" = queue.Queue(
            maxsize=self.config.queue_depth
        )
        #: Serializes metric mutation/export between handler threads,
        #: the writer, and /metrics (dict iteration vs. resize).
        self._metrics_lock = threading.Lock()
        self._stop = threading.Event()  # no new writes admitted
        self._drained = threading.Event()  # writer finished its drain
        self._shutdown_requested = threading.Event()
        self._failure: Optional[BaseException] = None
        #: Applied operations in commit order (the serial oracle of the
        #: concurrency tests, and the seed of any future replication).
        self.commit_log: list = []
        #: Seq of every snapshot ever published (reads must only ever
        #: observe members of this list).
        self.published_seqs: list = []
        session.export_gauges()
        #: Signaled on every snapshot publish; min_seq-bounded reads and
        #: replication long-polls wait on it instead of busy-spinning.
        self._publish_cond = threading.Condition()
        self._snapshot = build_snapshot(session)
        self.published_seqs.append(self._snapshot.seq)
        self._writer: Optional[threading.Thread] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        #: Lazily built WAL frame cache behind /replication/frames
        #: (handler threads share it under the lock).
        self._feed = None
        self._feed_lock = threading.Lock()
        self.started_at = time.time()
        #: Ring buffer of recent spans, served at GET /debug/trace.
        self.flight = FlightRecorder(
            max_spans=self.config.flight_recorder_spans,
            slow_threshold_s=self.config.slow_trace_threshold_s,
        )
        self._previous_recorder: Optional[FlightRecorder] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind the HTTP server and start the writer thread."""
        self._start_http()
        self._start_writer()
        logger.debug("service listening on %s:%d", self.host, self.port)

    def _start_http(self) -> None:
        self._previous_recorder = set_recorder(self.flight)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="dc-service-http",
            daemon=True,
        )
        self._http_thread.start()

    def _start_writer(self) -> None:
        self._writer = threading.Thread(
            target=self._writer_loop, name="dc-service-writer", daemon=True
        )
        self._writer.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0] if self._httpd else self.config.host

    @property
    def port(self) -> int:
        return self._httpd.server_port if self._httpd else self.config.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Signal-safe: ask the service to drain and stop."""
        self._shutdown_requested.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handle(signum, frame):
            logger.debug("signal %d: draining service", signum)
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def serve_forever(self) -> None:
        """Block until a shutdown is requested, then drain and close."""
        if self._httpd is None:
            self.start()
        self._shutdown_requested.wait()
        self.shutdown()

    def shutdown(self) -> None:
        """Drain the write queue, checkpoint, and stop serving.

        Idempotent.  After it returns the session directory holds
        exactly the serially-applied commit history (final checkpoint
        included) and the HTTP socket is closed.
        """
        self._stop.set()
        self._shutdown_requested.set()
        if self._writer is not None:
            self._drained.wait(timeout=self.config.drain_timeout_s)
        else:
            self._drain_queue()  # never started: fail queued writes fast
        if self.session._wal.is_open:
            if self._failure is None:
                if self.session.status()["pending_wal_records"]:
                    self.session.checkpoint()
                self.session.export_gauges()
            self.session.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._feed is not None:
            self._feed.close()
        with self._publish_cond:  # release min_seq waiters promptly
            self._publish_cond.notify_all()
        # The drain is complete: the registry now holds the last cycle's
        # counters, so this is the one snapshot a SIGTERM must not lose.
        if self.config.metrics_out:
            try:
                self.write_metrics_snapshot(self.config.metrics_out)
            except OSError as exc:
                logger.error("final metrics snapshot failed: %s", exc)
        if flight.get_recorder() is self.flight:
            set_recorder(self._previous_recorder)
        logger.debug(
            "service stopped after %d commits", len(self.commit_log)
        )

    def write_metrics_snapshot(self, path) -> None:
        """Write the live registry to ``path`` as deterministic JSON."""
        with self._metrics_lock:
            snapshot = self.instrumentation.metrics.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(snapshot_to_json(snapshot))
            handle.write("\n")

    # -- write path -------------------------------------------------------

    def submit(
        self, op: str, payload, timeout: Optional[float] = None
    ) -> dict:
        """Enqueue one write and wait for its outcome.

        Returns the response payload; raises :class:`queue.Full` on
        saturation and :class:`ServiceStopped` when draining.  A timeout
        returns a ``status: "timeout"`` payload (the request stays
        queued; its outcome is unknown to the caller).
        """
        if self._stop.is_set():
            raise ServiceStopped("service is draining")
        if self._failure is not None:
            raise ServiceStopped(f"writer failed: {self._failure}")
        if self.session.is_fenced:
            # A deposed primary must stop acknowledging immediately: the
            # fleet moved on to a newer epoch and nothing written here
            # will ever replicate.
            self._metric_inc("fleet.writes_fenced_total")
            raise protocol.FencedWriteError(
                self.session.epoch, self.session.fenced_below
            )
        request = WriteRequest(op, payload, trace=tracectx.current())
        self._queue.put_nowait(request)  # queue.Full propagates -> 429
        self._metric_gauge("service.queue.depth", self._queue.qsize())
        wait_s = timeout if timeout is not None else self.config.request_timeout_s
        if not request.done.wait(wait_s):
            self._metric_inc("service.requests_timeout_total")
            return {
                "status": "timeout",
                "error": protocol.ERR_TIMEOUT,
                "message": (
                    f"commit did not land within {wait_s:.3f}s; the write "
                    f"stays queued and may still be applied"
                ),
            }
        return request.outcome

    def _writer_loop(self) -> None:
        try:
            while True:
                try:
                    first = self._queue.get(timeout=_IDLE_POLL_S)
                except queue.Empty:
                    if self._stop.is_set():
                        break
                    continue
                batch = [first]
                window_s = self.config.batch_window_ms / 1000.0
                if window_s > 0 and not self._stop.is_set():
                    deadline = time.monotonic() + window_s
                    while True:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        try:
                            batch.append(self._queue.get(timeout=remaining))
                        except queue.Empty:
                            break
                while True:  # merge whatever else already accumulated
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                self._apply_cycle(batch)
        finally:
            self._drain_queue()
            self._drained.set()

    def _drain_queue(self) -> None:
        """Apply (or fail) everything still queued at shutdown."""
        leftovers = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        if not leftovers:
            return
        if self._failure is None:
            self._apply_cycle(leftovers)
        else:
            for request in leftovers:
                request.resolve(
                    {
                        "status": "failed",
                        "error": protocol.ERR_INTERNAL,
                        "message": f"writer failed: {self._failure}",
                    }
                )

    def _apply_cycle(self, requests: list) -> None:
        """Validate, merge, durably apply, publish, respond.

        The cycle runs under its own freshly minted trace context whose
        cycle span *links* every contributing request's trace id — the
        join point ``/debug/trace`` follows from a request back to the
        batch that served it.  WAL appends and incremental maintenance
        inside :meth:`DurableSession.insert`/``delete`` inherit the cycle
        context through the writer thread's locals.
        """
        if self.config.cycle_delay_s:
            time.sleep(self.config.cycle_delay_s)
        with self._metrics_lock:
            self.instrumentation.inc("service.batches_total")
            self.instrumentation.inc(
                "service.coalesced_requests_total", len(requests)
            )
            self.instrumentation.observe("service.batch.size", len(requests))
        batch = coalesce(self.session, requests)
        for request, message in batch.rejected:
            self._metric_inc("service.requests_rejected_total")
            request.resolve(
                {
                    "status": "rejected",
                    "error": protocol.ERR_BAD_REQUEST,
                    "message": message,
                }
            )
        if not batch.n_admitted:
            return
        cycle_context = TraceContext.mint()
        links = sorted({
            request.trace.trace_id
            for request in requests
            if request.trace is not None
        })
        started = time.perf_counter()
        with self._metrics_lock:
            work_before = {
                name: self.instrumentation.metrics.counter(name)
                for name in _WORK_COUNTERS
            }
        with tracectx.activate(cycle_context), trace_span(
            "service.cycle",
            attrs={"requests": len(requests), "admitted": batch.n_admitted},
            links=links,
        ) as cycle_span:
            try:
                new_rids: list = []
                if batch.delete_rids:
                    self.session.delete(batch.delete_rids)
                    self.commit_log.append(
                        {
                            "seq": self.session.last_applied_seq,
                            "op": OP_DELETE,
                            "rids": list(batch.delete_rids),
                        }
                    )
                if batch.insert_rows:
                    result = self.session.insert(batch.insert_rows)
                    new_rids = result.rids
                    self.commit_log.append(
                        {
                            "seq": self.session.last_applied_seq,
                            "op": OP_INSERT,
                            "rows": [list(row) for row in batch.insert_rows],
                            "rids": list(new_rids),
                        }
                    )
            except SessionFencedError as exc:
                # Fenced between admission and apply: the batch fails
                # with the hard 409 every zombie write gets, but the
                # writer itself stays healthy (the node may rejoin the
                # fleet as a follower without a restart).
                self._metric_inc("fleet.writes_fenced_total")
                outcome = {
                    "status": "fenced",
                    "error": protocol.ERR_FENCED,
                    "message": str(exc),
                    "epoch": exc.epoch,
                    "fenced_below": exc.fenced_below,
                }
                for request, _ in batch.deletes:
                    request.resolve(dict(outcome))
                for request, _, _ in batch.inserts:
                    request.resolve(dict(outcome))
                return
            except BaseException as exc:  # writer must never die silently
                self._failure = exc
                self._stop.set()
                logger.error("writer failed applying a batch: %s", exc)
                self.flight.record_event(
                    "writer_failure",
                    error=str(exc),
                    cycle_trace_id=cycle_context.trace_id,
                )
                for request, _ in batch.deletes:
                    request.resolve(_internal_failure(exc))
                for request, _, _ in batch.inserts:
                    request.resolve(_internal_failure(exc))
                return
            seq = self.session.last_applied_seq
            with self._metrics_lock:
                self.instrumentation.observe(
                    "service.cycle_seconds", time.perf_counter() - started
                )
                self.session.export_gauges()
                work_totals = {
                    name: self.instrumentation.metrics.counter(name)
                    - work_before[name]
                    for name in _WORK_COUNTERS
                }
            if cycle_span is not None:
                cycle_span["attrs"]["seq"] = seq
                cycle_span["attrs"]["work"] = dict(work_totals)
        # Per-request work attribution: split the cycle's counter deltas
        # across admitted requests, weighted by row count, exactly (the
        # shares always sum back to the cycle totals).
        weights = [max(1, len(rids)) for _, rids in batch.deletes]
        weights += [max(1, count) for _, _, count in batch.inserts]
        shares = split_counters(work_totals, weights)
        self._publish(build_snapshot(self.session))
        position = 0
        for request, rid_list in batch.deletes:
            request.resolve(
                {
                    "status": "committed",
                    "seq": seq,
                    "rids": rid_list,
                    "work": shares[position],
                    "cycle_trace_id": cycle_context.trace_id,
                }
            )
            position += 1
        for request, offset, count in batch.inserts:
            request.resolve(
                {
                    "status": "committed",
                    "seq": seq,
                    "rids": new_rids[offset : offset + count],
                    "work": shares[position],
                    "cycle_trace_id": cycle_context.trace_id,
                }
            )
            position += 1

    # -- read path --------------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        """The latest published snapshot (atomic reference read)."""
        return self._snapshot

    def _publish(self, snapshot: Snapshot) -> None:
        """Publish a snapshot and wake everything waiting for its seq."""
        self._snapshot = snapshot
        self.published_seqs.append(snapshot.seq)
        with self._publish_cond:
            self._publish_cond.notify_all()

    def wait_for_min_seq(self, min_seq: int) -> Snapshot:
        """The latest snapshot once it reaches ``min_seq``, else 409.

        The cross-node read-your-writes token: a client that observed a
        commit at seq S passes ``min_seq=S`` to any replica and either
        gets a snapshot at least that fresh (waiting up to the config's
        ``min_seq_wait_s`` for replication/publication to catch up) or
        an explicit :class:`~repro.service.protocol.StaleReadError`.
        """
        snapshot = self._snapshot
        if snapshot.seq >= min_seq:
            return snapshot
        deadline = time.monotonic() + self.config.min_seq_wait_s
        with self._publish_cond:
            while True:
                snapshot = self._snapshot
                if snapshot.seq >= min_seq:
                    return snapshot
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise protocol.StaleReadError(min_seq, snapshot.seq)
                self._publish_cond.wait(remaining)

    # -- replication feed (the primary side of WAL shipping) --------------

    def _replication_feed(self):
        if not self.config.replicate_listen:
            return None
        if self._feed is None:
            from repro.replication.source import ReplicationFeed

            self._feed = ReplicationFeed(self.session.directory)
        return self._feed

    def replication_frames_payload(
        self,
        after_seq: int,
        wait_s: float,
        max_frames: int,
        requester_epoch: Optional[int] = None,
    ) -> dict:
        """Answer ``GET /replication/frames``: hex frames after a seq.

        Long-polls: with no new frames available, the handler thread
        parks on the publish condition until a commit lands or ``wait_s``
        (capped by config) runs out, so an idle fleet costs no CPU.

        ``requester_epoch`` is the poller's fencing heartbeat: a
        requester that has seen a newer epoch than this node proves this
        node's timeline is dead — the node fences *itself* and answers
        409 rather than feed a chain from dead history.  That is how
        epoch knowledge flows against the direction of replication.
        """
        feed = self._replication_feed()
        if feed is None:
            raise protocol.ProtocolError(
                "replication is not enabled on this node "
                "(start it with --replicate-listen)"
            )
        if (
            requester_epoch is not None
            and requester_epoch > self.session.epoch
        ):
            self._metric_inc("fleet.polls_fenced_total")
            self.session.fence(requester_epoch)
            raise protocol.FencedWriteError(
                self.session.epoch, self.session.fenced_below
            )
        wait_s = max(0.0, min(wait_s, self.config.replication_wait_s_cap))
        max_frames = max(
            1, min(max_frames, self.config.replication_max_frames)
        )
        deadline = time.monotonic() + wait_s
        while True:
            with self._feed_lock:
                batch = feed.fetch(after_seq, max_frames)
            if batch.frames or batch.snapshot_needed:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0 or self._stop.is_set():
                break
            with self._publish_cond:
                self._publish_cond.wait(min(remaining, _IDLE_POLL_S * 4))
        self._metric_inc("service.replication_polls_total")
        return {
            "frames": [
                {"seq": frame.seq, "raw": frame.raw.hex(), "epoch": frame.epoch}
                for frame in batch.frames
            ],
            "last_seq": batch.last_seq,
            "checkpoint_seq": batch.checkpoint_seq,
            "snapshot_needed": batch.snapshot_needed,
            "epoch": batch.epoch,
            "source_seq": batch.source_seq,
        }

    def replication_checkpoint_payload(self) -> dict:
        """Answer ``GET /replication/checkpoint``: the newest checkpoint
        document verbatim (the follower re-validates its checksum)."""
        from repro.durability.checkpoint import list_checkpoints
        from repro.durability.session import CHECKPOINT_DIR

        if not self.config.replicate_listen:
            raise protocol.ProtocolError(
                "replication is not enabled on this node "
                "(start it with --replicate-listen)"
            )
        checkpoint_dir = os.path.join(self.session.directory, CHECKPOINT_DIR)
        self._metric_inc("service.replication_checkpoint_fetches_total")
        for path in list_checkpoints(checkpoint_dir):
            try:
                with open(path, "rb") as handle:
                    document = json.load(handle)
            except (OSError, ValueError):
                continue
            return {"document": document}
        raise protocol.ProtocolError("no checkpoint available to replicate")

    def promote_payload(self, epoch: Optional[int] = None) -> dict:
        """Answer ``POST /promote`` (idempotent on a primary)."""
        return {
            "role": self.role,
            "promoted": False,
            "epoch": self.session.epoch,
        }

    def fence_payload(self, epoch: int) -> dict:
        """Answer ``POST /fence``: declare every epoch below dead.

        The failover orchestrator's first move against a suspected-dead
        primary that might still be alive: after this lands (durably),
        the node hard-409s every write, so nothing acknowledged here can
        postdate the fence.
        """
        changed = self.session.fence(epoch)
        if changed:
            self._metric_inc("fleet.fences_total")
        return {
            "fenced_below": self.session.fenced_below,
            "epoch": self.session.epoch,
            "fenced": self.session.is_fenced,
            "changed": changed,
        }

    def follow_payload(self, url: str) -> dict:
        """Answer ``POST /follow`` — only meaningful on a follower."""
        raise protocol.ProtocolError(
            "this node is a primary; /follow repoints followers"
        )

    @property
    def upstream_url(self) -> Optional[str]:
        """Where this node replicates from (None on a primary)."""
        return None

    def topology_payload(self) -> dict:
        """Answer ``GET /topology``: this node's view of its own place.

        The fleet coordinator and :class:`~repro.fleet.client.FleetClient`
        aggregate these per-node answers into the routing table.
        """
        return {
            "role": self.role,
            "url": self.url,
            "epoch": self.session.epoch,
            "fenced": self.session.is_fenced,
            "fenced_below": self.session.fenced_below,
            "seq": self.session.last_applied_seq,
            "upstream_url": self.upstream_url,
            "serving": not self._stop.is_set(),
        }

    def status_payload(self) -> dict:
        payload = self.snapshot.status_payload()
        payload.update(
            {
                "role": self.role,
                "serving": not self._stop.is_set(),
                "uptime_s": round(time.time() - self.started_at, 3),
                "queue_depth": self._queue.qsize(),
                "queue_capacity": self.config.queue_depth,
                "batch_window_ms": self.config.batch_window_ms,
                "commits": len(self.commit_log),
                "epoch": self.session.epoch,
                "fenced": self.session.is_fenced,
                "upstream_url": self.upstream_url,
            }
        )
        return payload

    def metrics_text(self) -> str:
        """Prometheus exposition of the live registry (/metrics)."""
        with self._metrics_lock:
            for attempt in range(3):
                try:
                    snapshot = self.instrumentation.metrics.snapshot()
                    break
                except RuntimeError:  # resized mid-iteration by a probe
                    if attempt == 2:
                        raise
        return snapshot_to_prometheus(snapshot)

    def check_payload(self, body: dict, snapshot: Optional[Snapshot] = None) -> dict:
        """Violation-check a candidate row against the latest snapshot."""
        if snapshot is None:
            snapshot = self.snapshot
        row = protocol.coerce_row(
            snapshot.relation.schema, protocol.require_field(body, "row", list)
        )
        dcs = None
        if "dcs" in body:
            texts = protocol.require_field(body, "dcs", list)
            try:
                dcs = [
                    DenialConstraint(
                        parse_dc(text, snapshot.space), snapshot.space
                    )
                    for text in texts
                ]
            except (KeyError, ValueError) as exc:
                raise protocol.ProtocolError(f"bad DC: {exc}") from None
        limit = body.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise protocol.ProtocolError("limit must be a non-negative int")
        self._metric_inc("service.checks_total")
        try:
            return snapshot.check(row, dcs=dcs, limit=limit)
        except UnsupportedProbeError as exc:
            # A DC that the snapshot's indexes cannot answer (an order
            # operator against a column with no range index) is a bad
            # request, not an internal failure.
            raise protocol.ProtocolError(f"unsupported DC: {exc}") from None

    def verify_payload(
        self, limit: Optional[int] = None, snapshot: Optional[Snapshot] = None
    ) -> dict:
        """Verify the snapshot's full Σ with the verification kernel."""
        if snapshot is None:
            snapshot = self.snapshot
        if limit is None:
            limit = self.config.verification_limit
        self._metric_inc("service.verifies_total")
        return snapshot.verify_payload(limit=limit)

    def log_payload(self, since: int) -> dict:
        """Commit history with seq > ``since`` (bounded by construction)."""
        entries = [
            entry for entry in list(self.commit_log) if entry["seq"] > since
        ]
        return {
            "since": since,
            "last_seq": self.session.last_applied_seq,
            "entries": entries,
        }

    def debug_trace_payload(self, query: dict) -> dict:
        """Answer ``GET /debug/trace`` from the flight recorder.

        ``?trace_id=`` resolves one trace (links followed), ``?slow=1``
        lists the slow ring, otherwise the most recent spans and events;
        ``?limit=`` bounds any listing.
        """
        limit_raw = query.get("limit", ["100"])[0]
        try:
            limit = max(1, int(limit_raw))
        except ValueError:
            raise protocol.ProtocolError("limit must be an int") from None
        trace_id = query.get("trace_id", [None])[0]
        if trace_id:
            return self.flight.trace_tree(trace_id)
        if query.get("slow", ["0"])[0] not in ("0", "", "false"):
            return {
                "slow_threshold_s": self.flight.slow_threshold_s,
                "slow": self.flight.slow_spans(limit),
            }
        return {
            "spans": self.flight.spans(limit),
            "events": self.flight.events(limit),
        }

    # -- metric helpers (handler threads go through the lock) -------------

    def _metric_inc(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.instrumentation.inc(name, amount)

    def _metric_gauge(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.instrumentation.set_gauge(name, value)

    def _metric_observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.instrumentation.observe(name, value)

    def _finish_request(
        self, method: str, endpoint: str, elapsed: float, trace_id: str
    ) -> None:
        """One lock acquisition for everything a finished request emits:
        the aggregate latency histogram, the per-endpoint histogram with
        the request's trace id as bucket exemplar, and the request count.
        """
        with self._metrics_lock:
            self.instrumentation.observe("service.request_seconds", elapsed)
            self.instrumentation.observe(
                f"service.endpoint_seconds.{method} {endpoint}",
                elapsed,
                bounds=LATENCY_BOUNDS_S,
                exemplar=trace_id,
            )
            self.instrumentation.inc("service.requests_total")


def _internal_failure(exc: BaseException) -> dict:
    return {
        "status": "failed",
        "error": protocol.ERR_INTERNAL,
        "message": f"writer failed: {exc}",
    }


def _make_handler(service: DCService):
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-dc-service/1.0"

        # -- plumbing --------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            logger.debug("%s %s", self.address_string(), format % args)

        def _respond(
            self,
            status: int,
            payload: dict,
            headers: Optional[dict] = None,
        ) -> None:
            trace = getattr(self, "_trace", None)
            if trace is not None:
                # Shallow-copy before stamping: read payloads (rank, dcs)
                # are memoized on the shared snapshot, and mutating them
                # would leak the first requester's trace id to everyone.
                payload = dict(payload)
                payload["trace_id"] = trace.trace_id
            body = protocol.encode(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if trace is not None:
                self.send_header("X-Trace-Id", trace.trace_id)
            for name, value in (headers or {}).items():
                self.send_header(name, str(value))
            self.end_headers()
            self.wfile.write(body)

        def _respond_error(self, code: str, message: str) -> None:
            self._respond(
                protocol.STATUS_OF_ERROR[code],
                {"status": "error", "error": code, "message": message},
            )

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            return protocol.decode(self.rfile.read(length))

        def _route(self, method: str) -> None:
            started = time.perf_counter()
            url = urlsplit(self.path)
            # Adopt the caller's trace or mint one: every response
            # carries a trace id either way.
            self._trace = TraceContext.from_traceparent(
                self.headers.get("traceparent")
            ) or TraceContext.mint()
            known = (method, url.path) in _ROUTES
            endpoint = url.path if known else "unknown"
            try:
                with tracectx.activate(self._trace), trace_span(
                    f"http.{method} {url.path}"
                ):
                    handler = _ROUTES.get((method, url.path))
                    if handler is None:
                        self._respond_error(
                            protocol.ERR_NOT_FOUND,
                            f"no such endpoint: {method} {url.path}",
                        )
                        return
                    handler(self, parse_qs(url.query))
            except protocol.ProtocolError as exc:
                self._respond_error(protocol.ERR_BAD_REQUEST, str(exc))
            except protocol.StaleReadError as exc:
                service._metric_inc("service.requests_stale_total")
                retry_after = max(
                    1, int(round(service.config.min_seq_wait_s))
                )
                self._respond(
                    protocol.STATUS_OF_ERROR[protocol.ERR_STALE],
                    {
                        "status": "error",
                        "error": protocol.ERR_STALE,
                        "message": str(exc),
                        "min_seq": exc.min_seq,
                        "seq": exc.seq,
                        "retry_after": retry_after,
                    },
                    headers={"Retry-After": retry_after},
                )
            except (protocol.FencedWriteError, SessionFencedError) as exc:
                service._metric_inc("service.requests_fenced_total")
                self._respond(
                    protocol.STATUS_OF_ERROR[protocol.ERR_FENCED],
                    {
                        "status": "error",
                        "error": protocol.ERR_FENCED,
                        "message": str(exc),
                        "epoch": exc.epoch,
                        "fenced_below": exc.fenced_below,
                    },
                )
            except protocol.NotPrimaryError as exc:
                service._metric_inc("service.requests_not_primary_total")
                self._respond(
                    protocol.STATUS_OF_ERROR[protocol.ERR_NOT_PRIMARY],
                    {
                        "status": "error",
                        "error": protocol.ERR_NOT_PRIMARY,
                        "message": str(exc),
                        "primary_url": exc.primary_url,
                    },
                )
            except queue.Full:
                service._metric_inc("service.requests_saturated_total")
                service.flight.record_event(
                    "queue_full",
                    endpoint=f"{method} {url.path}",
                    trace_id=self._trace.trace_id,
                )
                self._respond_error(
                    protocol.ERR_SATURATED,
                    f"write queue is full "
                    f"(depth {service.config.queue_depth}); retry later",
                )
            except ServiceStopped as exc:
                self._respond_error(protocol.ERR_DRAINING, str(exc))
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as exc:  # pragma: no cover - defensive
                logger.error("request handler failed: %s", exc)
                try:
                    self._respond_error(protocol.ERR_INTERNAL, str(exc))
                except Exception:
                    pass
            finally:
                service._finish_request(
                    method,
                    endpoint,
                    time.perf_counter() - started,
                    self._trace.trace_id,
                )

        def do_GET(self):  # noqa: N802 - stdlib casing
            self._route("GET")

        def do_POST(self):  # noqa: N802 - stdlib casing
            self._route("POST")

        # -- endpoints -------------------------------------------------

        def _bounded_snapshot(self, query, body=None):
            """The snapshot a read may serve, honoring ``min_seq``.

            The staleness token can arrive as a query parameter (GETs)
            or a body field (POST /check); absent either, the latest
            snapshot is served unconditionally.
            """
            raw = query.get("min_seq", [None])[0]
            if raw is None and body is not None:
                raw = body.get("min_seq")
            if raw is None:
                return service.snapshot
            try:
                min_seq = int(raw)
            except (TypeError, ValueError):
                raise protocol.ProtocolError(
                    "min_seq must be an int"
                ) from None
            return service.wait_for_min_seq(min_seq)

        def _get_dcs(self, query):
            self._respond(200, self._bounded_snapshot(query).dcs_payload())

        def _get_rank(self, query):
            try:
                top = int(query.get("top", ["10"])[0])
            except ValueError:
                raise protocol.ProtocolError("top must be an int") from None
            snapshot = self._bounded_snapshot(query)
            self._respond(200, snapshot.rank_payload(max(top, 0)))

        def _get_status(self, query):
            self._respond(200, service.status_payload())

        def _get_verify(self, query):
            limit_raw = query.get("limit", [None])[0]
            limit = None
            if limit_raw is not None:
                try:
                    limit = int(limit_raw)
                except ValueError:
                    raise protocol.ProtocolError(
                        "limit must be an int"
                    ) from None
                if limit < 1:
                    raise protocol.ProtocolError("limit must be >= 1")
            snapshot = self._bounded_snapshot(query)
            self._respond(
                200, service.verify_payload(limit=limit, snapshot=snapshot)
            )

        def _get_metrics(self, query):
            text = service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(text)))
            trace = getattr(self, "_trace", None)
            if trace is not None:
                self.send_header("X-Trace-Id", trace.trace_id)
            self.end_headers()
            self.wfile.write(text)

        def _get_debug_trace(self, query):
            self._respond(200, service.debug_trace_payload(query))

        def _get_log(self, query):
            try:
                since = int(query.get("since", ["-1"])[0])
            except ValueError:
                raise protocol.ProtocolError("since must be an int") from None
            self._respond(200, service.log_payload(since))

        def _post_write(self, op: str):
            body = self._read_body()
            field = "rows" if op == OP_INSERT else "rids"
            payload = protocol.require_field(body, field, list)
            timeout = body.get("timeout")
            if timeout is not None and not isinstance(timeout, (int, float)):
                raise protocol.ProtocolError("timeout must be a number")
            outcome = service.submit(op, payload, timeout=timeout)
            status = {
                "committed": 200,
                "rejected": 400,
                "timeout": 503,
                "failed": 500,
                "fenced": 409,
            }[outcome["status"]]
            self._respond(status, outcome)

        def _post_insert(self, query):
            self._post_write(OP_INSERT)

        def _post_delete(self, query):
            self._post_write(OP_DELETE)

        def _post_check(self, query):
            body = self._read_body()
            snapshot = self._bounded_snapshot(query, body)
            self._respond(
                200, service.check_payload(body, snapshot=snapshot)
            )

        def _post_shutdown(self, query):
            service.request_shutdown()
            self._respond(200, {"status": "draining"})

        def _post_promote(self, query):
            body = self._read_body()
            epoch = body.get("epoch")
            if epoch is not None and not isinstance(epoch, int):
                raise protocol.ProtocolError("epoch must be an int")
            self._respond(200, service.promote_payload(epoch=epoch))

        def _post_fence(self, query):
            body = self._read_body()
            epoch = protocol.require_field(body, "epoch", int)
            self._respond(200, service.fence_payload(epoch))

        def _post_follow(self, query):
            body = self._read_body()
            url = protocol.require_field(body, "url", str)
            self._respond(200, service.follow_payload(url))

        def _get_topology(self, query):
            self._respond(200, service.topology_payload())

        def _get_replication_frames(self, query):
            try:
                after_seq = int(query.get("after_seq", ["0"])[0])
                wait_s = float(query.get("wait_s", ["0"])[0])
                max_frames = int(
                    query.get(
                        "max_frames",
                        [str(service.config.replication_max_frames)],
                    )[0]
                )
                epoch_raw = query.get("epoch", [None])[0]
                requester_epoch = (
                    int(epoch_raw) if epoch_raw is not None else None
                )
            except ValueError:
                raise protocol.ProtocolError(
                    "after_seq/max_frames/epoch must be ints, wait_s a number"
                ) from None
            self._respond(
                200,
                service.replication_frames_payload(
                    after_seq,
                    wait_s,
                    max_frames,
                    requester_epoch=requester_epoch,
                ),
            )

        def _get_replication_checkpoint(self, query):
            self._respond(200, service.replication_checkpoint_payload())

    _ROUTES = {
        ("GET", "/dcs"): Handler._get_dcs,
        ("GET", "/rank"): Handler._get_rank,
        ("GET", "/status"): Handler._get_status,
        ("GET", "/verify"): Handler._get_verify,
        ("GET", "/metrics"): Handler._get_metrics,
        ("GET", "/debug/trace"): Handler._get_debug_trace,
        ("GET", "/log"): Handler._get_log,
        ("GET", "/replication/frames"): Handler._get_replication_frames,
        ("GET", "/replication/checkpoint"): (
            Handler._get_replication_checkpoint
        ),
        ("POST", "/insert"): Handler._post_insert,
        ("POST", "/delete"): Handler._post_delete,
        ("POST", "/check"): Handler._post_check,
        ("GET", "/topology"): Handler._get_topology,
        ("POST", "/shutdown"): Handler._post_shutdown,
        ("POST", "/promote"): Handler._post_promote,
        ("POST", "/fence"): Handler._post_fence,
        ("POST", "/follow"): Handler._post_follow,
    }

    return Handler
