"""The JSON-over-HTTP protocol of the serving layer.

Kept separate from the server so the client, the server, and the tests
agree on one vocabulary: endpoint paths, error codes, and the row
coercion that undoes JSON's numeric lossiness (an integral float comes
back from ``json.loads`` as an ``int``) before a row touches the schema.

Status-code semantics (docs/service.md spells out the full contract):

- ``200`` — success;
- ``400`` — the request itself is invalid (bad JSON, schema mismatch,
  dead rid): retrying unchanged will fail again;
- ``404`` — unknown endpoint;
- ``409`` — the read carried a ``min_seq`` staleness bound this node
  could not reach within its wait budget: retry here later, or read a
  fresher node;
- ``421`` — the node is a read-only follower and the request was a
  write: redirect to the ``primary_url`` in the response;
- ``429`` — the write queue is full (backpressure): retry with backoff;
- ``503`` — the service is draining, or the request timed out waiting
  for its commit (outcome unknown — the write may still land);
- ``500`` — internal failure, the writer is stopped.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema

#: Error codes carried in the ``"error"`` field of non-200 responses.
ERR_BAD_REQUEST = "bad_request"
ERR_NOT_FOUND = "not_found"
ERR_STALE = "stale"
ERR_FENCED = "fenced"
ERR_NOT_PRIMARY = "not_primary"
ERR_SATURATED = "saturated"
ERR_TIMEOUT = "timeout"
ERR_DRAINING = "draining"
ERR_INTERNAL = "internal"

#: Map error code -> HTTP status.
STATUS_OF_ERROR = {
    ERR_BAD_REQUEST: 400,
    ERR_NOT_FOUND: 404,
    ERR_STALE: 409,
    ERR_FENCED: 409,
    ERR_NOT_PRIMARY: 421,
    ERR_SATURATED: 429,
    ERR_TIMEOUT: 503,
    ERR_DRAINING: 503,
    ERR_INTERNAL: 500,
}


class ProtocolError(ValueError):
    """A request body that cannot be honored (maps to HTTP 400)."""


class StaleReadError(RuntimeError):
    """A ``min_seq``-bounded read could not be satisfied (HTTP 409).

    Carries the snapshot seq the node *could* serve so clients can see
    how far behind it is.
    """

    def __init__(self, min_seq: int, seq: int):
        super().__init__(
            f"snapshot seq {seq} has not reached min_seq {min_seq}"
        )
        self.min_seq = min_seq
        self.seq = seq


class NotPrimaryError(RuntimeError):
    """A write reached a read-only follower (HTTP 421).

    ``primary_url`` is the redirect hint — where the write belongs.
    """

    def __init__(self, primary_url: Optional[str] = None):
        hint = f"; retry against {primary_url}" if primary_url else ""
        super().__init__(f"this node is a read-only follower{hint}")
        self.primary_url = primary_url


class FencedWriteError(RuntimeError):
    """A write reached a primary whose epoch has been fenced (HTTP 409).

    The node was deposed by a failover — it must stop acknowledging
    writes immediately (the hard 409 every zombie gets) and rejoin the
    fleet as a follower.  Carries the node's dead ``epoch`` and the
    ``fenced_below`` boundary the fleet installed.
    """

    def __init__(self, epoch: int, fenced_below: int):
        super().__init__(
            f"write fenced: this node's epoch {epoch} was deposed "
            f"(fenced below {fenced_below})"
        )
        self.epoch = epoch
        self.fenced_below = fenced_below


def encode(payload: dict) -> bytes:
    """Canonical wire encoding of a response payload."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode(body: bytes) -> dict:
    """Parse a JSON request body into a dict (empty body = empty dict)."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def coerce_row(schema: Schema, row: Sequence) -> tuple:
    """Type-check one wire row against the schema, fixing JSON lossiness.

    Integral values destined for FLOAT columns come back from JSON as
    ints; promote them before validation so a round-tripped row equals
    the row the writer will durably log.
    """
    columns = list(schema)
    if not isinstance(row, (list, tuple)):
        raise ProtocolError("row must be a JSON array")
    if len(row) != len(columns):
        raise ProtocolError(
            f"row of {len(row)} values for {len(columns)} columns"
        )
    coerced = []
    for value, column in zip(row, columns):
        if column.ctype is ColumnType.FLOAT and isinstance(value, int):
            value = float(value)
        try:
            Relation._check_value(value, column.ctype, column.name)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(str(exc)) from None
        coerced.append(value)
    return tuple(coerced)


def require_field(payload: dict, name: str, kind: type):
    """Fetch a required, type-checked field from a request payload."""
    if name not in payload:
        raise ProtocolError(f"missing required field {name!r}")
    value = payload[name]
    if not isinstance(value, kind):
        raise ProtocolError(
            f"field {name!r} must be a JSON {kind.__name__}"
        )
    return value
