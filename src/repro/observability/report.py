"""Structured run reports and the pipeline-facing Instrumentation bundle.

A :class:`RunReport` packages everything one pipeline operation (``fit``,
``insert``, ``delete``) produced: the operation's span tree and the
per-call counter deltas plus gauge values.  It is the structured
replacement for the discoverer's historical ``timings`` dicts, which are
now *derived* from the report's first span level
(:meth:`RunReport.phase_timings`).

:class:`Instrumentation` bundles the tracer and metrics registry one
discoverer owns, and knows how to install itself as the pipeline probe
(see :mod:`repro.observability.probe`).  Disabling it keeps the top-level
phase spans (they back the compatibility ``timings`` view and cost a few
microseconds per call) but skips all deep accounting: no probe is
installed, so the evidence/enumeration/bitmap layers take their
``probe is None`` fast paths.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Optional

from repro.observability.exporters import (
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.probe import install
from repro.observability.tracer import Span, SpanTracer


class RunReport:
    """Span tree + metric snapshot of one pipeline operation."""

    __slots__ = ("operation", "root", "metrics", "cumulative")

    def __init__(
        self,
        operation: str,
        root: Span,
        metrics: dict,
        cumulative: Optional[dict] = None,
    ):
        self.operation = operation
        self.root = root
        #: Per-call view: counter deltas and current gauges.
        self.metrics = metrics
        #: Full registry snapshot at the end of the call (optional).
        self.cumulative = cumulative

    def phase_timings(self) -> Dict[str, float]:
        """First-level child durations — the legacy ``timings`` dict."""
        return {child.name: child.duration for child in self.root.children}

    def metric(self, name: str, default=0):
        """Per-call value of one metric (counter delta or gauge)."""
        counters = self.metrics.get("counters", {})
        if name in counters:
            return counters[name]
        return self.metrics.get("gauges", {}).get(name, default)

    def to_dict(self) -> dict:
        payload = {
            "operation": self.operation,
            "spans": self.root.to_dict(),
            "metrics": self.metrics,
        }
        if self.cumulative is not None:
            payload["cumulative"] = self.cumulative
        return payload

    def to_json(self, indent: int = 2) -> str:
        """Deterministically ordered JSON rendering of the report."""
        return snapshot_to_json(self.to_dict(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text rendering of the per-call metrics."""
        return snapshot_to_prometheus(self.metrics)

    def format(self) -> str:
        """Human-readable span tree followed by the per-call metrics."""
        lines = [self.root.format_tree()]
        counters = self.metrics.get("counters", {})
        gauges = self.metrics.get("gauges", {})
        if counters or gauges:
            lines.append("metrics:")
            for name, value in sorted(counters.items()):
                lines.append(f"  {name:<40s} {value}")
            for name, value in sorted(gauges.items()):
                lines.append(f"  {name:<40s} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RunReport({self.operation!r}, {self.root.duration:.6f}s, "
            f"{len(self.metrics.get('counters', {}))} counter deltas)"
        )


class Instrumentation:
    """Tracer + metrics registry owned by one discoverer.

    :param enabled: when False, deep accounting (probe counters and
        sub-spans inside the evidence/enumeration layers) is skipped;
        the discoverer's own top-level phase spans are always recorded
        because the compatibility ``timings`` views are derived from them.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()

    def activate(self):
        """Install this instrumentation as the pipeline probe for a
        ``with`` block (no-op context when disabled)."""
        if not self.enabled:
            return nullcontext()
        return install(self)

    def inc(self, name: str, amount: int = 1) -> None:
        """Counter shorthand used by probe call sites."""
        counters = self.metrics.counters
        counters[name] = counters.get(name, 0) + amount

    def observe(self, name: str, value: float, **kwargs) -> None:
        self.metrics.observe(name, value, **kwargs)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def begin_operation(self) -> dict:
        """Counter snapshot taken before an operation (for deltas)."""
        return dict(self.metrics.counters)

    def finish_operation(self, operation: str, root: Span, before: dict) -> RunReport:
        """Build the operation's report from its root span and the
        counter snapshot taken at the start."""
        return RunReport(
            operation,
            root,
            {
                "counters": self.metrics.counter_delta(before),
                "gauges": dict(sorted(self.metrics.gauges.items())),
            },
            cumulative=self.metrics.snapshot(),
        )


#: Shared disabled instrumentation — per-discoverer state lives in spans,
#: so callers that opt out still get phase timings from their own calls.
def disabled_instrumentation() -> Instrumentation:
    """A fresh Instrumentation with deep accounting off."""
    return Instrumentation(enabled=False)
