"""Hierarchical span tracing for the 3DC pipeline.

A *span* is one named, timed section of work; spans nest, so a run
produces a tree mirroring the pipeline's phase structure (the paper's
Figure 13 breakdown is exactly the first level of that tree).  The
context-manager API keeps call sites declarative::

    tracer = SpanTracer()
    with tracer.span("insert"):
        with tracer.span("evidence"):
            ...
        with tracer.span("enumeration"):
            ...

Spans carry optional attributes (small scalar annotations such as batch
sizes).  :class:`NullTracer` is a drop-in no-op for hot loops that must
pay nothing when tracing is off: its ``span()`` returns one shared,
reusable context manager and records nothing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Span:
    """One timed section of work; a node of the span tree."""

    __slots__ = ("name", "start", "end", "children", "attrs")

    def __init__(self, name: str):
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: List[Span] = []
        self.attrs: Dict[str, object] = {}

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        if not self.end:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not attributed to any child span."""
        return self.duration - sum(child.duration for child in self.children)

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with the given name (None when absent)."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def to_dict(self) -> dict:
        """JSON-compatible representation of the subtree."""
        payload = {
            "name": self.name,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }
        return payload

    def format_tree(self, indent: int = 0) -> str:
        """Render the subtree as an indented text outline."""
        attrs = ""
        if self.attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.attrs.items())
            )
            attrs = f"  [{rendered}]"
        lines = [f"{'  ' * indent}{self.name:<{max(1, 32 - 2 * indent)}s} "
                 f"{self.duration * 1000:10.3f} ms{attrs}"]
        for child in self.children:
            lines.append(child.format_tree(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", name: str):
        self._tracer = tracer
        self._span = Span(name)

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack
        if stack:
            stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        stack.append(span)
        span.start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end = time.perf_counter()
        self._tracer._stack.pop()


class _NullSpanContext:
    """Shared, reusable no-op context manager returned by NullTracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Records a forest of nested spans."""

    __slots__ = ("roots", "_stack")

    enabled = True

    def __init__(self):
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        return _SpanContext(self, name)

    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def annotate(self, key: str, value) -> None:
        """Attach an attribute to the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attrs[key] = value

    def reset(self) -> None:
        """Drop all recorded spans (open spans survive on the stack)."""
        self.roots = []

    def format_tree(self) -> str:
        """Render every root span as an indented text outline."""
        return "\n".join(root.format_tree() for root in self.roots)


class NullTracer:
    """No-op tracer: records nothing, allocates nothing per span."""

    __slots__ = ()

    enabled = False
    roots: List[Span] = []

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current(self) -> None:
        return None

    def annotate(self, key: str, value) -> None:
        return None

    def reset(self) -> None:
        return None

    def format_tree(self) -> str:
        return ""


#: Shared no-op tracer instance (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()
