"""The ``repro`` logger hierarchy.

Library modules obtain loggers through :func:`get_logger` and never
configure handlers — per stdlib convention, an application (the CLI, a
notebook, a service embedding the discoverer) decides where log records
go.  :func:`configure_logging` is that application-side helper: it
attaches one stream handler to the ``repro`` root of the hierarchy (never
to the global root logger) and sets the requested level.
"""

from __future__ import annotations

import logging

ROOT_NAME = "repro"

#: Accepted --log-level values, mapped to stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.`` hierarchy.

    Pass a module's ``__name__``; names already rooted at ``repro`` are
    used as-is, anything else is nested under it.
    """
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger for CLI / application use.

    Idempotent: reuses the existing handler on repeated calls so test
    suites invoking the CLI many times do not stack handlers.  Returns
    the configured root of the hierarchy.
    """
    try:
        numeric = LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(numeric)
    if not root.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.propagate = False
    return root
