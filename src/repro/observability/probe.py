"""The pipeline probe — how deep modules reach the active instrumentation.

Threading a tracer/registry through every signature of the evidence and
enumeration layers would contaminate APIs whose whole value is their
algorithmic transparency.  Instead the discoverer *installs* its
:class:`~repro.observability.Instrumentation` here for the duration of one
pipeline operation; instrumented modules fetch it with :func:`get_probe`
(one module-dict lookup) and skip all accounting when it is ``None``.

The contract for hot code::

    probe = get_probe()
    ...
    if probe is not None:
        probe.inc("evidence.pairs_compared", n)   # aggregated, not per pair

and for optional sub-spans::

    with probe_span("evidence.scan"):
        ...

Counters must be incremented with *aggregated* quantities (per context
pipeline, per batch) — never inside per-pair loops — so the enabled
overhead stays in the low single-digit percent range.

The probe is process-global and not re-entrant across interleaved
discoverers; 3DC's maintenance calls are synchronous, so the installing
context manager simply saves and restores the previous probe.
"""

from __future__ import annotations

from repro.observability.tracer import _NULL_SPAN_CONTEXT

_ACTIVE = None


def get_probe():
    """The installed instrumentation, or ``None`` when accounting is off."""
    return _ACTIVE


def probe_span(name: str):
    """A span context on the active instrumentation's tracer (no-op when
    no probe is installed)."""
    if _ACTIVE is None:
        return _NULL_SPAN_CONTEXT
    return _ACTIVE.tracer.span(name)


class _ProbeInstallation:
    """Context manager installing one instrumentation as the probe."""

    __slots__ = ("_instrumentation", "_previous")

    def __init__(self, instrumentation):
        self._instrumentation = instrumentation
        self._previous = None

    def __enter__(self):
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._instrumentation
        return self._instrumentation

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def install(instrumentation) -> _ProbeInstallation:
    """Install ``instrumentation`` as the active probe for a ``with`` block."""
    return _ProbeInstallation(instrumentation)
