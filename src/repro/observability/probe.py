"""The pipeline probe — how deep modules reach the active instrumentation.

Threading a tracer/registry through every signature of the evidence and
enumeration layers would contaminate APIs whose whole value is their
algorithmic transparency.  Instead the discoverer *installs* its
:class:`~repro.observability.Instrumentation` here for the duration of one
pipeline operation; instrumented modules fetch it with :func:`get_probe`
(one module-dict lookup) and skip all accounting when it is ``None``.

The contract for hot code::

    probe = get_probe()
    ...
    if probe is not None:
        probe.inc("evidence.pairs_compared", n)   # aggregated, not per pair

and for optional sub-spans::

    with probe_span("evidence.scan"):
        ...

Counters must be incremented with *aggregated* quantities (per context
pipeline, per batch) — never inside per-pair loops — so the enabled
overhead stays in the low single-digit percent range.

The slot is **thread-local**: an installation and every ``get_probe``
that observes it share one synchronous call stack, so each thread's
installs nest LIFO and co-located pipelines on other threads (a
replicated fleet in one process: the serving writer, follower apply
loops, a fleet monitor) can never clobber — or leak through — each
other's save/restore.
"""

from __future__ import annotations

import threading

from repro.observability.tracer import _NULL_SPAN_CONTEXT

_SLOT = threading.local()


def get_probe():
    """The installed instrumentation, or ``None`` when accounting is off."""
    return getattr(_SLOT, "active", None)


def probe_span(name: str):
    """A span context on the active instrumentation's tracer (no-op when
    no probe is installed)."""
    active = getattr(_SLOT, "active", None)
    if active is None:
        return _NULL_SPAN_CONTEXT
    return active.tracer.span(name)


def deactivate() -> None:
    """Drop this thread's probe unconditionally.

    For forked pool workers, which inherit the parent's installation
    without its context manager: per-pair accounting in the child would
    be lost at process exit, so the parent re-emits aggregates instead.
    """
    _SLOT.active = None


class _ProbeInstallation:
    """Context manager installing one instrumentation as the probe."""

    __slots__ = ("_instrumentation", "_previous")

    def __init__(self, instrumentation):
        self._instrumentation = instrumentation
        self._previous = None

    def __enter__(self):
        self._previous = getattr(_SLOT, "active", None)
        _SLOT.active = self._instrumentation
        return self._instrumentation

    def __exit__(self, exc_type, exc, tb) -> None:
        _SLOT.active = self._previous


def install(instrumentation) -> _ProbeInstallation:
    """Install ``instrumentation`` as the active probe for a ``with`` block."""
    return _ProbeInstallation(instrumentation)
