"""Exporters for metric snapshots: JSON and Prometheus text format.

Both operate on the plain-dict snapshots produced by
:meth:`repro.observability.metrics.MetricsRegistry.snapshot` (or the
per-call deltas embedded in run reports), so they need no live registry.

The Prometheus exposition follows the text format v0.0.4: one
``# TYPE`` line per family, dotted metric names flattened to underscores
under the ``repro_`` namespace, counters suffixed ``_total``, histograms
expanded to ``_bucket``/``_sum``/``_count`` series with cumulative bucket
counts and a terminal ``+Inf`` bucket.  Label values are escaped per the
spec (backslash, double-quote, newline).  Servers exposing this text must
send :data:`PROMETHEUS_CONTENT_TYPE`.
"""

from __future__ import annotations

import json
import re

#: The Content-Type the text exposition format requires.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Flatten a dotted metric name to a Prometheus-legal identifier."""
    flattened = _NAME_SANITIZER.sub("_", name)
    return f"{prefix}_{flattened}" if prefix else flattened


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def snapshot_to_json(snapshot: dict, indent: int = 2) -> str:
    """Serialize a metrics snapshot with deterministic key order."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _bucket_order(buckets: dict):
    """Finite bucket bounds in ascending numeric order.

    Snapshots that round-tripped through ``sort_keys`` JSON arrive with
    lexicographic key order ("16" < "4"), which would corrupt the
    cumulative counts if trusted; always re-sort numerically.
    """
    finite = [bound for bound in buckets if bound != "+inf"]
    return sorted(finite, key=float)


def snapshot_to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus exposition text."""
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(value)}")
    for name, histogram in sorted(snapshot.get("histograms", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} histogram")
        buckets = histogram.get("buckets", {})
        cumulative = 0
        for bound in _bucket_order(buckets):
            cumulative += buckets[bound]
            escaped = escape_label_value(bound)
            lines.append(f'{flat}_bucket{{le="{escaped}"}} {cumulative}')
        lines.append(f'{flat}_bucket{{le="+Inf"}} {histogram["count"]}')
        lines.append(f"{flat}_sum {_format_value(histogram['sum'])}")
        lines.append(f"{flat}_count {histogram['count']}")
    return "\n".join(lines) + "\n" if lines else ""


# A label value is any run of escaped sequences or non-quote characters;
# the sample line as a whole is name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?P<labels>\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*",?)*\})?\s+'
    r"(?P<value>[^\s]+)$"
)


def parse_prometheus(text: str) -> dict:
    """Parse exposition text back to ``{sample name (with labels): value}``.

    Used by tests (and available for smoke-checking exported files);
    raises ``ValueError`` on any malformed non-comment line.  Escaped
    quotes and backslashes inside label values are handled.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        value = match.group("value")
        samples[key] = float("nan") if value == "NaN" else float(value)
    return samples
