"""Observability subsystem: span tracing, pipeline metrics, run reports.

Three layers (see docs/observability.md for the naming scheme and how the
paper's Figure 9/10/13 numbers map onto emitted metrics):

- :mod:`~repro.observability.tracer` — hierarchical spans with a
  context-manager API and a no-op :class:`NullTracer` for disabled paths;
- :mod:`~repro.observability.metrics` — counters / gauges / histograms,
  exportable as JSON and Prometheus text
  (:mod:`~repro.observability.exporters`);
- :mod:`~repro.observability.report` — per-operation
  :class:`RunReport` objects combining both, produced by the discoverer
  and consumed by the CLI (``--trace``, ``--metrics-out``,
  ``repro-dc stats``) and the benchmark harness.

Deep modules reach the active instrumentation through the probe
(:mod:`~repro.observability.probe`) so their signatures stay clean.
"""

from repro.observability.exporters import (
    parse_prometheus,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.observability.logging import configure_logging, get_logger
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.probe import get_probe, install, probe_span
from repro.observability.report import Instrumentation, RunReport
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
)

__all__ = [
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunReport",
    "Span",
    "SpanTracer",
    "configure_logging",
    "get_logger",
    "get_probe",
    "install",
    "parse_prometheus",
    "probe_span",
    "snapshot_to_json",
    "snapshot_to_prometheus",
]
