"""Observability subsystem: span tracing, pipeline metrics, run reports.

Three layers (see docs/observability.md for the naming scheme and how the
paper's Figure 9/10/13 numbers map onto emitted metrics):

- :mod:`~repro.observability.tracer` — hierarchical spans with a
  context-manager API and a no-op :class:`NullTracer` for disabled paths;
- :mod:`~repro.observability.metrics` — counters / gauges / histograms,
  exportable as JSON and Prometheus text
  (:mod:`~repro.observability.exporters`);
- :mod:`~repro.observability.report` — per-operation
  :class:`RunReport` objects combining both, produced by the discoverer
  and consumed by the CLI (``--trace``, ``--metrics-out``,
  ``repro-dc stats``) and the benchmark harness.

Deep modules reach the active instrumentation through the probe
(:mod:`~repro.observability.probe`) so their signatures stay clean.
"""

from repro.observability.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    parse_prometheus,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.observability.flight import (
    FlightRecorder,
    build_span_tree,
    get_recorder,
    record_report_spans,
    record_shard_spans,
    set_recorder,
    split_counters,
    trace_span,
)
from repro.observability.logging import configure_logging, get_logger
from repro.observability.metrics import (
    LATENCY_BOUNDS_S,
    Histogram,
    MetricsRegistry,
)
from repro.observability.probe import get_probe, install, probe_span
from repro.observability.report import Instrumentation, RunReport
from repro.observability.tracectx import TraceContext
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
)

__all__ = [
    "FlightRecorder",
    "Histogram",
    "Instrumentation",
    "LATENCY_BOUNDS_S",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "RunReport",
    "Span",
    "SpanTracer",
    "TraceContext",
    "build_span_tree",
    "configure_logging",
    "escape_label_value",
    "get_logger",
    "get_probe",
    "get_recorder",
    "install",
    "parse_prometheus",
    "probe_span",
    "record_report_spans",
    "record_shard_spans",
    "set_recorder",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "split_counters",
    "trace_span",
]
