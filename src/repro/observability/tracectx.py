"""Trace contexts: the request-scoped identity that crosses layers.

A :class:`TraceContext` is the (trace id, span id, baggage) triple one
request carries from the moment it enters the system — minted by
:class:`~repro.service.client.ServiceClient` (or by the HTTP handler for
clients that send none) — through the write queue, the coalesced batch
cycle, the WAL frame header, incremental maintenance, and the parallel
worker shards.  It answers "which request caused this work?" across
every thread and process boundary the serving layer has.

The wire encoding is the W3C ``traceparent`` header
(``00-<trace id:32 hex>-<span id:16 hex>-01``) so external tooling can
join our traces; the in-process propagation is a thread-local *current
context* that deep modules read without signature changes — the same
shape as the metrics probe (:mod:`repro.observability.probe`):

    ctx = TraceContext.mint()
    with activate(ctx):
        ...            # current() returns ctx on this thread

Span *recording* lives in :mod:`repro.observability.flight`; this module
only defines identity and propagation, so durability and evidence code
can depend on it without pulling in the recorder.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, Optional

TRACE_ID_HEX_LEN = 32
SPAN_ID_HEX_LEN = 16

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})-"
    r"(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(TRACE_ID_HEX_LEN // 2).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(SPAN_ID_HEX_LEN // 2).hex()


class TraceContext:
    """One request's identity: trace id + current span id + baggage.

    Immutable by convention: derive with :meth:`child` instead of
    mutating, so a context held by one layer never changes under it.
    """

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        baggage: Optional[Dict[str, str]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id or new_span_id()
        self.baggage: Dict[str, str] = dict(baggage or {})

    @classmethod
    def mint(cls, baggage: Optional[Dict[str, str]] = None) -> "TraceContext":
        """A brand-new root context (fresh trace id and span id)."""
        return cls(new_trace_id(), new_span_id(), baggage)

    def child(self) -> "TraceContext":
        """Same trace, fresh span id (the parent is ``self.span_id``)."""
        return TraceContext(self.trace_id, new_span_id(), self.baggage)

    # -- wire format ------------------------------------------------------

    def traceparent(self) -> str:
        """W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; None when absent/malformed."""
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        return cls(match.group("trace"), match.group("span"))

    def to_dict(self) -> dict:
        payload = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.baggage:
            payload["baggage"] = dict(self.baggage)
        return payload

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id[:8]}…/{self.span_id[:8]}…)"


# -- thread-local propagation -------------------------------------------------

_LOCAL = threading.local()


def current() -> Optional[TraceContext]:
    """The thread's active trace context, or None outside any request."""
    return getattr(_LOCAL, "context", None)


class activate:
    """Context manager installing one trace context on this thread.

    Re-entrant: nesting saves and restores the previous context, so a
    writer thread can switch from "no context" to a batch context and
    back without bookkeeping at the call sites.
    """

    __slots__ = ("_context", "_previous")

    def __init__(self, context: Optional[TraceContext]):
        self._context = context
        self._previous = None

    def __enter__(self) -> Optional[TraceContext]:
        self._previous = current()
        _LOCAL.context = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> None:
        _LOCAL.context = self._previous
