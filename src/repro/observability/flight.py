"""Flight recorder: a bounded ring buffer of recent trace spans.

The serving layer needs to answer "what did request X do?" *after* the
fact, without logging every request.  The recorder keeps the last N span
records (plain dicts, cheap to snapshot and JSON-serialize), a separate
ring of slow spans that outlive the main ring, and a small event ring for
discrete incidents (queue-full, crash-recovery, …).  ``GET /debug/trace``
and the ``doctor`` bundle read it; :func:`trace_span` writes it.

Recording follows the probe idiom (:mod:`repro.observability.probe`): a
module-global recorder installed by the service, and call sites that take
a ``recorder is None`` fast path — plus a second fast path when the
thread has no active :mod:`trace context <repro.observability.tracectx>`,
so engine code running outside any request (CLI, tests, benchmarks) pays
two attribute reads and nothing else.  That is what keeps tracing-on and
tracing-off work counters byte-identical: tracing only *reads* the
engine, never changes what it executes.

Span records are flat dicts linked by ids::

    {"trace_id": .., "span_id": .., "parent_id": .., "name": ..,
     "start": <epoch s>, "duration": <s>, "attrs": {..}, "links": [..]}

``links`` appears on batch-cycle spans only: the coalescer serves many
requests in one cycle, so the cycle span runs under its *own* trace id
and links the contributing request trace ids.  :meth:`FlightRecorder.
trace_tree` follows those links, which is how one request's trace
resolves to the whole cycle → WAL append → maintenance (→ shard) tree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.observability import tracectx
from repro.observability.tracectx import TraceContext


class FlightRecorder:
    """Bounded rings of recent spans, slow spans, and events."""

    def __init__(
        self,
        max_spans: int = 2048,
        slow_threshold_s: float = 1.0,
        max_events: int = 256,
    ):
        self.max_spans = max_spans
        self.slow_threshold_s = slow_threshold_s
        self._spans: deque = deque(maxlen=max_spans)
        self._slow: deque = deque(maxlen=max(32, max_spans // 8))
        self._events: deque = deque(maxlen=max_events)
        self._lock = threading.Lock()

    # -- writing -----------------------------------------------------------

    def record_span(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)
            if record.get("duration", 0.0) >= self.slow_threshold_s:
                self._slow.append(record)

    def record_event(self, name: str, **attrs) -> None:
        record = {"name": name, "time": time.time(), "attrs": attrs}
        with self._lock:
            self._events.append(record)

    # -- reading -----------------------------------------------------------

    def spans(self, limit: Optional[int] = None) -> List[dict]:
        """Most-recent-last snapshot of the span ring."""
        with self._lock:
            records = list(self._spans)
        return records[-limit:] if limit else records

    def slow_spans(self, limit: Optional[int] = None) -> List[dict]:
        with self._lock:
            records = list(self._slow)
        return records[-limit:] if limit else records

    def events(self, limit: Optional[int] = None) -> List[dict]:
        with self._lock:
            records = list(self._events)
        return records[-limit:] if limit else records

    def trace(self, trace_id: str) -> List[dict]:
        """Spans recorded directly under ``trace_id``."""
        return [
            record for record in self.spans()
            if record.get("trace_id") == trace_id
        ]

    def trace_tree(self, trace_id: str) -> dict:
        """Resolve one trace including link-connected traces.

        A request's own spans carry its trace id; the batch cycle that
        served it runs under a separate trace id whose cycle span *links*
        the request.  The tree therefore contains both: the direct spans,
        plus every span of every trace that links this one.
        """
        records = self.spans()
        direct = [r for r in records if r.get("trace_id") == trace_id]
        linked_ids = sorted({
            r["trace_id"] for r in records
            if trace_id in (r.get("links") or ())
        })
        linked = [r for r in records if r.get("trace_id") in linked_ids]
        return {
            "trace_id": trace_id,
            "spans": build_span_tree(direct),
            "linked_trace_ids": linked_ids,
            "linked_spans": build_span_tree(linked),
        }

    def to_dict(self, limit: Optional[int] = None) -> dict:
        return {
            "max_spans": self.max_spans,
            "slow_threshold_s": self.slow_threshold_s,
            "spans": self.spans(limit),
            "slow": self.slow_spans(limit),
            "events": self.events(limit),
        }


def build_span_tree(records: Sequence[dict]) -> List[dict]:
    """Nest flat span records by ``parent_id`` (roots first, start order).

    A record whose parent is not in ``records`` becomes a root — the
    parent is usually the request's HTTP span living in another trace.
    """
    by_id = {record["span_id"]: dict(record) for record in records}
    for copy in by_id.values():
        copy["children"] = []
    roots = []
    for record in sorted(records, key=lambda r: r.get("start", 0.0)):
        copy = by_id[record["span_id"]]
        parent = by_id.get(record.get("parent_id"))
        if parent is not None and parent is not copy:
            parent["children"].append(copy)
        else:
            roots.append(copy)
    return roots


# -- module-global recorder ----------------------------------------------------

_RECORDER: Optional[FlightRecorder] = None


def get_recorder() -> Optional[FlightRecorder]:
    """The active flight recorder, or None when tracing is off."""
    return _RECORDER


def set_recorder(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Install (or clear, with None) the process-wide recorder.

    Returns the previous recorder so callers can restore it on shutdown.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


@contextmanager
def trace_span(name: str, attrs: Optional[dict] = None,
               links: Optional[Sequence[str]] = None):
    """Record one span under the thread's current trace context.

    No-op (yields None) when no recorder is installed *or* the thread has
    no active context — the double fast path that keeps untraced runs
    untouched.  Yields the mutable span record so the body can attach
    attributes discovered mid-flight; nested ``trace_span`` calls parent
    under this span via a derived thread-local context.
    """
    recorder = _RECORDER
    context = tracectx.current()
    if recorder is None or context is None:
        yield None
        return
    record = {
        "trace_id": context.trace_id,
        "span_id": tracectx.new_span_id(),
        "parent_id": context.span_id,
        "name": name,
        "start": time.time(),
        "duration": 0.0,
        "attrs": dict(attrs or {}),
    }
    if links:
        record["links"] = list(links)
    child = TraceContext(context.trace_id, record["span_id"], context.baggage)
    started = time.perf_counter()
    with tracectx.activate(child):
        try:
            yield record
        finally:
            record["duration"] = time.perf_counter() - started
            recorder.record_span(record)


def record_report_spans(report) -> None:
    """Mirror a :class:`~repro.observability.report.RunReport` span tree
    into the recorder under the current trace context.

    The discoverer's tracer keeps ``perf_counter`` times; anchor them to
    the epoch by the offset measured now (both clocks advance at the same
    rate, so relative positions within the tree are exact).
    """
    recorder = _RECORDER
    context = tracectx.current()
    if recorder is None or context is None or report is None:
        return
    offset = time.time() - time.perf_counter()

    def emit(span, parent_id: str) -> None:
        record = {
            "trace_id": context.trace_id,
            "span_id": tracectx.new_span_id(),
            "parent_id": parent_id,
            "name": span.name,
            "start": span.start + offset,
            "duration": span.duration,
            "attrs": dict(span.attrs),
        }
        recorder.record_span(record)
        for child in span.children:
            emit(child, record["span_id"])

    emit(report.root, context.span_id)


def record_shard_spans(results) -> None:
    """Record one span per parallel-evidence shard under the current
    context.  Shards ran concurrently in worker processes; only their
    durations are known, so starts are back-dated from now."""
    recorder = _RECORDER
    context = tracectx.current()
    if recorder is None or context is None:
        return
    now = time.time()
    for index, shard in enumerate(results):
        recorder.record_span({
            "trace_id": context.trace_id,
            "span_id": tracectx.new_span_id(),
            "parent_id": context.span_id,
            "name": f"evidence.shard[{index}]",
            "start": now - shard.duration,
            "duration": shard.duration,
            "attrs": {
                "pairs": shard.pairs,
                "pipelines": shard.pipelines,
                "backend": shard.backend,
            },
        })


def split_counters(
    totals: Dict[str, int], weights: Sequence[float]
) -> List[Dict[str, int]]:
    """Split integer counter totals across requests, exactly.

    Largest-remainder apportionment per counter: integer shares always
    sum back to the total, so per-request work counters reconcile with
    the batch's probe counters to the unit.  Zero/empty weights fall back
    to an even split.
    """
    n_parts = len(weights)
    if n_parts == 0:
        return []
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        weights = [1.0] * n_parts
        weight_sum = float(n_parts)
    shares: List[Dict[str, int]] = [{} for _ in range(n_parts)]
    for name, total in totals.items():
        quotas = [total * weight / weight_sum for weight in weights]
        floors = [int(quota) for quota in quotas]
        leftover = total - sum(floors)
        remainders = sorted(
            range(n_parts),
            key=lambda i: (quotas[i] - floors[i], -i),
            reverse=True,
        )
        for i in remainders[:leftover]:
            floors[i] += 1
        for i in range(n_parts):
            shares[i][name] = floors[i]
    return shares
