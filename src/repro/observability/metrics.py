"""Metrics registry: counters, gauges, and histograms.

Names are dotted paths (``evidence.pairs_compared``); the first segment is
the subsystem.  The registry is deliberately primitive — plain dicts of
numbers — because the hot paths of the evidence engine increment it
thousands of times per batch; see :mod:`repro.observability.probe` for how
instrumented modules reach the active registry without carrying it through
every signature.

Counters are monotone (they only ever increase), gauges hold the latest
value, histograms record count/sum/min/max plus fixed power-of-two
buckets — enough for the per-phase distributions the benchmarks plot
without keeping raw samples.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: Bucket upper bounds suited to request latencies in seconds.  The default
#: power-of-two bounds start at 1, so every sub-second sample would land in
#: the first bucket; endpoint histograms pass these instead.
LATENCY_BOUNDS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Streaming summary of observed values (no raw samples kept)."""

    __slots__ = ("count", "total", "min", "max", "buckets", "bounds",
                 "exemplars")

    #: Upper bounds of the power-of-two buckets (the last is +inf).
    BOUNDS = tuple(2 ** exponent for exponent in range(0, 21, 2))

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        self.bounds = tuple(bounds) if bounds is not None else self.BOUNDS
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.bounds) + 1)
        #: Per-bucket exemplar: bucket index -> {"value", "trace_id"}.
        self.exemplars: Dict[int, dict] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        position = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                position = index
                break
        self.buckets[position] += 1
        if exemplar is not None:
            self.exemplars[position] = {"value": value, "trace_id": exemplar}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0..1) from the bucket counts.

        Linear interpolation within the winning bucket, clamped to the
        observed min/max; None when the histogram is empty.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for index, hits in enumerate(self.buckets):
            if not hits:
                continue
            if cumulative + hits >= rank:
                lower = self.bounds[index - 1] if index else self.min
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return upper
                fraction = (rank - cumulative) / hits
                return lower + (upper - lower) * fraction
            cumulative += hits
        return self.max

    def to_dict(self) -> dict:
        payload = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{str(bound): hits
                   for bound, hits in zip(self.bounds, self.buckets)},
                "+inf": self.buckets[-1],
            },
        }
        if self.exemplars:
            payload["exemplars"] = {
                str(self.bounds[index]) if index < len(self.bounds)
                else "+inf": dict(record)
                for index, record in sorted(self.exemplars.items())
            }
        return payload


class MetricsRegistry:
    """Flat registry of named counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
        exemplar: Optional[str] = None,
    ) -> None:
        """Record one sample into histogram ``name``.

        ``bounds`` only takes effect when the histogram is first created;
        ``exemplar`` (a trace id) is remembered per bucket for drill-down.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value, exemplar=exemplar)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self.gauges.get(name)

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{"counters": .., "gauges": .., "histograms": ..}``.

        Keys are sorted so serialized snapshots diff cleanly.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def counter_delta(self, before: dict) -> Dict[str, int]:
        """Per-counter increase since a previous ``snapshot()["counters"]``."""
        delta = {}
        for name, value in self.counters.items():
            change = value - before.get(name, 0)
            if change:
                delta[name] = change
        return dict(sorted(delta.items()))

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )
