"""Metrics registry: counters, gauges, and histograms.

Names are dotted paths (``evidence.pairs_compared``); the first segment is
the subsystem.  The registry is deliberately primitive — plain dicts of
numbers — because the hot paths of the evidence engine increment it
thousands of times per batch; see :mod:`repro.observability.probe` for how
instrumented modules reach the active registry without carrying it through
every signature.

Counters are monotone (they only ever increase), gauges hold the latest
value, histograms record count/sum/min/max plus fixed power-of-two
buckets — enough for the per-phase distributions the benchmarks plot
without keeping raw samples.
"""

from __future__ import annotations

from typing import Dict, Optional


class Histogram:
    """Streaming summary of observed values (no raw samples kept)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    #: Upper bounds of the power-of-two buckets (the last is +inf).
    BOUNDS = tuple(2 ** exponent for exponent in range(0, 21, 2))

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for position, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.buckets[position] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{str(bound): hits
                   for bound, hits in zip(self.BOUNDS, self.buckets)},
                "+inf": self.buckets[-1],
            },
        }


class MetricsRegistry:
    """Flat registry of named counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self.gauges.get(name)

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{"counters": .., "gauges": .., "histograms": ..}``.

        Keys are sorted so serialized snapshots diff cleanly.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def counter_delta(self, before: dict) -> Dict[str, int]:
        """Per-counter increase since a previous ``snapshot()["counters"]``."""
        delta = {}
        for name, value in self.counters.items():
            change = value - before.get(name, 0)
            if change:
                delta[name] = change
        return dict(sorted(delta.items()))

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )
