"""Command-line interface for dynamic DC discovery on CSV data.

Subcommands mirror the 3DC life cycle:

- ``discover``  — static bootstrap on a CSV, print DCs, save the state;
- ``insert``    — load a state, insert rows from a CSV, print the changes;
- ``delete``    — load a state, delete rows by rid, print the changes;
- ``rank``      — load a state, print the top-k ranked DCs;
- ``verify``    — check a *fixed* set of DCs against a CSV with the
  near-linear verification kernel (docs/verification.md); exits 0 iff
  every constraint holds, 1 otherwise;
- ``stats``     — structural + pipeline statistics of a CSV or saved state;
- ``datasets``  — generate one of the synthetic evaluation datasets;
- ``session``   — durable sessions (``init``/``insert``/``delete``/
  ``recover``/``status``): every update batch is write-ahead logged and
  the state is checkpointed atomically every ``--checkpoint-every``
  batches, so a crash at any instant recovers without data loss
  (docs/durability.md);
- ``serve``     — long-running JSON-over-HTTP service around a durable
  session: concurrent writes are coalesced into batch-update cycles,
  reads (``/dcs``, ``/rank``, ``/verify``, ``/status``, ``/metrics``)
  and online violation checks (``/check``) are served lock-free from
  immutable snapshots, and SIGTERM drains + checkpoints
  (docs/service.md);
- ``doctor``    — one-shot diagnostics bundle: environment, metrics
  snapshot, recent traces, session/WAL status, and benchmark counters
  in one tarball/JSON (docs/observability.md);
- ``fleet``     — the fleet coordinator: probes every node, declares a
  dead primary after a suspicion window, and drives the fence → drain
  → promote → repoint failover sequence; ``--listen`` additionally
  serves the aggregated topology for ``FleetClient`` discovery
  (docs/fleet.md).

``discover``/``insert``/``delete`` accept ``--workers N`` to shard
evidence construction over a worker pool, ``--backend
{auto,python,numpy}`` to pick the evidence-kernel backend, and
``--executor {auto,serial,fork,spawn,socket}`` / ``--shards S`` to pick
the shard executor and pair-grid size (results are identical for any
combination; see docs/distributed.md and docs/performance.md).

Observability flags (see docs/observability.md): ``--trace`` prints the
nested span tree and per-call metrics of the operation, ``--metrics-out``
writes the run report to a file (JSON, or Prometheus text when the path
ends in ``.prom``), and the global ``--log-level`` configures the
``repro`` logger hierarchy.

Example::

    repro-dc discover staff.csv --state staff.state.json --top 10
    repro-dc --log-level debug insert --state staff.state.json new_rows.csv
    repro-dc delete --state staff.state.json --rids 3 7 12 --trace
    repro-dc stats staff.csv --metrics-out staff.metrics.prom
"""

from __future__ import annotations

import argparse
import csv
import sys

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import load_state, save_state
from repro.durability import DurableSession
from repro.durability.session import DEFAULT_CHECKPOINT_EVERY
from repro.observability import configure_logging
from repro.observability.exporters import snapshot_to_prometheus
from repro.observability.logging import LEVELS
from repro.relational.loader import load_csv
from repro.workloads.datasets import dataset_names, generate_dataset


def _print_dcs(discoverer: DCDiscoverer, top: int) -> None:
    dcs = discoverer.dcs
    shown = dcs if top <= 0 else dcs[:top]
    for dc in shown:
        print(f"  {dc}")
    if 0 < top < len(dcs):
        print(f"  ... ({len(dcs) - top} more)")


def _emit_observability(args, result) -> None:
    """Handle ``--trace`` / ``--metrics-out`` for a result with a report."""
    report = result.report
    if report is None:
        return
    if getattr(args, "trace", False):
        print()
        print(report.format())
    path = getattr(args, "metrics_out", None)
    if path:
        if str(path).endswith(".prom"):
            text = snapshot_to_prometheus(report.metrics)
        else:
            text = report.to_json() + "\n"
        with open(path, "w") as handle:
            handle.write(text)
        print(f"metrics written to {path}")


def _cmd_discover(args) -> int:
    relation = load_csv(args.csv, null_policy=args.null_policy)
    discoverer = DCDiscoverer(
        relation,
        cross_column_ratio=args.cross_ratio,
        allow_cross_columns=not args.no_cross_columns,
        workers=args.workers,
        backend=args.backend,
        executor=args.executor,
        shards=args.shards,
    )
    result = discoverer.fit()
    print(result)
    _print_dcs(discoverer, args.top)
    _emit_observability(args, result)
    if args.state:
        save_state(discoverer, args.state)
        print(f"state saved to {args.state}")
    return 0


def _apply_execution_flags(discoverer, args) -> None:
    """Override a loaded discoverer's execution knobs from CLI flags
    (``None`` = keep what it already has; none of these are persisted)."""
    if args.workers is not None:
        discoverer.workers = args.workers
    if args.backend is not None:
        discoverer.backend = args.backend
    if getattr(args, "executor", None) is not None:
        discoverer.executor = args.executor
    if getattr(args, "shards", None) is not None:
        discoverer.shards = args.shards


def _cmd_insert(args) -> int:
    discoverer = load_state(args.state)
    _apply_execution_flags(discoverer, args)
    relation = load_csv(
        args.csv, schema=discoverer.relation.schema, null_policy=args.null_policy
    )
    result = discoverer.insert(relation.rows())
    print(result)
    _print_dcs(discoverer, args.top)
    _emit_observability(args, result)
    save_state(discoverer, args.state)
    print(f"state saved to {args.state}")
    return 0


def _cmd_delete(args) -> int:
    discoverer = load_state(args.state)
    _apply_execution_flags(discoverer, args)
    result = discoverer.delete(args.rids)
    print(result)
    _print_dcs(discoverer, args.top)
    _emit_observability(args, result)
    save_state(discoverer, args.state)
    print(f"state saved to {args.state}")
    return 0


def _collect_verify_constraints(dcs, dcs_file) -> list:
    """Merge ``--dc`` strings and the lines of ``--dcs-file``.

    The file format is one DC per line; blank lines and ``#`` comments
    are skipped, so a DC list exported from ``/dcs`` can be annotated.
    """
    constraints = list(dcs or [])
    if dcs_file:
        with open(dcs_file) as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    constraints.append(line)
    return constraints


def _print_verification_report(report: dict) -> None:
    for entry in report["constraints"]:
        if entry["holds"]:
            print(f"  holds     {entry['dc']}")
            continue
        print(f"  VIOLATED  {entry['dc']}  ({entry['n_violations']} pairs)")
        for first, second in entry["sample_pairs"]:
            print(f"            t{first} ⋈ t{second}")
    print(
        f"{report['n_constraints'] - report['n_violated']}"
        f"/{report['n_constraints']} constraints hold on "
        f"{report['n_rows']} rows "
        f"({report['total_violations']} violating pairs)"
    )


def _cmd_verify(args) -> int:
    constraints = _collect_verify_constraints(args.dc, args.dcs_file)
    if not constraints:
        print("verify: pass --dc and/or --dcs-file", file=sys.stderr)
        return 2
    relation = load_csv(args.csv, null_policy=args.null_policy)
    discoverer = DCDiscoverer(
        relation,
        mode="verify",
        constraints=constraints,
        cross_column_ratio=args.cross_ratio,
        allow_cross_columns=not args.no_cross_columns,
    )
    try:
        result = discoverer.fit()
    except ValueError as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2
    print(result)
    report = discoverer.verification_report(sample=args.sample)
    _print_verification_report(report)
    _emit_observability(args, result)
    if args.state:
        save_state(discoverer, args.state)
        print(f"state saved to {args.state}")
    return 0 if report["n_violated"] == 0 else 1


def _cmd_rank(args) -> int:
    discoverer = load_state(args.state)
    for entry in discoverer.rank(top_k=args.top):
        print(
            f"  score={entry.score:.3f} "
            f"(succ={entry.succinctness:.2f}, cov={entry.coverage:.2f})  "
            f"{entry.dc}"
        )
    return 0


def _print_state_stats(discoverer: DCDiscoverer) -> None:
    relation = discoverer.relation
    state = discoverer.engine_state
    print(f"rows                 {len(relation)}")
    print(f"columns              {len(relation.schema)}")
    print(f"predicates           {discoverer.space.n_bits}")
    print(f"predicate groups     {len(discoverer.space.groups)}")
    print(f"distinct evidences   {len(state.evidence)}")
    print(f"evidence pairs       {state.evidence.total_pairs()}")
    print(f"minimal DCs          {len(discoverer.dc_masks)}")
    print(f"canonical DCs        {len(discoverer.canonical_dcs)}")
    if state.tuple_index is not None:
        stats = state.tuple_index.stats()
        print(
            f"tuple index          {stats['tuples']} tuples, "
            f"{stats['owned_pairs']} owned pairs, "
            f"{stats['evidence_entries']} evidence entries"
        )
    print("column indexes:")
    for position, column in enumerate(relation.schema):
        equality = len(state.indexes.equality[position])
        range_index = state.indexes.ranges[position]
        extra = f", {len(range_index)} range values" if range_index else ""
        print(f"  {column.name:20s} {equality} equality entries{extra}")


def _cmd_stats(args) -> int:
    if bool(args.csv) == bool(args.state):
        print("stats: pass a CSV or --state, not both/neither", file=sys.stderr)
        return 2
    if args.state:
        discoverer = load_state(args.state)
        _print_state_stats(discoverer)
        return 0
    relation = load_csv(args.csv, null_policy=args.null_policy)
    discoverer = DCDiscoverer(relation, cross_column_ratio=args.cross_ratio)
    result = discoverer.fit()
    print(result)
    print()
    _print_state_stats(discoverer)
    print()
    print(result.report.format())
    _emit_observability(args, result)
    return 0


def _cmd_profile(args) -> int:
    from repro.relational.profiling import profile_relation

    relation = load_csv(args.csv, null_policy=args.null_policy)
    profile = profile_relation(relation, cross_column_ratio=args.cross_ratio)
    print(profile.summary())
    print("\nper-column pair statistics:")
    for column in profile.columns:
        flag = " (key-like)" if column.is_key_like else ""
        print(
            f"  {column.name:20s} {column.type_name:7s} "
            f"distinct={column.n_distinct:6d} top={column.top_frequency:.2f} "
            f"p_eq={column.p_equal:.3f} H={column.entropy_bits:.2f}b{flag}"
        )
    return 0


def _cmd_datasets(args) -> int:
    if args.name is None:
        for name in dataset_names():
            print(f"  {name}")
        return 0
    relation = generate_dataset(args.name, args.rows, seed=args.seed)
    writer = csv.writer(sys.stdout if args.out is None else open(args.out, "w", newline=""))
    writer.writerow(relation.schema.names)
    for row in relation.rows():
        writer.writerow(row)
    if args.out:
        print(f"wrote {len(relation)} rows to {args.out}", file=sys.stderr)
    return 0


def _print_session_status(session: DurableSession) -> None:
    status = session.status()
    print(f"session directory    {status['directory']}")
    print(f"rows                 {status['rows']}")
    print(f"minimal DCs          {status['dcs']}")
    print(f"distinct evidences   {status['evidence_distinct']}")
    print(f"next WAL seq         {status['next_seq']}")
    print(f"checkpointed seq     {status['checkpoint_seq']}")
    print(
        f"pending WAL records  {status['pending_wal_records']} "
        f"({status['wal_bytes']} bytes)"
    )
    print(
        f"checkpoint policy    every {status['checkpoint_every']} batches, "
        f"retain {status['retain']}"
    )
    print(f"checkpoints on disk  {', '.join(status['checkpoints']) or '(none)'}")


def _cmd_session_init(args) -> int:
    relation = load_csv(args.csv, null_policy=args.null_policy)
    discoverer = DCDiscoverer(
        relation,
        cross_column_ratio=args.cross_ratio,
        allow_cross_columns=not args.no_cross_columns,
        workers=args.workers,
        backend=args.backend,
        executor=args.executor,
        shards=args.shards,
    )
    result = discoverer.fit()
    print(result)
    _print_dcs(discoverer, args.top)
    _emit_observability(args, result)
    with DurableSession.create(
        discoverer,
        args.dir,
        checkpoint_every=args.checkpoint_every,
        retain=args.retain,
    ) as session:
        print(f"durable session initialized in {session.directory}")
    return 0


def _cmd_session_insert(args) -> int:
    with DurableSession.recover(args.dir) as session:
        relation = load_csv(
            args.csv,
            schema=session.discoverer.relation.schema,
            null_policy=args.null_policy,
        )
        result = session.insert(relation.rows())
        print(result)
        _print_dcs(session.discoverer, args.top)
        _emit_observability(args, result)
    return 0


def _cmd_session_delete(args) -> int:
    with DurableSession.recover(args.dir) as session:
        result = session.delete(args.rids)
        print(result)
        _print_dcs(session.discoverer, args.top)
        _emit_observability(args, result)
    return 0


def _cmd_session_recover(args) -> int:
    with DurableSession.recover(args.dir) as session:
        print(
            f"recovered session from {session.directory} "
            f"(replayed {session.replayed_records} WAL records)"
        )
        if args.checkpoint:
            path = session.checkpoint()
            print(f"checkpoint written to {path}")
        _print_session_status(session)
    return 0


def _cmd_session_status(args) -> int:
    with DurableSession.recover(args.dir) as session:
        _print_session_status(session)
        path = getattr(args, "metrics_out", None)
        if path:
            session.export_gauges()
            snapshot = session.discoverer.instrumentation.metrics.snapshot()
            if str(path).endswith(".prom"):
                text = snapshot_to_prometheus(snapshot)
            else:
                from repro.observability import snapshot_to_json

                text = snapshot_to_json(snapshot) + "\n"
            with open(path, "w") as handle:
                handle.write(text)
            print(f"metrics written to {path}")
    return 0


def _cmd_doctor(args) -> int:
    from repro.doctor import build_bundle, write_bundle

    bundle = build_bundle(
        session_dir=args.dir,
        url=args.url,
        results_dir=args.results,
        metrics_path=args.metrics,
    )
    path = write_bundle(bundle, args.out)
    session = bundle["session"]
    service = bundle["service"]
    print(f"doctor bundle written to {path}")
    if session.get("directory"):
        wal = session.get("wal", {})
        print(
            f"  session: {session['directory']} "
            f"({wal.get('records', 0)} WAL records, "
            f"{len(session.get('checkpoints', []))} checkpoints)"
        )
    if service.get("url"):
        status = service.get("status", {})
        state = "unreachable" if "error" in status else "reachable"
        print(f"  service: {service['url']} ({state})")
    files = bundle["results"].get("files", {})
    if files:
        print(f"  results: {len(files)} benchmark file(s)")
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro.service import DCService, ServiceConfig

    if args.follow:
        return _serve_follower(args)
    if os.path.exists(os.path.join(args.dir, "session.json")):
        if args.csv:
            print(
                f"serve: session already exists in {args.dir}; "
                f"omit the CSV to serve it",
                file=sys.stderr,
            )
            return 2
        if args.verify_dcs:
            print(
                f"serve: session already exists in {args.dir}; its mode is "
                f"persisted — omit --verify-dcs to serve it",
                file=sys.stderr,
            )
            return 2
        session = DurableSession.recover(args.dir)
        print(
            f"recovered session from {args.dir} "
            f"(replayed {session.replayed_records} WAL records)"
        )
        _apply_execution_flags(session.discoverer, args)
    else:
        if not args.csv:
            print(
                f"serve: no session in {args.dir}; pass a CSV to bootstrap one",
                file=sys.stderr,
            )
            return 2
        relation = load_csv(args.csv, null_policy=args.null_policy)
        if args.verify_dcs:
            constraints = _collect_verify_constraints([], args.verify_dcs)
            if not constraints:
                print(
                    f"serve: {args.verify_dcs} lists no DCs", file=sys.stderr
                )
                return 2
            discoverer = DCDiscoverer(
                relation,
                mode="verify",
                constraints=constraints,
                cross_column_ratio=args.cross_ratio,
            )
        else:
            discoverer = DCDiscoverer(
                relation,
                cross_column_ratio=args.cross_ratio,
                workers=args.workers or 1,
                backend=args.backend or "auto",
                executor=args.executor or "auto",
                shards=args.shards,
            )
        result = discoverer.fit()
        print(result)
        session = DurableSession.create(
            discoverer,
            args.dir,
            checkpoint_every=args.checkpoint_every,
            retain=args.retain,
        )
        print(f"durable session initialized in {session.directory}")
    config = _service_config(args)
    service = DCService(session, config)
    service.install_signal_handlers()
    service.start()
    role = "primary" if args.replicate_listen else "standalone"
    print(f"serving on {service.url} ({role})", flush=True)
    service.serve_forever()
    print(
        f"drained and stopped after {len(service.commit_log)} commits "
        f"(state in {session.directory})"
    )
    return 0


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        batch_window_ms=args.batch_window_ms,
        request_timeout_s=args.request_timeout,
        slow_trace_threshold_s=args.slow_trace_threshold,
        metrics_out=args.metrics_out,
        verification_limit=args.verify_limit,
        replicate_listen=args.replicate_listen,
        min_seq_wait_s=args.min_seq_wait,
    )


def _serve_follower(args) -> int:
    from repro.replication import FollowerService, FollowerSession, HTTPSource

    if args.csv:
        print(
            "serve: --follow replicates an existing primary; "
            "a CSV cannot bootstrap a follower",
            file=sys.stderr,
        )
        return 2
    if args.verify_dcs:
        print(
            "serve: --verify-dcs applies to the primary; followers "
            "inherit its mode through the replicated state",
            file=sys.stderr,
        )
        return 2
    source = HTTPSource(args.follow)
    follower = FollowerSession.bootstrap(
        args.dir,
        source,
        checkpoint_every=args.checkpoint_every,
        retain=args.retain,
        primary_url=args.follow,
    )
    if follower.session.replayed_records:
        print(
            f"resumed follower in {args.dir} (replayed "
            f"{follower.session.replayed_records} WAL records)"
        )
    else:
        print(
            f"follower in {args.dir} at seq {follower.last_applied_seq}, "
            f"tailing {args.follow}"
        )
    service = FollowerService(
        follower, _service_config(args), primary_url=args.follow
    )
    service.install_signal_handlers()
    service.start()
    print(f"serving reads on {service.url} (follower)", flush=True)
    service.serve_forever()
    print(
        f"follower stopped at seq {follower.session.last_applied_seq} "
        f"as {service.role} (state in {follower.session.directory})"
    )
    return 0


def _cmd_fleet(args) -> int:
    import json
    import signal
    import threading

    from repro.fleet import FleetMonitor, HTTPNode
    from repro.fleet.monitor import CoordinatorServer

    monitor = FleetMonitor(
        [HTTPNode(url, timeout=args.node_timeout) for url in args.nodes],
        suspicion_s=args.suspicion,
        drain_s=args.drain,
    )
    server = None
    if args.listen:
        server = CoordinatorServer(
            monitor, host=args.listen_host, port=args.listen_port
        )
        server.start()
        print(f"fleet coordinator on {server.url}", flush=True)
    try:
        if args.once:
            monitor.step()
            print(
                json.dumps(monitor.topology_payload(), indent=2, sort_keys=True)
            )
            return 0
        stop = threading.Event()

        def _request_stop(signum, frame):
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, _request_stop)
        print(
            f"fleet monitor watching {len(monitor.nodes)} node(s) "
            f"(suspicion {args.suspicion:.1f}s, probe every "
            f"{args.interval:.1f}s)",
            flush=True,
        )
        monitor.run(interval_s=args.interval, stop=stop)
        if monitor.last_failover is not None:
            print(json.dumps(monitor.last_failover, indent=2, sort_keys=True))
        print(
            f"fleet monitor stopped after {monitor.probes_total} probes, "
            f"{monitor.failovers_total} failover(s)"
        )
        return 0
    finally:
        if server is not None:
            server.close()


def _add_workers_flag(parser, default) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=default,
        metavar="N",
        help="evidence-construction worker processes (1 = serial, "
        "0 = one per CPU; results are identical for any value)",
    )


def _add_backend_flag(parser, default) -> None:
    from repro.evidence.kernels import BACKENDS

    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=default,
        help="evidence-kernel backend (auto = NumPy-vectorized when "
        "available, pure Python otherwise; results are identical for "
        "any choice)",
    )


def _add_executor_flags(parser, default) -> None:
    from repro.evidence.executors import EXECUTOR_CHOICES

    parser.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default=default,
        help="shard-executor backend for parallel evidence runs (auto = "
        "fork where available, spawn otherwise; socket drives worker "
        "processes over TCP; results are identical for any choice)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="pair-grid shard count override (default: derived from "
        "--workers; results are identical for any value)",
    )


def _add_observability_flags(parser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the operation's nested span tree and metrics",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run report (JSON, or Prometheus text for *.prom)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dc",
        description="3DC: dynamic denial-constraint discovery",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(LEVELS),
        default="warning",
        help="verbosity of the repro.* logger hierarchy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="static discovery on a CSV")
    p.add_argument("csv", help="input CSV file (with header)")
    p.add_argument("--state", help="path to save the 3DC state JSON")
    p.add_argument("--top", type=int, default=20, help="DCs to print (0 = all)")
    p.add_argument("--cross-ratio", type=float, default=0.3)
    p.add_argument("--no-cross-columns", action="store_true")
    p.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    _add_workers_flag(p, default=1)
    _add_backend_flag(p, default="auto")
    _add_executor_flags(p, default="auto")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_discover)

    p = sub.add_parser("insert", help="insert rows from a CSV into a saved state")
    p.add_argument("csv", help="CSV of rows to insert (same header)")
    p.add_argument("--state", required=True)
    p.add_argument("--top", type=int, default=20)
    p.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    # None = keep the loaded discoverer's worker count / backend / executor.
    _add_workers_flag(p, default=None)
    _add_backend_flag(p, default=None)
    _add_executor_flags(p, default=None)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_insert)

    p = sub.add_parser("delete", help="delete rows (by rid) from a saved state")
    p.add_argument("--state", required=True)
    p.add_argument("--rids", type=int, nargs="+", required=True)
    p.add_argument("--top", type=int, default=20)
    _add_workers_flag(p, default=None)
    _add_backend_flag(p, default=None)
    _add_executor_flags(p, default=None)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_delete)

    p = sub.add_parser(
        "verify",
        help="check a fixed set of DCs against a CSV "
        "(near-linear verification kernel; exit 0 iff all hold)",
    )
    p.add_argument("csv", help="input CSV file (with header)")
    p.add_argument(
        "--dc",
        action="append",
        metavar="DC",
        help="a DC to check, e.g. \"!(t.city = t'.city & t.state != "
        "t'.state)\" (repeatable)",
    )
    p.add_argument(
        "--dcs-file",
        metavar="PATH",
        help="file with one DC per line (# comments and blanks skipped)",
    )
    p.add_argument(
        "--sample",
        type=int,
        default=10,
        metavar="N",
        help="violating pairs printed per violated DC",
    )
    p.add_argument(
        "--state",
        metavar="PATH",
        help="save the verify-mode state for incremental maintenance "
        "(insert/delete/session/serve keep the verdicts current)",
    )
    p.add_argument(
        "--cross-ratio",
        type=float,
        default=0.0,
        help="shared-value threshold for cross-column predicates "
        "(default 0.0: widest space, so any parseable DC is in scope)",
    )
    p.add_argument("--no-cross-columns", action="store_true")
    p.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("rank", help="rank the DCs of a saved state")
    p.add_argument("--state", required=True)
    p.add_argument("--top", type=int, default=20)
    p.set_defaults(func=_cmd_rank)

    p = sub.add_parser(
        "stats",
        help="structural + pipeline statistics of a CSV or a saved state",
    )
    p.add_argument("csv", nargs="?", help="CSV to fit and instrument")
    p.add_argument("--state", help="inspect a saved state instead")
    p.add_argument("--cross-ratio", type=float, default=0.3)
    p.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "profile", help="evidence-entropy profile of a CSV (discovery feasibility)"
    )
    p.add_argument("csv")
    p.add_argument("--cross-ratio", type=float, default=0.3)
    p.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "session",
        help="durable sessions: WAL + atomic checkpoints + crash recovery",
    )
    session_sub = p.add_subparsers(dest="session_command", required=True)

    sp = session_sub.add_parser("init", help="discover a CSV into a new session")
    sp.add_argument("csv", help="input CSV file (with header)")
    sp.add_argument("--dir", required=True, help="session directory to create")
    sp.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help="checkpoint after every N update batches",
    )
    sp.add_argument(
        "--retain", type=int, default=3, help="checkpoints kept on disk"
    )
    sp.add_argument("--top", type=int, default=20)
    sp.add_argument("--cross-ratio", type=float, default=0.3)
    sp.add_argument("--no-cross-columns", action="store_true")
    sp.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    _add_workers_flag(sp, default=1)
    _add_backend_flag(sp, default="auto")
    _add_executor_flags(sp, default="auto")
    _add_observability_flags(sp)
    sp.set_defaults(func=_cmd_session_init)

    sp = session_sub.add_parser("insert", help="durably insert rows from a CSV")
    sp.add_argument("dir", help="session directory")
    sp.add_argument("csv", help="CSV of rows to insert (same header)")
    sp.add_argument("--top", type=int, default=20)
    sp.add_argument("--null-policy", choices=["reject", "drop", "fill"], default="reject")
    _add_observability_flags(sp)
    sp.set_defaults(func=_cmd_session_insert)

    sp = session_sub.add_parser("delete", help="durably delete rows by rid")
    sp.add_argument("dir", help="session directory")
    sp.add_argument("--rids", type=int, nargs="+", required=True)
    sp.add_argument("--top", type=int, default=20)
    _add_observability_flags(sp)
    sp.set_defaults(func=_cmd_session_delete)

    sp = session_sub.add_parser(
        "recover", help="recover after a crash (checkpoint + WAL replay)"
    )
    sp.add_argument("dir", help="session directory")
    sp.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh checkpoint after recovery",
    )
    sp.set_defaults(func=_cmd_session_recover)

    sp = session_sub.add_parser("status", help="inspect a session directory")
    sp.add_argument("dir", help="session directory")
    sp.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the session's gauges (JSON, or Prometheus text for "
        "*.prom) — the same stream `repro-dc serve` exports at /metrics",
    )
    sp.set_defaults(func=_cmd_session_status)

    p = sub.add_parser(
        "serve",
        help="serve a durable session over JSON/HTTP "
        "(coalesced writes, snapshot reads, online violation checks)",
    )
    p.add_argument(
        "csv",
        nargs="?",
        help="CSV to bootstrap a fresh session (omit to serve an existing "
        "session directory)",
    )
    p.add_argument("--dir", required=True, help="session directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8334,
        help="listen port (0 = pick an ephemeral port)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="bounded write-queue capacity (full queue answers HTTP 429)",
    )
    p.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long the writer lingers coalescing concurrent writes "
        "into one batch (0 = merge only what already queued)",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="per-write commit wait before answering 503",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help="checkpoint after every N applied batches (new sessions)",
    )
    p.add_argument(
        "--retain", type=int, default=3, help="checkpoints kept on disk"
    )
    p.add_argument("--cross-ratio", type=float, default=0.3)
    p.add_argument(
        "--null-policy", choices=["reject", "drop", "fill"], default="reject"
    )
    p.add_argument(
        "--verify-dcs",
        metavar="PATH",
        help="bootstrap a verify-mode session tracking the DCs listed in "
        "PATH (one per line) instead of discovering; GET /verify reports "
        "their verdicts",
    )
    p.add_argument(
        "--verify-limit",
        type=int,
        default=None,
        metavar="N",
        help="default per-DC violation cap for GET /verify "
        "(unset = count exactly)",
    )
    p.add_argument(
        "--slow-trace-threshold",
        type=float,
        default=1.0,
        metavar="S",
        help="spans at least this long are kept in the flight recorder's "
        "slow ring (served at GET /debug/trace?slow=1)",
    )
    p.add_argument(
        "--replicate-listen",
        action="store_true",
        help="serve the WAL frame feed (GET /replication/frames and "
        "/replication/checkpoint) so followers can tail this node",
    )
    p.add_argument(
        "--follow",
        metavar="URL",
        help="run as a read-only follower of the primary at URL: "
        "bootstrap (or resume) a replica in --dir from its latest "
        "checkpoint, tail its WAL, serve reads locally, answer writes "
        "with 421 + the primary URL (POST /promote takes over)",
    )
    p.add_argument(
        "--min-seq-wait",
        type=float,
        default=5.0,
        metavar="S",
        help="how long a min_seq-bounded read may wait for a fresh "
        "enough snapshot before answering 409",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a final JSON metrics snapshot here on shutdown, after "
        "the SIGTERM drain (the last cycle's counters included)",
    )
    _add_workers_flag(p, default=None)
    _add_backend_flag(p, default=None)
    _add_executor_flags(p, default=None)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "doctor",
        help="assemble a diagnostics bundle (environment, metrics, recent "
        "traces, session/WAL status, bench counters) into one artifact",
    )
    p.add_argument(
        "--dir", help="session directory to inspect (read-only)"
    )
    p.add_argument(
        "--url", help="base URL of a live service to query (best-effort)"
    )
    p.add_argument(
        "--results",
        help="benchmark results directory whose *.json files to include",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="a previously exported JSON metrics snapshot to include",
    )
    p.add_argument(
        "--out",
        default="doctor-bundle.tar.gz",
        help="output path: *.json for plain JSON, anything else is a "
        "tar.gz containing bundle.json (default: %(default)s)",
    )
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "fleet",
        help="run the fleet coordinator: probe node /topology endpoints, "
        "fail over automatically (fence, drain, promote, repoint), and "
        "optionally serve the aggregated topology to FleetClients",
    )
    p.add_argument(
        "nodes",
        nargs="+",
        metavar="URL",
        help="base URLs of every node in the fleet (primary + followers)",
    )
    p.add_argument(
        "--suspicion",
        type=float,
        default=2.0,
        metavar="S",
        help="how long the primary must be unreachable before failover "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--drain",
        type=float,
        default=2.0,
        metavar="S",
        help="bounded wait for the candidate to drain the fenced "
        "primary's tail before promotion (default: %(default)s)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="probe interval (default: %(default)s)",
    )
    p.add_argument(
        "--node-timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="per-node HTTP timeout for probes and failover commands",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="probe (and fail over if warranted) exactly once, print the "
        "topology JSON, and exit",
    )
    p.add_argument(
        "--listen",
        action="store_true",
        help="serve the aggregated topology over HTTP (GET /topology) "
        "for FleetClient discovery",
    )
    p.add_argument("--listen-host", default="127.0.0.1")
    p.add_argument(
        "--listen-port",
        type=int,
        default=0,
        help="coordinator port (0 = pick an ephemeral port)",
    )
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("datasets", help="list or generate synthetic datasets")
    p.add_argument("name", nargs="?", help="dataset name (omit to list)")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="output CSV path (default: stdout)")
    p.set_defaults(func=_cmd_datasets)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
