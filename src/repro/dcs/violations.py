"""Violation detection: find the tuple pairs that violate a DC.

Two strategies:

- :func:`find_violations` — naive ordered-pair scan, the oracle;
- :func:`partners_satisfying` / :func:`violating_partners` — index-driven
  refinement: for a fixed tuple, probe the column indexes per predicate
  and intersect the candidate rid sets.  This is the retrieval primitive
  the IncDC baseline [15] builds its per-DC plans from, and it also powers
  fast "which existing rows clash with this row" checks in applications.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.evidence.indexes import ColumnIndexes
from repro.observability.probe import get_probe
from repro.predicates.operator import Operator
from repro.relational.relation import Relation


class UnsupportedProbeError(ValueError):
    """An index probe was requested that the column cannot answer (an
    order operator against a column with no range index).  Subclasses
    :class:`ValueError` for backward compatibility; the service layer maps
    it to a protocol (400) error instead of an internal (500) one."""


def find_violations(
    dc, relation: Relation, limit: Optional[int] = None
) -> List[Tuple[int, int]]:
    """All ordered rid pairs ``(t, t')`` violating ``dc`` by direct scan.

    :param limit: stop early after this many violations (None = all).
    """
    violations = []
    rows = [(rid, relation.row(rid)) for rid in relation.rids()]
    for rid_t, row_t in rows:
        for rid_u, row_u in rows:
            if rid_t == rid_u:
                continue
            if not dc.holds_on_pair(row_t, row_u):
                violations.append((rid_t, rid_u))
                if limit is not None and len(violations) >= limit:
                    return violations
    return violations


def partners_satisfying(
    indexes: ColumnIndexes, position: int, op: Operator, value
) -> int:
    """Rid bits of indexed rows whose column ``position`` stands in
    relation ``row.column op value``."""
    range_index = indexes.ranges[position]
    if range_index is None:
        eq_bits = indexes.equality[position].probe(value)
        if op is Operator.EQ:
            return eq_bits
        if op is Operator.NE:
            return indexes.indexed_bits & ~eq_bits
        raise UnsupportedProbeError(
            f"operator {op} is not defined on a categorical column"
        )
    eq_bits, gt_bits = range_index.eq_gt(value)
    if op is Operator.EQ:
        return eq_bits
    if op is Operator.NE:
        return indexes.indexed_bits & ~eq_bits
    if op is Operator.GT:
        return gt_bits
    if op is Operator.GE:
        return gt_bits | eq_bits
    if op is Operator.LT:
        return indexes.indexed_bits & ~gt_bits & ~eq_bits
    return indexes.indexed_bits & ~gt_bits  # LE


def violating_partners_for_row(
    dc,
    row: Sequence,
    indexes: ColumnIndexes,
    exclude_bits: int = 0,
    probes: Optional[Callable[[int, Operator, object], int]] = None,
) -> Tuple[int, int]:
    """Partners forming a violating pair with a *candidate* row.

    ``row`` need not be present in any relation: this is the admission
    check an application runs *before* committing a tuple ("would this
    row violate the constraint against the live table?", the serving-time
    primitive behind the service layer's ``POST /check``).  Returns
    ``(as_first, as_second)``: rid bits of indexed partners ``u`` such
    that ``(row, u)`` respectively ``(u, row)`` violates the DC.
    ``exclude_bits`` removes rids from consideration (a row already in
    the relation excludes itself).  Every predicate contributes one index
    probe and one intersection — the IncDC retrieval plan.  ``probes``
    replaces the probe primitive (same signature as
    :func:`partners_satisfying` minus the indexes argument) — the service
    layer passes a memoizing :class:`~repro.verification.ProbeCache` so
    the DCs of one admission check share probes.
    """
    if probes is None:
        def probes(position, op, value):
            return partners_satisfying(indexes, position, op, value)

    as_first = indexes.indexed_bits & ~exclude_bits
    as_second = indexes.indexed_bits & ~exclude_bits
    n_probes = 0
    for predicate in dc.predicates:
        if not as_first and not as_second:
            break
        if as_first:
            # (rid, u): rid.lhs op u.rhs  <=>  u.rhs op.converse rid.lhs
            as_first &= probes(
                predicate.rhs_position,
                predicate.op.converse,
                row[predicate.lhs_position],
            )
            n_probes += 1
        if as_second:
            # (u, rid): u.lhs op rid.rhs
            as_second &= probes(
                predicate.lhs_position,
                predicate.op,
                row[predicate.rhs_position],
            )
            n_probes += 1
    probe = get_probe()
    if probe is not None:
        probe.inc("violations.index_probes", n_probes)
    return as_first, as_second


def violating_partners(
    dc, relation: Relation, indexes: ColumnIndexes, rid: int
) -> Tuple[int, int]:
    """Partners forming a violating pair with tuple ``rid``.

    Returns ``(as_first, as_second)``: rid bits of partners ``u`` such that
    ``(rid, u)`` respectively ``(u, rid)`` violates the DC.  The tuple
    itself is excluded.
    """
    return violating_partners_for_row(
        dc, relation.row(rid), indexes, exclude_bits=1 << rid
    )


def iter_violating_pairs(
    dc, relation: Relation, indexes: ColumnIndexes
) -> Iterator[Tuple[int, int]]:
    """Ordered violating pairs via index refinement (each pair once)."""
    from repro.bitmaps.bitutils import iter_bits

    seen_bits = 0
    for rid in relation.rids():
        as_first, as_second = violating_partners(dc, relation, indexes, rid)
        for partner in iter_bits(as_first & ~seen_bits):
            yield (rid, partner)
        for partner in iter_bits(as_second & ~seen_bits):
            yield (partner, rid)
        seen_bits |= 1 << rid
