"""Dynamic maintenance of approximate DCs — the paper's future work.

Section VIII defers "the enumeration of different forms of approximate DCs
in dynamic settings" to future research, while Sections II and V argue the
prerequisite is an *evidence multiplicity* that stays exact across updates
— which 3DC's evidence engine provides.  This module builds the dynamic
layer on top of it.

The subtlety that makes approximate DCs harder than exact ones: validity
is ``viol(φ) = Σ_{e ⊇ φ} count(e) ≤ ε·N(N−1)``, and *both* sides move
under updates — inserts raise violation counts but also raise the budget,
deletes do the reverse — so neither operation is monotone for the DC
family and no small "touched region" exists as in the exact case.

:class:`ApproximateDCMonitor` therefore splits the work:

- **Exact incremental accounting** (cheap, every update): per-DC violation
  counters are updated from the evidence *delta* of the batch, the budget
  from the new pair total.  DCs that crossed the budget are reported
  immediately (soundness: every reported invalidation is real).
- **Completeness on demand**: a :meth:`refresh` re-enumerates the minimal
  approximate DCs from the maintained multiplicities and reports the
  diff.  :attr:`needs_refresh` tells when the incremental state may be
  missing newly-minimal DCs (any invalidation, or a budget move across
  some DC's counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dcs.approximate import approximate_dcs
from repro.evidence.evidence_set import EvidenceSet
from repro.predicates.space import PredicateSpace


@dataclass
class MonitorReport:
    """Outcome of folding one update batch into the monitor."""

    kind: str  # "insert" or "delete"
    budget: int
    n_rows: int
    invalidated: List[int] = field(default_factory=list)
    revalidated_candidates: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No tracked DC changed validity state."""
        return not self.invalidated and not self.revalidated_candidates


@dataclass
class RefreshReport:
    """Diff produced by a full re-enumeration."""

    added: List[int]
    removed: List[int]
    n_dcs: int


class ApproximateDCMonitor:
    """Tracks the minimal ε-approximate DCs of a maintained evidence set."""

    def __init__(
        self,
        space: PredicateSpace,
        evidence_set: EvidenceSet,
        epsilon: float,
        n_rows: int,
    ):
        if not 0.0 <= epsilon < 1.0:
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        self.space = space
        self.epsilon = epsilon
        self._n_rows = n_rows
        self._evidence = evidence_set  # shared with the discoverer
        self._masks: List[int] = approximate_dcs(space, evidence_set, epsilon)
        self._violations: Dict[int, int] = {
            mask: self._count_violations(mask) for mask in self._masks
        }
        self._over_budget: Dict[int, int] = {}
        self._needs_refresh = False

    # -- accounting ----------------------------------------------------------

    @property
    def budget(self) -> int:
        """Maximum tolerated violating ordered pairs at the current size."""
        return int(self.epsilon * self._n_rows * (self._n_rows - 1))

    @property
    def dc_masks(self) -> List[int]:
        """Tracked approximate DC masks currently within budget."""
        return sorted(self._masks)

    @property
    def needs_refresh(self) -> bool:
        """Whether newly-minimal DCs may be missing from the tracked set."""
        return self._needs_refresh

    def violations(self, mask: int) -> int:
        """Maintained violation count of a tracked DC."""
        if mask in self._violations:
            return self._violations[mask]
        if mask in self._over_budget:
            return self._over_budget[mask]
        raise KeyError(f"DC {mask:#x} is not tracked")

    def _count_violations(self, mask: int) -> int:
        return sum(
            count
            for evidence, count in self._evidence.counts.items()
            if evidence & mask == mask
        )

    def _apply_delta(self, kind: str, delta: EvidenceSet, n_rows: int):
        sign = 1 if kind == "insert" else -1
        for evidence, count in delta.counts.items():
            signed = sign * count
            for mask in self._violations:
                if evidence & mask == mask:
                    self._violations[mask] += signed
            for mask in self._over_budget:
                if evidence & mask == mask:
                    self._over_budget[mask] += signed
        self._n_rows = n_rows
        budget = self.budget

        invalidated = [
            mask for mask, viol in self._violations.items() if viol > budget
        ]
        for mask in invalidated:
            self._over_budget[mask] = self._violations.pop(mask)
        self._masks = [mask for mask in self._masks if mask in self._violations]

        revalidated = [
            mask for mask, viol in self._over_budget.items() if viol <= budget
        ]
        # Re-admitting them directly could break minimality (a smaller set
        # might also have fallen under budget); they are surfaced as
        # candidates and resolved by refresh().
        if invalidated or revalidated:
            self._needs_refresh = True
        return MonitorReport(
            kind=kind,
            budget=budget,
            n_rows=n_rows,
            invalidated=sorted(invalidated),
            revalidated_candidates=sorted(revalidated),
        )

    def apply_insert_delta(self, delta: EvidenceSet, n_rows: int) -> MonitorReport:
        """Fold in the evidence delta of an insert batch (``E_Δr``)."""
        return self._apply_delta("insert", delta, n_rows)

    def apply_delete_delta(self, delta: EvidenceSet, n_rows: int) -> MonitorReport:
        """Fold in the evidence delta of a delete batch."""
        return self._apply_delta("delete", delta, n_rows)

    # -- completeness ------------------------------------------------------------

    def refresh(self) -> RefreshReport:
        """Re-enumerate from the maintained multiplicities; return the diff."""
        previous = set(self._masks) | set(self._over_budget)
        self._masks = approximate_dcs(self.space, self._evidence, self.epsilon)
        self._violations = {
            mask: self._count_violations(mask) for mask in self._masks
        }
        self._over_budget = {}
        self._needs_refresh = False
        current = set(self._masks)
        return RefreshReport(
            added=sorted(current - previous),
            removed=sorted(previous - current),
            n_dcs=len(self._masks),
        )
