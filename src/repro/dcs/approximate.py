"""Approximate DC enumeration — the paper's future-work extension.

An *approximate* DC may be violated by up to ``ε · n·(n−1)`` ordered tuple
pairs [4], [7], [11].  The violation count of a predicate set ``φ`` is the
total multiplicity of the evidences containing it,

    viol(φ) = Σ_{e ⊇ φ} count(e),

which is exactly why 3DC keeps the evidence multiplicity available
(Section VI).  ``viol`` is anti-monotone (supersets have fewer covering
evidences), so the ε-valid sets form an upward-closed family and the goal
is its minimal elements.

The enumeration is a branch-and-prune DFS over the predicate lattice.
Branch soundness: every predicate of a *minimal* ε-valid set is necessary,
i.e. dropping it pushes the violation count back over budget, which forces
the predicate to be absent from at least one evidence covering the current
set — so branching only on predicates missing from some covering evidence
is complete.  Duplicates are avoided with the standard banned-set scheme
and results are minimized at the end.
"""

from __future__ import annotations

from typing import List

from repro.bitmaps.bitutils import iter_bits
from repro.enumeration.inversion import minimize_masks
from repro.evidence.evidence_set import EvidenceSet
from repro.predicates.space import PredicateSpace


def violation_count(evidence_set: EvidenceSet, mask: int) -> int:
    """Total multiplicity of evidences containing every predicate of
    ``mask`` — the number of ordered pairs violating the DC."""
    return sum(
        count
        for evidence, count in evidence_set.counts.items()
        if evidence & mask == mask
    )


def approximate_dcs(
    space: PredicateSpace,
    evidence_set: EvidenceSet,
    epsilon: float,
) -> List[int]:
    """All minimal non-trivial DC masks violated by at most an ``epsilon``
    fraction of ordered tuple pairs.

    ``epsilon = 0`` degenerates to exact DC discovery (cross-checked in
    the test suite against the exact enumerators).
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    total = evidence_set.total_pairs()
    budget = int(epsilon * total)
    items = sorted(
        evidence_set.counts.items(), key=lambda item: -item[1]
    )  # big counts first: earlier pruning
    full_mask = space.full_mask
    satisfiable_with = space.satisfiable_with
    results = []

    def recurse(current: int, banned: int, covering: list) -> None:
        violations = sum(count for _, count in covering)
        if violations <= budget:
            results.append(current)
            return
        # Predicates that appear in `current`'s covering evidences only
        # partially — the only ones that can reduce the violation count.
        candidate_bits = 0
        for evidence, _ in covering:
            candidate_bits |= full_mask & ~evidence
        candidate_bits &= ~banned & ~current
        new_banned = banned
        for bit in iter_bits(candidate_bits):
            new_banned |= 1 << bit
            if not satisfiable_with(current, bit):
                continue
            extended = current | (1 << bit)
            narrowed = [
                (evidence, count)
                for evidence, count in covering
                if (evidence >> bit) & 1
            ]
            recurse(extended, new_banned, narrowed)

    recurse(0, 0, items)
    return sorted(minimize_masks(results))
