"""Semantic (operator-aware) implication between DCs.

Set-minimality treats predicate sets syntactically; the paper's minimality
notion (Section I) is *implication*-based: a DC is redundant if another DC
with an implied predicate set exists.  Within one predicate group the
implication structure is fully determined by the satisfiable patterns
(Trichotomy Law): a valuation that satisfies an operator set ``S``
satisfies exactly the operators in the intersection of all patterns
containing ``S``.  That yields a complete per-group implication test and,
lifted over groups, a sound and complete pairwise implication test for
predicate sets built from single-group predicates:

    ``sat(P) ⊆ sat(Q)``  ⟺  every group's Q-bits lie in the implication
    closure of that group's P-bits.

For DCs the direction flips: ``¬Q`` implies ``¬P`` when every pair
satisfying ``P`` satisfies ``Q`` (violators of ``¬P`` violate ``¬Q``).

:func:`semantic_minimize` removes every DC semantically implied by another
— a strictly stronger cleanup than the rewrite-based
:mod:`repro.dcs.canonical` (which it subsumes up to the canonical spelling
of the survivors).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.predicates.space import PredicateSpace


def group_closure(group, bits: int) -> int:
    """Implication closure of an operator bit set within one group.

    Returns the bits of every operator satisfied by *all* valuations that
    satisfy ``bits``; an unsatisfiable ``bits`` (no pattern contains it)
    closes to the full group mask (it implies everything vacuously).
    """
    closure = group.mask
    found = False
    for pattern in group.patterns:
        if bits & ~pattern == 0:
            closure &= pattern
            found = True
    if not found:
        return group.mask
    return closure


def predicates_closure(space: PredicateSpace, mask: int) -> int:
    """Implication closure of a predicate mask, group by group.

    An unsatisfiable group (its bits fit no pattern) makes the whole set
    unsatisfiable, which implies *every* predicate — the closure is then
    the full space.  ``group_closure`` signals that case by returning the
    full group mask, which a satisfiable bit set can never close to
    (every pattern is a proper subset of its group).
    """
    closure = 0
    for group in space.groups:
        bits = mask & group.mask
        if bits:
            grown = group_closure(group, bits)
            if grown == group.mask:
                return space.full_mask
            closure |= grown
    return closure


def satisfaction_implies(space: PredicateSpace, mask_p: int, mask_q: int) -> bool:
    """Whether every tuple pair satisfying ``P`` also satisfies ``Q``."""
    return mask_q & ~predicates_closure(space, mask_p) == 0


def dc_implies(space: PredicateSpace, dc_q: int, dc_p: int) -> bool:
    """Whether the DC ``¬Q`` implies the DC ``¬P``.

    ``¬Q ⊨ ¬P`` exactly when every violator of ``¬P`` (a pair satisfying
    all of ``P``) also violates ``¬Q`` (satisfies all of ``Q``).
    """
    return satisfaction_implies(space, dc_p, dc_q)


def semantic_minimize(space: PredicateSpace, masks: Iterable[int]) -> List[int]:
    """Drop every DC that is semantically implied by another in the list.

    Among semantically equivalent DCs the one with the smaller closure
    spelling (and, tie-breaking, the smaller mask) is kept, so the result
    is deterministic.
    """
    unique = sorted(set(masks), key=lambda mask: (mask.bit_count(), mask))
    closures = {mask: predicates_closure(space, mask) for mask in unique}
    kept: List[int] = []
    for mask in unique:
        redundant = False
        for other in kept:
            # `other` implies `mask` as a DC when satisfying all of
            # mask's predicates satisfies all of other's.
            if closures[other] & ~closures[mask] == 0:
                redundant = True
                break
        if not redundant:
            kept.append(mask)
    return sorted(kept)
