"""First-class denial constraint objects.

Internally every algorithm works on predicate bitmasks; this module wraps
a mask together with its predicate space into a hashable, printable object
for the public API.
"""

from __future__ import annotations

from functools import total_ordering

from repro.predicates.parser import format_dc
from repro.predicates.space import PredicateSpace


@total_ordering
class DenialConstraint:
    """A DC ``¬(p₁ ∧ … ∧ pₘ)`` over a predicate space."""

    __slots__ = ("mask", "space")

    def __init__(self, mask: int, space: PredicateSpace):
        self.mask = mask
        self.space = space

    @property
    def predicates(self) -> tuple:
        """The predicates of the DC, ascending by bit position."""
        return tuple(self.space.predicates_of(self.mask))

    def __len__(self) -> int:
        """Number of predicates."""
        return self.mask.bit_count()

    @property
    def is_trivial(self) -> bool:
        """Whether no tuple pair can satisfy all predicates (the DC holds
        on every instance and carries no information)."""
        return not self.space.satisfiable(self.mask)

    def implies(self, other: "DenialConstraint") -> bool:
        """Set-implication: this DC implies ``other`` when its predicate
        set is a subset of the other's (fewer constraints to violate)."""
        return self.mask & other.mask == self.mask

    def is_violated_by_evidence(self, evidence_mask: int) -> bool:
        """Whether a tuple pair with this evidence violates the DC
        (satisfies every predicate of it)."""
        return self.mask & evidence_mask == self.mask

    def holds_on_pair(self, row_t, row_u) -> bool:
        """Evaluate the DC directly on an ordered pair of tuples."""
        return any(not p.eval(row_t, row_u) for p in self.predicates)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DenialConstraint):
            return self.mask == other.mask and self.space is other.space
        return NotImplemented

    def __lt__(self, other: "DenialConstraint"):
        if isinstance(other, DenialConstraint):
            return self.mask < other.mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.mask)

    def __str__(self) -> str:
        return format_dc(self.mask, self.space)

    def __repr__(self) -> str:
        return f"DenialConstraint({self})"
