"""Compile denial constraints to SQL.

DCs state that no *pair* of rows may jointly satisfy all predicates, so a
DC compiles naturally to a self-join that returns its violating pairs —
the standard way to deploy discovered DCs as data-quality checks in a
relational system.  This module renders:

- :func:`violations_query` — a SELECT returning the violating row pairs of
  one DC (empty result ⟺ the DC holds);
- :func:`violation_count_query` — the COUNT variant, e.g. for monitoring
  dashboards or approximate-DC thresholds;
- :func:`create_table_statement` / :func:`insert_rows` — helpers to ship a
  :class:`~repro.relational.relation.Relation` into any DB-API database.

The generated SQL is deliberately engine-neutral (ANSI joins, double-quote
identifier quoting); the test suite executes it against ``sqlite3`` and
checks the result pairs against the in-memory violation oracle.
"""

from __future__ import annotations

from typing import List

from repro.dcs.denial_constraint import DenialConstraint
from repro.predicates.operator import Operator
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType

_SQL_OPERATORS = {
    Operator.EQ: "=",
    Operator.NE: "<>",
    Operator.LT: "<",
    Operator.LE: "<=",
    Operator.GT: ">",
    Operator.GE: ">=",
}

#: Column name used to carry stable rids into the database.
RID_COLUMN = "_rid"


def quote_identifier(name: str) -> str:
    """ANSI-quote an identifier (doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def sql_condition(dc: DenialConstraint, left_alias: str = "t", right_alias: str = "u") -> str:
    """The conjunction of the DC's predicates over two row aliases."""
    parts = [
        f"{left_alias}.{quote_identifier(p.lhs)} "
        f"{_SQL_OPERATORS[p.op]} "
        f"{right_alias}.{quote_identifier(p.rhs)}"
        for p in dc.predicates
    ]
    return " AND ".join(parts)


def violations_query(dc: DenialConstraint, table: str) -> str:
    """SELECT returning the ordered violating pairs ``(t_rid, u_rid)``.

    The table must carry the :data:`RID_COLUMN` (written by
    :func:`create_table_statement`); an empty result means the DC holds.
    """
    quoted = quote_identifier(table)
    rid = quote_identifier(RID_COLUMN)
    condition = sql_condition(dc)
    return (
        f"SELECT t.{rid} AS t_rid, u.{rid} AS u_rid\n"
        f"FROM {quoted} t\n"
        f"JOIN {quoted} u ON t.{rid} <> u.{rid}\n"
        f"WHERE {condition}\n"
        f"ORDER BY t_rid, u_rid"
    )


def violation_count_query(dc: DenialConstraint, table: str) -> str:
    """COUNT of ordered violating pairs (the ``viol(φ)`` of approximate DCs)."""
    quoted = quote_identifier(table)
    rid = quote_identifier(RID_COLUMN)
    condition = sql_condition(dc)
    return (
        f"SELECT COUNT(*)\n"
        f"FROM {quoted} t\n"
        f"JOIN {quoted} u ON t.{rid} <> u.{rid}\n"
        f"WHERE {condition}"
    )


_SQL_TYPES = {
    ColumnType.STRING: "TEXT",
    ColumnType.INTEGER: "INTEGER",
    ColumnType.FLOAT: "REAL",
}


def create_table_statement(relation: Relation, table: str) -> str:
    """CREATE TABLE with the relation's columns plus the rid column."""
    columns = [f"{quote_identifier(RID_COLUMN)} INTEGER PRIMARY KEY"]
    columns.extend(
        f"{quote_identifier(column.name)} {_SQL_TYPES[column.ctype]}"
        for column in relation.schema
    )
    return f"CREATE TABLE {quote_identifier(table)} ({', '.join(columns)})"


def insert_rows(connection, relation: Relation, table: str) -> int:
    """Insert all alive rows (with their rids) via a DB-API connection."""
    placeholders = ", ".join("?" for _ in range(len(relation.schema) + 1))
    statement = f"INSERT INTO {quote_identifier(table)} VALUES ({placeholders})"
    rows = [(rid, *relation.row(rid)) for rid in relation.rids()]
    connection.executemany(statement, rows)
    return len(rows)


def deploy_checks(
    dcs: List[DenialConstraint], table: str, name_prefix: str = "dc"
) -> str:
    """A SQL script of named views, one per DC, each listing violations.

    Querying ``<prefix>_<i>_violations`` after future data changes gives a
    standing data-quality check for every discovered constraint.
    """
    statements = []
    for index, dc in enumerate(dcs):
        view = quote_identifier(f"{name_prefix}_{index}_violations")
        statements.append(
            f"-- {dc}\n"
            f"CREATE VIEW {view} AS\n{violations_query(dc, table)};"
        )
    return "\n\n".join(statements)
