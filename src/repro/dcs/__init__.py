"""Denial constraints as first-class objects: model, violations, ranking,
and the approximate-DC extension."""

from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.violations import (
    find_violations,
    iter_violating_pairs,
    partners_satisfying,
    violating_partners,
    violating_partners_for_row,
)
from repro.dcs.ranking import DCScore, coverage, rank_dcs, score_dc, succinctness
from repro.dcs.approximate import approximate_dcs, violation_count
from repro.dcs.canonical import canonicalize_mask, canonicalize_masks
from repro.dcs.dynamic_approximate import (
    ApproximateDCMonitor,
    MonitorReport,
    RefreshReport,
)
from repro.dcs.implication import (
    dc_implies,
    predicates_closure,
    satisfaction_implies,
    semantic_minimize,
)
from repro.dcs.watcher import ViolationWatcher
from repro.dcs.sql import (
    create_table_statement,
    deploy_checks,
    insert_rows,
    violation_count_query,
    violations_query,
)

__all__ = [
    "DenialConstraint",
    "find_violations",
    "iter_violating_pairs",
    "partners_satisfying",
    "violating_partners",
    "violating_partners_for_row",
    "DCScore",
    "coverage",
    "rank_dcs",
    "score_dc",
    "succinctness",
    "approximate_dcs",
    "violation_count",
    "canonicalize_mask",
    "canonicalize_masks",
    "ApproximateDCMonitor",
    "MonitorReport",
    "RefreshReport",
    "dc_implies",
    "predicates_closure",
    "satisfaction_implies",
    "semantic_minimize",
    "ViolationWatcher",
    "create_table_statement",
    "deploy_checks",
    "insert_rows",
    "violation_count_query",
    "violations_query",
]
