"""Incremental violation watching for a fixed set of DCs.

Discovery tells you *which* constraints hold; production data quality also
needs the converse — given constraints you trust (e.g. the top-ranked
discovered DCs, or hand-written rules), know at all times *which row pairs
violate them* as the table changes.  This is the detection problem of the
authors' companion work on fast DC-violation detection [13], solved here
with the same column indexes the evidence engine maintains:

- a new row only creates violations involving itself → one index-probe
  refinement per watched DC per inserted row;
- a deleted row only removes violations involving itself → a set filter.

The watcher integrates with :class:`~repro.core.discoverer.DCDiscoverer`
via :meth:`DCDiscoverer.attach_violation_watcher`, or can be driven
manually with :meth:`on_insert` / :meth:`on_delete`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bitmaps.bitutils import iter_bits
from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.violations import violating_partners
from repro.evidence.indexes import ColumnIndexes
from repro.relational.relation import Relation

Pair = Tuple[int, int]


class ViolationWatcher:
    """Maintains the ordered violating pairs of watched DCs."""

    def __init__(
        self,
        relation: Relation,
        indexes: ColumnIndexes,
        dcs: Iterable[DenialConstraint],
    ):
        self.relation = relation
        self.indexes = indexes
        self.dcs: List[DenialConstraint] = list(dcs)
        self._pairs: Dict[int, Set[Pair]] = {dc.mask: set() for dc in self.dcs}
        seen_bits = 0
        for rid in relation.rids():
            self._absorb_row(rid, restrict_bits=seen_bits)
            seen_bits |= 1 << rid

    @classmethod
    def from_pairs(
        cls,
        relation: Relation,
        indexes: ColumnIndexes,
        dcs: Iterable[DenialConstraint],
        pairs_by_mask: Dict[int, Set[Pair]],
    ) -> "ViolationWatcher":
        """Watcher seeded with pre-enumerated violating pairs.

        The regular constructor scans every alive row against the indexes
        (one probe refinement per row per DC); when the initial pairs are
        already known — the verification kernel enumerates them in
        near-linear time — this skips that scan entirely.  The caller is
        responsible for ``pairs_by_mask`` being exactly the current
        ordered violating pairs of each DC.
        """
        watcher = cls.__new__(cls)
        watcher.relation = relation
        watcher.indexes = indexes
        watcher.dcs = list(dcs)
        watcher._pairs = {
            dc.mask: set(pairs_by_mask.get(dc.mask, ())) for dc in watcher.dcs
        }
        return watcher

    def _absorb_row(
        self, rid: int, restrict_bits: Optional[int] = None
    ) -> Dict[int, Set[Pair]]:
        """Record the violations row ``rid`` forms with indexed partners.

        ``restrict_bits`` limits partners (used during the initial scan to
        count each pair once per direction sweep); ``None`` = all indexed.
        Returns the newly found pairs per DC mask.
        """
        found: Dict[int, Set[Pair]] = {}
        for dc in self.dcs:
            as_first, as_second = violating_partners(
                dc, self.relation, self.indexes, rid
            )
            if restrict_bits is not None:
                as_first &= restrict_bits
                as_second &= restrict_bits
            fresh = set()
            for partner in iter_bits(as_first):
                fresh.add((rid, partner))
            for partner in iter_bits(as_second):
                fresh.add((partner, rid))
            if fresh:
                self._pairs[dc.mask] |= fresh
                found[dc.mask] = fresh
        return found

    # -- queries ------------------------------------------------------------

    def violations(self, dc: DenialConstraint) -> Set[Pair]:
        """Current ordered violating pairs of a watched DC (a copy)."""
        try:
            return set(self._pairs[dc.mask])
        except KeyError:
            raise KeyError(f"DC {dc} is not watched") from None

    def violated_dcs(self) -> List[DenialConstraint]:
        """Watched DCs that currently have at least one violation."""
        return [dc for dc in self.dcs if self._pairs[dc.mask]]

    def total_violations(self) -> int:
        """Total ordered violating pairs across all watched DCs."""
        return sum(len(pairs) for pairs in self._pairs.values())

    # -- maintenance -----------------------------------------------------------

    def on_insert(self, new_rids: Iterable[int]) -> Dict[int, Set[Pair]]:
        """Absorb freshly inserted (and already indexed) rows.

        Returns the new violating pairs per DC mask — the rows' "damage
        report".  Pairs among the batch are reported once.
        """
        report: Dict[int, Set[Pair]] = {}
        absorbed_bits = 0
        new_bits = 0
        for rid in new_rids:
            new_bits |= 1 << rid
        indexed = self.indexes.indexed_bits
        for rid in sorted(new_rids):
            # Partners: all old rows plus batch rows already absorbed —
            # each new-new pair is reported by its later member.
            restrict = (indexed & ~new_bits) | absorbed_bits
            for mask, fresh in self._absorb_row(rid, restrict_bits=restrict).items():
                report.setdefault(mask, set()).update(fresh)
            absorbed_bits |= 1 << rid
        return report

    def on_delete(self, rids: Iterable[int]) -> Dict[int, Set[Pair]]:
        """Drop all violating pairs that involve the deleted rows.

        Returns the removed pairs per DC mask.
        """
        doomed = set(rids)
        report: Dict[int, Set[Pair]] = {}
        for mask, pairs in self._pairs.items():
            removed = {
                pair for pair in pairs if pair[0] in doomed or pair[1] in doomed
            }
            if removed:
                pairs -= removed
                report[mask] = removed
        return report

    def __repr__(self) -> str:
        return (
            f"ViolationWatcher({len(self.dcs)} DCs, "
            f"{self.total_violations()} violating pairs)"
        )
