"""Operator-implication canonicalization of DC masks.

Set-minimal enumeration can report pairs of *semantically equivalent* DCs
whose predicate sets are incomparable, because operator combinations imply
each other within a group:

- ``{≤, ≥}``  ≡  ``{=}``
- ``{≠, ≤}``  ≡  ``{<}``
- ``{≠, ≥}``  ≡  ``{>}``

(e.g. ``¬(t.A ≤ t'.A ∧ t.A ≥ t'.A)`` is ``¬(t.A = t'.A)``).  The paper's
minimality notion is implication-based (Section I); enumeration-layer
results are set-minimal, as in the FastDC/Hydra implementations, and this
module optionally rewrites them to the canonical single-operator form and
drops the duplicates that emerge.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.enumeration.inversion import minimize_masks
from repro.predicates.operator import Operator
from repro.predicates.space import PredicateSpace

#: (pair of operators) -> equivalent single operator, within one group.
_REWRITES = (
    ((Operator.LE, Operator.GE), Operator.EQ),
    ((Operator.NE, Operator.LE), Operator.LT),
    ((Operator.NE, Operator.GE), Operator.GT),
)


def canonicalize_mask(mask: int, space: PredicateSpace) -> int:
    """Rewrite implied operator pairs to their canonical single operator."""
    for group in space.groups:
        group_bits = mask & group.mask
        if not group_bits or not group.numeric:
            continue
        for (first, second), replacement in _REWRITES:
            first_bit = group.bit_of_op.get(first)
            second_bit = group.bit_of_op.get(second)
            replacement_bit = group.bit_of_op.get(replacement)
            if first_bit is None or second_bit is None or replacement_bit is None:
                continue
            pair = (1 << first_bit) | (1 << second_bit)
            if mask & pair == pair:
                mask = (mask & ~pair) | (1 << replacement_bit)
    return mask


def canonicalize_masks(masks: Iterable[int], space: PredicateSpace) -> List[int]:
    """Canonicalize a DC collection, dropping duplicates and any DC that
    became a superset of another after rewriting."""
    rewritten = {canonicalize_mask(mask, space) for mask in masks}
    return sorted(minimize_masks(rewritten))
