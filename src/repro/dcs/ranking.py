"""Interestingness ranking of discovered DCs.

DC discovery typically returns thousands of constraints; the scoring
functions of [4], [11] rank them by *succinctness* (shorter is better) and
*coverage* (how much of the data actively supports the constraint).
Coverage needs the evidence multiplicity — the statistic 3DC maintains
during evidence building precisely so these rankings stay available in
dynamic settings (Section II, "DC Ranking").

Adaptation note: FastDC measures DC length in syntax symbols; we use the
predicate count, which orders identically for the predicate shapes in our
spaces.  Coverage follows FastDC's weighting — an evidence satisfying
``k`` of the DC's ``m`` predicates contributes weight ``(k + 1) / (m + 1)``
per tuple pair, so pairs that nearly violate the DC (and are thus "close
witnesses" of it) count most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dcs.denial_constraint import DenialConstraint
from repro.evidence.evidence_set import EvidenceSet


@dataclass(frozen=True)
class DCScore:
    """Scoring breakdown for one DC."""

    dc: DenialConstraint
    succinctness: float
    coverage: float
    score: float


def succinctness(dc: DenialConstraint) -> float:
    """``1 / |φ|`` — single-predicate DCs score 1.0."""
    size = len(dc)
    if size == 0:
        return 0.0
    return 1.0 / size


def coverage(dc: DenialConstraint, evidence_set: EvidenceSet) -> float:
    """Multiplicity-weighted coverage in ``[0, 1]``."""
    size = len(dc)
    if size == 0:
        return 0.0
    total = evidence_set.total_pairs()
    if total == 0:
        return 0.0
    mask = dc.mask
    weighted = 0
    for evidence, count in evidence_set.counts.items():
        satisfied = (evidence & mask).bit_count()
        weighted += count * (satisfied + 1)
    return weighted / (total * (size + 1))


def score_dc(
    dc: DenialConstraint,
    evidence_set: EvidenceSet,
    succinctness_weight: float = 0.5,
    coverage_weight: float = 0.5,
) -> DCScore:
    """Combined interestingness score of one DC."""
    succ = succinctness(dc)
    cov = coverage(dc, evidence_set)
    return DCScore(
        dc=dc,
        succinctness=succ,
        coverage=cov,
        score=succinctness_weight * succ + coverage_weight * cov,
    )


def rank_dcs(
    dcs: Sequence[DenialConstraint],
    evidence_set: EvidenceSet,
    succinctness_weight: float = 0.5,
    coverage_weight: float = 0.5,
    top_k: Optional[int] = None,
) -> List[DCScore]:
    """Rank DCs by combined score, best first.

    :param top_k: return only the best ``top_k`` entries (None = all).
    """
    scored = [
        score_dc(dc, evidence_set, succinctness_weight, coverage_weight)
        for dc in dcs
    ]
    scored.sort(key=lambda entry: (-entry.score, entry.dc.mask))
    if top_k is not None:
        return scored[:top_k]
    return scored
