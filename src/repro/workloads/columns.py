"""Column-generator combinators for the synthetic datasets.

The paper evaluates on 12 real and synthetic datasets we cannot ship (no
network access; several are private copies from [11], [15]).  The
generators in :mod:`repro.workloads.datasets` rebuild their *shape* —
column counts, type mixes, key columns, planted functional dependencies
and order dependencies, and value-frequency skew — from these
combinators.  Each combinator returns a callable
``(rng, row_index, row_so_far) -> value`` so later columns can depend on
earlier ones (which is what makes cross-column predicates and non-trivial
DCs appear).
"""

from __future__ import annotations

import string


def sequential_key(start: int = 1):
    """A unique integer key column (drives key DCs like ``¬(t.Id = t'.Id)``)."""

    def generate(rng, row_index, row):
        return start + row_index

    return generate


def categorical(n_values: int, prefix: str = "v", skew: float = 0.0):
    """A categorical column with ``n_values`` distinct strings.

    ``skew > 0`` draws values Zipf-like (rank ``r`` with weight
    ``1 / (r+1)^skew``), mirroring the heavy skew of real categorical
    columns that makes 'ahead' evidence presumption effective.
    """
    labels = [f"{prefix}{i:03d}" for i in range(n_values)]
    if skew > 0.0:
        weights = [1.0 / (rank + 1) ** skew for rank in range(n_values)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)

        def generate(rng, row_index, row):
            u = rng.random()
            for label, bound in zip(labels, cumulative):
                if u <= bound:
                    return label
            return labels[-1]

        return generate

    def generate(rng, row_index, row):
        return labels[rng.randrange(n_values)]

    return generate


def integer(low: int, high: int, skew: float = 0.0):
    """An integer column uniform in ``[low, high]``; ``skew`` biases
    toward ``low`` (exponent on a uniform draw)."""

    def generate(rng, row_index, row):
        if skew > 0.0:
            u = rng.random() ** (1.0 + skew)
            return low + int(u * (high - low))
        return rng.randint(low, high)

    return generate


def floating(low: float, high: float, digits: int = 3):
    """A float column uniform in ``[low, high]``, rounded to ``digits``."""

    def generate(rng, row_index, row):
        return round(low + rng.random() * (high - low), digits)

    return generate


def words(n_distinct: int, length: int = 8):
    """A high-cardinality string column (names, addresses)."""
    alphabet = string.ascii_lowercase

    def make_word(index: int) -> str:
        chars = []
        value = index
        for _ in range(length):
            chars.append(alphabet[value % 26])
            value //= 26
        return "".join(chars)

    vocabulary = [make_word(i * 7919) for i in range(n_distinct)]

    def generate(rng, row_index, row):
        return vocabulary[rng.randrange(n_distinct)]

    return generate


def derived(source_position: int, mapping):
    """A column functionally determined by an earlier column — plants an
    exact FD ``source → this`` and therefore the DC
    ``¬(t.src = t'.src ∧ t.this ≠ t'.this)``.

    :param mapping: ``value -> value`` callable applied to the source.
    """

    def generate(rng, row_index, row):
        return mapping(row[source_position])

    return generate


def noisy_derived(source_position: int, mapping, noise: float):
    """Like :func:`derived` but flips to a random variant with probability
    ``noise`` — breaks the exact FD while keeping an approximate one
    (feeds the approximate-DC experiments)."""

    def generate(rng, row_index, row):
        base = mapping(row[source_position])
        if rng.random() < noise:
            return f"{base}~{rng.randrange(4)}"
        return base

    return generate


def monotone_of(source_position: int, scale: float, jitter: int = 0):
    """A numeric column increasing with an earlier numeric column —
    plants an order dependency (DCs like the paper's φ₃)."""

    def generate(rng, row_index, row):
        base = int(row[source_position] * scale)
        if jitter:
            base += rng.randint(-jitter, jitter)
        return base

    return generate


def bucketed(source_position: int, bucket_size: int, prefix: str = "b"):
    """A categorical bucketing of an earlier numeric column (plants a
    coarse FD and equality correlations)."""

    def generate(rng, row_index, row):
        return f"{prefix}{int(row[source_position]) // bucket_size}"

    return generate


def string_key(prefix: str = "id", start: int = 1):
    """A unique *string* key column.

    Identifier-like columns (phones, zips, license numbers) are kept as
    strings on purpose: every independent numeric column multiplies the
    number of distinct evidences by ~3 (equal/greater/smaller per pair),
    while a string column contributes only an equal/different split.  Real
    datasets keep evidence sets compact through exactly this kind of type
    discipline plus value correlation.
    """

    def generate(rng, row_index, row):
        return f"{prefix}{start + row_index:07d}"

    return generate


def string_number(low: int, high: int, prefix: str = "n"):
    """A numeric-looking but string-typed column (zip, phone, license)."""

    def generate(rng, row_index, row):
        return f"{prefix}{rng.randint(low, high)}"

    return generate


def shared_domain(other_low: int, other_high: int, overlap: float = 0.8):
    """An integer column drawn mostly from another column's range so the
    30 % shared-value rule admits cross-column predicates between them."""

    def generate(rng, row_index, row):
        if rng.random() < overlap:
            return rng.randint(other_low, other_high)
        return rng.randint(other_high + 1, other_high + max(2, other_high))

    return generate
