"""Update-workload construction matching the paper's methodology.

Section VII-B1: "we retained 70 % of tuples chosen at random of each
dataset r for each execution.  Then, we chose the set Δr of tuples (also
at random) from the remaining tuples by varying the ratio λ of incremental
data such that |Δr| = λ·|r|".  Deletes draw Δr from the current rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.relational.relation import Relation


@dataclass(frozen=True)
class InsertWorkload:
    """Rows split into a static part and an insert batch."""

    static_rows: Tuple[tuple, ...]
    delta_rows: Tuple[tuple, ...]
    ratio: float

    @property
    def static_size(self) -> int:
        return len(self.static_rows)

    @property
    def delta_size(self) -> int:
        return len(self.delta_rows)


def split_for_insert(
    rows: Sequence[tuple],
    ratio: float,
    retain: float = 0.7,
    seed: int = 0,
) -> InsertWorkload:
    """Split ``rows`` into static data and an insert batch.

    ``retain`` of the rows (shuffled) become the static part ``r``; the
    batch takes ``ratio · |r|`` rows from the remainder.

    :raises ValueError: when the remainder cannot supply the batch.
    """
    if not 0.0 < retain <= 1.0:
        raise ValueError(f"retain must be in (0, 1], got {retain}")
    if ratio < 0.0:
        raise ValueError(f"ratio must be non-negative, got {ratio}")
    shuffled = list(rows)
    random.Random(seed).shuffle(shuffled)
    static_size = int(len(shuffled) * retain)
    delta_size = int(round(static_size * ratio))
    available = len(shuffled) - static_size
    if delta_size > available:
        raise ValueError(
            f"ratio {ratio} needs {delta_size} incremental rows but only "
            f"{available} remain after retaining {static_size}"
        )
    return InsertWorkload(
        static_rows=tuple(shuffled[:static_size]),
        delta_rows=tuple(shuffled[static_size : static_size + delta_size]),
        ratio=ratio,
    )


def pick_delete_rids(relation: Relation, ratio: float, seed: int = 0) -> List[int]:
    """Pick ``ratio`` of the alive rows (at random, seeded) for deletion."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    alive = list(relation.rids())
    count = int(round(len(alive) * ratio))
    return sorted(random.Random(seed).sample(alive, count))
