"""Synthetic datasets and update workloads for the experiments."""

from repro.workloads.datasets import (
    DATASETS,
    PAPER_COLUMN_COUNTS,
    PAPER_ROW_COUNTS,
    DatasetSpec,
    dataset_names,
    generate_dataset,
    staff_relation,
)
from repro.workloads.updates import (
    InsertWorkload,
    pick_delete_rids,
    split_for_insert,
)

__all__ = [
    "DATASETS",
    "PAPER_COLUMN_COUNTS",
    "PAPER_ROW_COUNTS",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset",
    "staff_relation",
    "InsertWorkload",
    "pick_delete_rids",
    "split_for_insert",
]
