"""Synthetic stand-ins for the paper's 12 evaluation datasets.

Column counts match Table II exactly; row counts are parameters (the
originals range from 14 k to 780 k rows — far beyond a pure-Python
per-pair budget — so the benchmarks run scaled-down instances and say so).
Each generator plants the structure that drives DC discovery cost and
results on its real counterpart:

- key columns (unique ids) → key DCs;
- functional dependencies (exact and noisy) → variable-length DCs;
- monotone column pairs → order dependencies (the paper's φ₃/φ₅ family);
- shared-domain numeric pairs → cross-column predicates;
- frequency skew → evidence redundancy (what makes contexts compact).

UCE is deliberately high-entropy (near-uniform, high-cardinality floats):
on the real UCE the evidence set barely compresses and every algorithm is
slowest per row — Table II shows it dominating runtime at only 14 k rows.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.relational.loader import relation_from_rows
from repro.relational.relation import Relation
from repro.workloads import columns as col


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset: header plus column generators."""

    name: str
    header: Tuple[str, ...]
    generators: Tuple[Callable, ...]
    default_rows: int
    description: str

    @property
    def n_columns(self) -> int:
        return len(self.header)

    def rows(self, n_rows: int, seed: int = 0) -> List[tuple]:
        """Generate ``n_rows`` rows deterministically from ``seed``."""
        # zlib.crc32, not hash(): str hashing is salted per process and
        # would make "deterministic" datasets differ between runs.
        rng = random.Random(zlib.crc32(self.name.encode()) * 1_000_003 + seed)
        generated = []
        for row_index in range(n_rows):
            row: list = []
            for generate in self.generators:
                row.append(generate(rng, row_index, row))
            generated.append(tuple(row))
        return generated

    def relation(self, n_rows: Optional[int] = None, seed: int = 0) -> Relation:
        """Generate the dataset as a :class:`Relation`."""
        if n_rows is None:
            n_rows = self.default_rows
        return relation_from_rows(self.header, self.rows(n_rows, seed))


def _spec(name, description, default_rows, *named_generators) -> DatasetSpec:
    header = tuple(column_name for column_name, _ in named_generators)
    generators = tuple(generator for _, generator in named_generators)
    return DatasetSpec(name, header, generators, default_rows, description)


def _build_registry() -> Dict[str, DatasetSpec]:
    specs = [
        # Numeric-entropy discipline (see module docstring): every
        # *independent* numeric comparison group — single-column or
        # cross-column — multiplies the distinct-evidence count by up to 3
        # (equal / greater / smaller per pair).  Hence each spec:
        #   * keeps <= ~5 independent numeric sources,
        #   * places independent numeric columns in pairwise DISJOINT value
        #     windows so the 30 % shared-value rule admits only the
        #     *intended*, correlated cross-column pairs,
        #   * derives further numeric columns monotonically (order
        #     dependencies, near-zero extra entropy) and makes
        #     non-monotone derivations strings,
        #   * keeps identifier-like columns (zip, phone, license) strings.
        # This reproduces the evidence redundancy of the real datasets that
        # the context pipeline exploits (Section V-A).
        _spec(
            "Adult", "census-like; FD education->education_num, skewed categoricals",
            2000,
            ("age", col.integer(17, 90)),
            ("workclass", col.categorical(8, "wc", skew=0.4)),
            ("fnlwgt", col.string_number(10_000, 99_999, "w")),
            ("education", col.categorical(20, "edu", skew=0.2)),
            ("education_num", col.derived(3, lambda v: int(v[3:]) + 101)),
            ("marital", col.categorical(7, "mar", skew=0.4)),
            ("occupation", col.categorical(14, "occ", skew=0.3)),
            ("relationship", col.categorical(6, "rel", skew=0.4)),
            ("race", col.categorical(8, "race", skew=0.2)),
            ("sex", col.categorical(2, "sex", skew=4.5)),
            ("capital_gain", col.integer(200, 240, skew=6.0)),
            ("capital_band", col.bucketed(10, 20, "cg")),
            ("hours", col.bucketed(0, 5, "h")),
            ("country", col.categorical(40, "cty", skew=0.5)),
            ("income", col.categorical(2, "inc", skew=4.5)),
        ),
        _spec(
            "Airport", "unique ids, geography FD region->continent, lat/lon OD",
            2000,
            ("id", col.sequential_key(1_000_000)),
            ("ident", col.words(5000, 4)),
            ("type", col.categorical(7, "ty", skew=1.1)),
            ("name", col.words(3000, 10)),
            ("latitude", col.floating(-60.0, 60.0, 0)),
            ("longitude", col.derived(4, lambda v: 500 + int(2 * v))),
            ("elevation", col.bucketed(4, 15, "elev")),
            ("continent", col.categorical(7, "cont", skew=0.9)),
            ("country", col.categorical(50, "ctry", skew=1.4)),
            ("region", col.derived(8, lambda v: f"reg-{v}")),
            ("municipality", col.words(1500, 8)),
        ),
        _spec(
            "Atom", "molecular data; coordinate ODs, element FD",
            2000,
            ("molecule_id", col.integer(1, 60)),
            ("atom_id", col.sequential_key(1_000_000)),
            ("element", col.categorical(12, "el", skew=0.3)),
            ("charge", col.derived(2, lambda v: f"c{v[-1]}")),
            ("x", col.integer(100, 140)),
            ("y", col.derived(4, lambda v: 500 + v)),
            ("z", col.bucketed(4, 6, "z")),
            ("weight_bucket", col.derived(2, lambda v: f"wb-{v[-1]}")),
            ("bond_count", col.categorical(12, "bc", skew=0.2)),
            ("ring", col.categorical(2, "ring", skew=4.0)),
            ("hybridization", col.categorical(12, "hyb", skew=0.2)),
            ("residue", col.derived(0, lambda v: f"r{v % 12}")),
            ("chain", col.categorical(14, "ch", skew=0.2)),
        ),
        _spec(
            "Claim", "insurance claims; amount/premium monotone pair",
            2000,
            ("claim_id", col.sequential_key(1_000_000)),
            ("customer_id", col.string_number(1, 800, "cust")),
            ("state", col.categorical(50, "st", skew=1.2)),
            ("year", col.integer(1800, 1815)),
            ("month", col.string_number(1, 12, "m")),
            ("amount", col.integer(2, 50, skew=2.0)),
            ("premium", col.monotone_of(5, 1000.0)),
            ("type", col.categorical(12, "cl", skew=0.2)),
            ("status", col.categorical(10, "stt", skew=0.2)),
            ("agent_id", col.string_number(1, 120, "ag")),
            ("customer_age", col.derived(3, lambda v: f"age{(v * 3) % 60 + 18}")),
        ),
        _spec(
            "Dit", "narrow numeric table, heavy skew (780 k rows originally)",
            3000,
            ("id", col.sequential_key(1_000_000)),
            ("device", col.integer(1, 30, skew=1.0)),
            ("sensor", col.integer(101, 108)),
            ("reading", col.integer(200, 260, skew=2.0)),
            ("reading_scaled", col.monotone_of(3, 10.0)),
            ("status", col.categorical(3, "ok", skew=4.0)),
            ("epoch", col.derived(0, lambda v: 5000 + (v - 1_000_000) // 20)),
            ("battery", col.bucketed(3, 15, "bat")),
        ),
        _spec(
            "FD", "synthetic FD generator table: 20 columns, planted FDs",
            2000,
            ("k", col.sequential_key(1_000_000)),
            ("a1", col.integer(0, 12)),
            ("a2", col.integer(50, 62)),
            ("a3", col.derived(1, lambda v: f"m{v % 23}")),
            ("a4", col.derived(2, lambda v: 400 + v // 4)),
            ("a5", col.derived(1, lambda v: f"q{(v * 3) % 31}")),
            ("a6", col.categorical(25, "c6", skew=0.2)),
            ("a7", col.derived(6, lambda v: f"d{v[-2:]}")),
            ("a8", col.categorical(25, "c8", skew=0.2)),
            ("a9", col.derived(1, lambda v: f"n{v + 100}")),
            ("a10", col.categorical(20, "c10", skew=0.2)),
            ("a11", col.string_number(0, 60, "s11")),
            ("a12", col.derived(2, lambda v: f"p{v // 10}")),
            ("a13", col.categorical(20, "c13")),
            ("a14", col.string_number(200, 230, "v14")),
            ("a15", col.string_number(300, 330, "v15")),
            ("a16", col.categorical(25, "c16", skew=0.3)),
            ("a17", col.derived(14, lambda v: f"w{v[3:]}")),
            ("a18", col.bucketed(1, 2, "c18")),
            ("a19", col.derived(2, lambda v: f"g{v % 17}")),
        ),
        _spec(
            "Flight", "flights; schedule/delay ODs, route FDs",
            2000,
            ("flight_id", col.sequential_key(1_000_000)),
            ("carrier", col.categorical(20, "ca", skew=0.3)),
            ("flight_num", col.string_number(1, 4000, "f")),
            ("origin", col.categorical(80, "og", skew=0.3)),
            ("dest", col.categorical(80, "ds", skew=0.3)),
            ("sched_dep", col.integer(0, 23)),
            ("sched_arr", col.derived(5, lambda v: f"h{v + 1}")),
            ("dep_delay", col.integer(100, 145, skew=4.0)),
            ("arr_delay", col.derived(7, lambda v: f"d{v}")),
            ("distance", col.integer(200, 211)),
            ("air_time", col.derived(9, lambda v: f"at{v}")),
            ("taxi_out", col.categorical(11, "tx", skew=1.0)),
            ("taxi_in", col.derived(9, lambda v: f"t{v}")),
            ("cancelled", col.categorical(2, "cc", skew=4.5)),
            ("aircraft", col.categorical(40, "ac", skew=0.2)),
            ("origin_state", col.derived(3, lambda v: f"st{int(v[2:]) % 25:02d}")),
            ("dest_state", col.derived(4, lambda v: f"st{int(v[2:]) % 25:02d}")),
        ),
        _spec(
            "Hospital", "the classic cleaning dataset; code<->name FDs",
            2000,
            ("provider_id", col.sequential_key(10_000)),
            ("name", col.words(800, 10)),
            ("city", col.categorical(120, "city", skew=1.2)),
            ("state", col.categorical(40, "st", skew=1.0)),
            ("zip", col.string_number(10_000, 99_999, "z")),
            ("county", col.categorical(150, "cnty", skew=1.2)),
            ("phone", col.string_number(2_000_000, 9_999_999, "p")),
            ("type", col.categorical(10, "ht", skew=0.2)),
            ("owner", col.categorical(12, "ow", skew=0.2)),
            ("emergency", col.categorical(2, "em", skew=4.0)),
            ("measure_code", col.categorical(30, "mc", skew=0.5)),
            ("measure_name", col.derived(10, lambda v: f"name-of-{v}")),
            ("condition", col.derived(10, lambda v: f"cond-{int(v[2:]) % 6}")),
            ("score", col.integer(0, 25)),
            ("sample_size", col.integer(130, 180, skew=1.5)),
        ),
        _spec(
            "Inspection", "food inspections; risk/result structure",
            2000,
            ("inspection_id", col.sequential_key(100_000)),
            ("business", col.words(900, 9)),
            ("license", col.string_number(1000, 99_999, "lic")),
            ("facility_type", col.categorical(12, "ft", skew=0.3)),
            ("risk", col.categorical(3, "rk", skew=4.0)),
            ("city", col.categorical(60, "ct", skew=0.4)),
            ("state", col.categorical(5, "st", skew=4.5)),
            ("zip", col.string_number(600, 640, "z")),
            ("inspection_type", col.categorical(10, "it", skew=0.3)),
            ("result", col.categorical(10, "rs", skew=0.2)),
            ("violation_count", col.integer(0, 12, skew=1.0)),
            ("latitude", col.floating(41.0, 42.5, 1)),
            ("longitude", col.derived(11, lambda v: int(10 * v))),
        ),
        _spec(
            "NCVoter", "voter registrations; many categoricals, age/birth OD",
            2000,
            ("voter_id", col.sequential_key(500_000)),
            ("last_name", col.words(1200, 8)),
            ("first_name", col.words(400, 6)),
            ("city", col.categorical(120, "city", skew=1.5)),
            ("state", col.categorical(3, "st", skew=4.5)),
            ("zip", col.integer(270, 290)),
            ("age", col.integer(18, 100)),
            ("birth_year", col.monotone_of(6, -1.0, jitter=0)),
            ("gender", col.categorical(3, "g", skew=0.2)),
            ("race", col.categorical(10, "race", skew=0.2)),
            ("ethnicity", col.categorical(3, "eth", skew=4.0)),
            ("party", col.categorical(8, "pty", skew=0.2)),
            ("county", col.categorical(100, "cnty", skew=1.3)),
            ("precinct", col.string_number(1, 300, "pr")),
            ("status", col.categorical(4, "sts", skew=4.5)),
        ),
        _spec(
            "Tax", "the FastDC running example; zip->city/state, salary->rate",
            2000,
            ("first_name", col.words(500, 6)),
            ("last_name", col.words(900, 8)),
            ("gender", col.categorical(2, "g", skew=4.0)),
            ("area_code", col.string_number(200, 999, "ac")),
            ("phone", col.string_number(1_000_000, 9_999_999, "ph")),
            ("zip", col.integer(100, 140)),
            ("city", col.derived(5, lambda v: f"city{(v // 2) % 20:02d}")),
            ("state", col.derived(5, lambda v: f"st{(v // 10) % 4}")),
            ("marital", col.categorical(2, "ms", skew=3.0)),
            ("has_child", col.categorical(2, "hc", skew=0.8)),
            ("salary", col.integer(1000, 9999, skew=1.0)),
            ("rate", col.monotone_of(10, 0.01, jitter=0)),
            ("single_exemp", col.integer(300, 312, skew=2.0)),
            ("married_exemp", col.derived(8, lambda v: "m500" if v == "ms000" else "m580")),
            ("child_exemp", col.derived(9, lambda v: "c700" if v == "hc000" else "c740")),
        ),
        _spec(
            "UCE", "high-entropy table: little redundancy, hardest per row",
            600,
            ("id", col.sequential_key(1_000_000)),
            ("u1", col.floating(0.0, 100.0, 1)),
            ("u2", col.integer(200, 700)),
            ("u3", col.monotone_of(2, 10.0, jitter=150)),
            ("u4", col.integer(20_000, 20_600)),
            ("u5", col.shared_domain(20_000, 20_600)),
            ("u6", col.string_number(5000, 5080, "u6")),
            ("u7", col.monotone_of(1, -1.0, jitter=0)),
            ("u8", col.string_number(10_000, 10_400, "u8")),
            ("u9", col.words(5000, 7)),
            ("u10", col.categorical(200, "u", skew=0.2)),
        ),
    ]
    return {spec.name: spec for spec in specs}


DATASETS: Dict[str, DatasetSpec] = _build_registry()

#: Table II column counts, for self-checks and documentation.
PAPER_COLUMN_COUNTS = {
    "Adult": 15, "Airport": 11, "Atom": 13, "Claim": 11, "Dit": 8,
    "FD": 20, "Flight": 17, "Hospital": 15, "Inspection": 13,
    "NCVoter": 15, "Tax": 15, "UCE": 11,
}

#: Table II row counts of the original datasets (documentation only —
#: synthetic instances are scaled down; see DESIGN.md substitutions).
PAPER_ROW_COUNTS = {
    "Adult": 32_561, "Airport": 55_113, "Atom": 147_067, "Claim": 112_000,
    "Dit": 780_000, "FD": 187_500, "Flight": 499_308, "Hospital": 114_919,
    "Inspection": 221_123, "NCVoter": 675_000, "Tax": 100_000, "UCE": 14_246,
}


def dataset_names() -> List[str]:
    """Names of all synthetic datasets, Table II order."""
    return sorted(DATASETS, key=lambda name: name.lower())


def generate_dataset(
    name: str, n_rows: Optional[int] = None, seed: int = 0
) -> Relation:
    """Generate a named dataset as a relation.

    :raises KeyError: for unknown names, listing the valid ones.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return spec.relation(n_rows, seed)


def staff_relation() -> Relation:
    """The paper's Table I ``staff`` example (initial four tuples)."""
    return relation_from_rows(
        ["Id", "Name", "Hired", "Level", "Mgr"],
        [
            (1, "Ana", 2000, 5, 1),
            (2, "Sam", 2001, 4, 1),
            (3, "Ana", 2001, 2, 2),
            (4, "Kai", 2002, 2, 2),
        ],
    )
