"""Baseline algorithms the paper compares 3DC against.

- :class:`~repro.baselines.incdc.IncDC` — the only prior dynamic DC
  algorithm [15] (insert-only, per-DC index probing);
- :func:`~repro.baselines.ecp.ecp_discover` — the fastest static algorithm
  [14], re-run from scratch on the updated data;
- :func:`~repro.baselines.fastdc.fastdc_discover` — the original FastDC
  [4] (naive pair evidence + DFS cover search).
"""

from repro.baselines.incdc import DensePredicateIndexes, IncDC
from repro.baselines.ecp import StaticDiscoveryResult, ecp_discover
from repro.baselines.fastdc import fastdc_discover

__all__ = [
    "IncDC",
    "DensePredicateIndexes",
    "StaticDiscoveryResult",
    "ecp_discover",
    "fastdc_discover",
]
