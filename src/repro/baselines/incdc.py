"""IncDC — the prior dynamic DC discovery algorithm (Qian et al. [15]).

Re-implemented from the paper's description for the baseline comparison
(the original is closed Java code).  Its defining design decisions — and
the source of its scaling pathology — are preserved:

- it builds *eager, dense* per-predicate indexes that cover **every DC in
  Σ**: per column an equality map plus a fully materialized
  greater-than map (one rid bitmap per distinct value), instead of 3DC's
  shared lazy/checkpointed indexes;
- for every inserted tuple it probes the retrieval plan of **every DC in
  Σ** (one probe + intersection per predicate, in both pair directions) to
  find violating pairs, so insert cost grows with ``|Σ| · |Δr| · |φ|``
  while 3DC's grows with ``|Δr| · |P|`` and ``|R| < |P| ≪ |Σ|``
  (Section VII-B2);
- it derives incremental evidence **only from violating pairs**, which is
  sufficient for maintaining exact DCs (a refinement can only be contained
  in an evidence that also contained its violated ancestor) but yields no
  evidence multiplicity — hence no ranking or approximate DCs;
- it supports **inserts only**; ``delete`` raises, as in the original.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, List, Sequence

from repro.bitmaps.bitutils import iter_bits
from repro.enumeration.inversion import refine_sigma
from repro.enumeration.settrie import SetTrie
from repro.predicates.operator import Operator
from repro.predicates.space import PredicateSpace
from repro.relational.relation import Relation


class DensePredicateIndexes:
    """Eager per-column equality and cumulative greater-than maps.

    ``gt[value]`` holds the full rid bitmap of rows with a strictly
    greater column value, materialized for *every* distinct value — the
    all-DCs index coverage that dominates IncDC's memory footprint.
    """

    def __init__(self, relation: Relation):
        self.relation = relation
        self.eq = [dict() for _ in relation.schema]
        self.gt = [
            dict() if column.is_numeric else None for column in relation.schema
        ]
        self._sorted_values = [
            [] if column.is_numeric else None for column in relation.schema
        ]
        self.indexed_bits = 0
        self.add_rows(relation.rids())

    def add_rows(self, rids: Iterable[int]) -> None:
        for rid in rids:
            bit = 1 << rid
            self.indexed_bits |= bit
            for position in range(len(self.relation.schema)):
                value = self.relation.value(rid, position)
                eq_map = self.eq[position]
                gt_map = self.gt[position]
                if value not in eq_map:
                    eq_map[value] = bit
                    if gt_map is not None:
                        values = self._sorted_values[position]
                        insort(values, value)
                        # New distinct value: its gt set is the union of
                        # the eq sets of all larger values.
                        union = 0
                        index = values.index(value)
                        for larger in values[index + 1 :]:
                            union |= eq_map[larger]
                        gt_map[value] = union
                else:
                    eq_map[value] |= bit
                if gt_map is not None:
                    # Every smaller value now has one more greater row.
                    for smaller in self._sorted_values[position]:
                        if smaller >= value:
                            break
                        gt_map[smaller] |= bit

    def probe(self, position: int, op: Operator, value) -> int:
        """Rid bits of rows whose column ``position`` satisfies
        ``row.column op value``."""
        eq_bits = self.eq[position].get(value, 0)
        if op is Operator.EQ:
            return eq_bits
        if op is Operator.NE:
            return self.indexed_bits & ~eq_bits
        gt_map = self.gt[position]
        if gt_map is None:
            raise ValueError("range probe on a categorical column")
        gt_bits = gt_map.get(value)
        if gt_bits is None:
            # Value absent from the index: derive from the nearest entry.
            gt_bits = 0
            for known in reversed(self._sorted_values[position]):
                if known <= value:
                    break
                gt_bits |= self.eq[position][known]
        if op is Operator.GT:
            return gt_bits
        if op is Operator.GE:
            return gt_bits | eq_bits
        if op is Operator.LT:
            return self.indexed_bits & ~gt_bits & ~eq_bits
        return self.indexed_bits & ~gt_bits  # LE


class IncDC:
    """Insert-only dynamic DC discovery via per-DC index probing."""

    def __init__(
        self,
        relation: Relation,
        space: PredicateSpace,
        sigma_masks: Sequence[int],
    ):
        self.relation = relation
        self.space = space
        self.sigma_masks = sorted(sigma_masks)
        self.indexes = DensePredicateIndexes(relation)
        # Per-DC retrieval plans: the ordered predicate list of each DC.
        self._plans = [
            (mask, space.predicates_of(mask)) for mask in self.sigma_masks
        ]

    @property
    def dc_masks(self) -> List[int]:
        return list(self.sigma_masks)

    def _violating_partners(self, plan, rid: int, partner_bits: int):
        """Partners among ``partner_bits`` forming violating pairs with
        ``rid`` under the plan's DC — ``(as_first, as_second)``."""
        row = self.relation.row(rid)
        as_first = partner_bits
        as_second = partner_bits
        for predicate in plan:
            if not as_first and not as_second:
                break
            if as_first:
                as_first &= self.indexes.probe(
                    predicate.rhs_position,
                    predicate.op.converse,
                    row[predicate.lhs_position],
                )
            if as_second:
                as_second &= self.indexes.probe(
                    predicate.lhs_position,
                    predicate.op,
                    row[predicate.rhs_position],
                )
        return as_first, as_second

    def insert(self, rows: Iterable[Sequence]) -> List[int]:
        """Insert rows, update Σ, and return the new DC masks."""
        new_rids = self.relation.insert(rows)
        self.indexes.add_rows(new_rids)
        if not new_rids:
            return self.dc_masks

        # Phase 1 — find every pair violating any current DC.  Probing is
        # per DC per new tuple: the |Σ|-proportional cost.
        violating_pairs = set()
        for rid in new_rids:
            partner_bits = self.indexes.indexed_bits & ~(1 << rid)
            for _, plan in self._plans:
                as_first, as_second = self._violating_partners(
                    plan, rid, partner_bits
                )
                for partner in iter_bits(as_first):
                    violating_pairs.add((rid, partner))
                for partner in iter_bits(as_second):
                    violating_pairs.add((partner, rid))

        # Phase 2 — evidence of the violating pairs only, then refinement.
        # Any refinement's future violations are contained in evidences
        # that also violated its ancestor, so this evidence subset is
        # complete for maintaining exact DCs.
        evidence_masks = set()
        for rid_t, rid_u in violating_pairs:
            evidence_masks.add(
                self.space.evidence_of_pair(
                    self.relation.row(rid_t), self.relation.row(rid_u)
                )
            )
        sigma = SetTrie(self.sigma_masks)
        refine_sigma(self.space, sigma, evidence_masks)
        self.sigma_masks = sorted(sigma.masks())
        self._plans = [
            (mask, self.space.predicates_of(mask)) for mask in self.sigma_masks
        ]
        return self.dc_masks

    def delete(self, rids) -> None:
        """IncDC does not support deletions [15]."""
        raise NotImplementedError(
            "IncDC targets tuple insertions only; deletions are unsupported "
            "(this is one of the limitations 3DC addresses)"
        )
