"""FastDC — the original static DC discovery algorithm (Chu et al. [4]).

Two-phase: (1) evidence-set building by direct comparison of every tuple
pair, (2) depth-first search for minimal covers.  Kept as the simplest
end-to-end static baseline and a third correctness oracle; its quadratic
evidence phase is exactly what motivates the evidence-context pipeline.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.ecp import StaticDiscoveryResult
from repro.enumeration.dfs import dfs_enumerate
from repro.evidence.naive import naive_evidence_set
from repro.observability import get_logger
from repro.predicates.space import (
    DEFAULT_CROSS_COLUMN_RATIO,
    PredicateSpace,
    build_predicate_space,
)
from repro.relational.relation import Relation

logger = get_logger(__name__)


def fastdc_discover(
    relation: Relation,
    space: Optional[PredicateSpace] = None,
    cross_column_ratio: float = DEFAULT_CROSS_COLUMN_RATIO,
) -> StaticDiscoveryResult:
    """Run FastDC-style static discovery on ``relation``."""
    timings = {}
    if space is None:
        started = time.perf_counter()
        space = build_predicate_space(
            relation, cross_column_ratio=cross_column_ratio
        )
        timings["space"] = time.perf_counter() - started

    started = time.perf_counter()
    evidence_set = naive_evidence_set(relation, space)
    timings["evidence"] = time.perf_counter() - started

    started = time.perf_counter()
    dc_masks = dfs_enumerate(space, list(evidence_set))
    timings["enumeration"] = time.perf_counter() - started

    logger.debug(
        "fastdc: %d rows -> %d evidences, %d DCs (%s)",
        len(relation), len(evidence_set), len(dc_masks),
        ", ".join(f"{k}={v:.3f}s" for k, v in timings.items()),
    )
    return StaticDiscoveryResult(
        space=space,
        evidence_set=evidence_set,
        dc_masks=dc_masks,
        timings=timings,
    )
