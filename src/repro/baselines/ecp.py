"""ECP — the static baseline (Pena et al. [14]).

The paper compares 3DC against re-running the fastest static algorithm on
the whole updated dataset.  Our static pipeline *is* an ECP analog
(evidence contexts + bitmap reconciliation + evidence inversion), so the
baseline is a thin functional wrapper that runs it from scratch and
reports phase timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.enumeration.mmcs import mmcs_enumerate
from repro.evidence.builder import build_evidence_state
from repro.observability import get_logger
from repro.predicates.space import (
    DEFAULT_CROSS_COLUMN_RATIO,
    PredicateSpace,
    build_predicate_space,
)
from repro.relational.relation import Relation

logger = get_logger(__name__)


@dataclass
class StaticDiscoveryResult:
    """Output of one static discovery run."""

    space: PredicateSpace
    evidence_set: object
    dc_masks: List[int]
    timings: dict

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


def ecp_discover(
    relation: Relation,
    space: Optional[PredicateSpace] = None,
    cross_column_ratio: float = DEFAULT_CROSS_COLUMN_RATIO,
) -> StaticDiscoveryResult:
    """Run the full static discovery on ``relation`` from scratch.

    :param space: reuse an existing predicate space (column-subset
        experiments); built from the data when omitted.
    """
    timings = {}
    if space is None:
        started = time.perf_counter()
        space = build_predicate_space(
            relation, cross_column_ratio=cross_column_ratio
        )
        timings["space"] = time.perf_counter() - started

    started = time.perf_counter()
    state = build_evidence_state(relation, space)
    timings["evidence"] = time.perf_counter() - started

    started = time.perf_counter()
    # MMCS is the fastest full-enumeration pass in this substrate; see
    # DynEIBackend.bootstrap for the rationale.
    dc_masks = mmcs_enumerate(space, list(state.evidence))
    timings["enumeration"] = time.perf_counter() - started

    logger.debug(
        "ecp: %d rows -> %d evidences, %d DCs (%s)",
        len(relation), len(state.evidence), len(dc_masks),
        ", ".join(f"{k}={v:.3f}s" for k, v in timings.items()),
    )
    return StaticDiscoveryResult(
        space=space,
        evidence_set=state.evidence,
        dc_masks=dc_masks,
        timings=timings,
    )
