"""Crash-safe file replacement: write temp, fsync, rename, fsync dir.

The only way to update a file such that *every* crash instant leaves
either the complete old content or the complete new content is the
classic sequence implemented here:

1. write the new bytes to a temp file **in the same directory** (rename
   must not cross filesystems),
2. flush and ``fsync`` the temp file (the data is durable under a name
   nobody reads),
3. ``os.replace`` it over the destination (atomic on POSIX and Windows),
4. ``fsync`` the directory (the *rename itself* is durable).

Fault points (:mod:`repro.durability.faults`) are planted between every
pair of steps so the crash matrix can prove the guarantee instead of
assuming it.  Callers pick the fault-point prefix so checkpoint writes
and plain state saves are separately addressable in tests.
"""

from __future__ import annotations

import json
import os

from repro.durability.faults import fault_point
from repro.observability.probe import get_probe

#: Suffix of in-flight temp files.  Recovery ignores (and the power-loss
#: simulator deletes) anything with this suffix: an un-renamed temp is
#: not part of the durable state, whatever it contains.
TMP_SUFFIX = ".tmp"


def fsync_directory(path) -> None:
    """Force the directory entry changes under ``path`` to disk.

    Platforms whose directory handles cannot be fsync'd (some Windows
    configurations) silently skip — rename durability is then the OS's
    promise, which is the best available there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data: bytes, fault_prefix: str = "checkpoint") -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp_path = path + TMP_SUFFIX
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            fault_point(f"{fault_prefix}.pre_fsync")
            os.fsync(handle.fileno())
    except BaseException:
        # The temp never became the real file and was never fsync'd, so
        # even a real crash here could lose it — removing it is the
        # pessimistic disk model the crash tests assume.
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise
    fault_point(f"{fault_prefix}.pre_rename")
    os.replace(tmp_path, path)
    fsync_directory(directory)
    fault_point(f"{fault_prefix}.post_rename")
    probe = get_probe()
    if probe is not None:
        probe.inc("durability.atomic_writes")
        probe.inc("durability.atomic_bytes", len(data))


def atomic_write_json(path, payload, fault_prefix: str = "checkpoint") -> None:
    """Atomically replace ``path`` with the canonical JSON of ``payload``.

    Canonical means sorted keys and minimal separators, so equal logical
    payloads produce equal files byte for byte — the property the crash
    matrix and the worker-determinism tests both compare on.
    """
    data = canonical_json_bytes(payload)
    atomic_write_bytes(path, data, fault_prefix=fault_prefix)


def canonical_json_bytes(payload) -> bytes:
    """The canonical (sorted, compact) JSON encoding used on disk."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
