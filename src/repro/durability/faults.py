"""Deterministic fault injection for crash testing the durability layer.

Durability code is only trustworthy if every crash window it claims to
survive is actually exercised.  This module plants named *fault points*
at the interesting instants of the write-ahead-log and checkpoint paths
(just before a record is framed, between write and fsync, between the
temp-file fsync and the rename, after the rename) and lets a test *arm*
one of them: the next time execution reaches the armed point, a
:class:`SimulatedCrash` is raised, modeling the process dying right
there.

The registry is the test surface: the crash matrix in
``tests/test_crash_matrix.py`` iterates :data:`FAULT_POINTS` so that a
newly planted point is automatically covered (and a typo in a
``fault_point()`` call site fails loudly instead of silently never
firing).

The injector is process-global and disarmed by default; production code
pays one dict lookup per fault point.  Tests use::

    with get_injector().armed("wal.pre_fsync"):
        session.insert(batch)          # raises SimulatedCrash
"""

from __future__ import annotations

from contextlib import contextmanager

#: Every plantable crash instant.  ``wal.*`` fire inside
#: :meth:`~repro.durability.wal.WriteAheadLog.append`; ``checkpoint.*``
#: fire inside the checkpoint store's atomic write; ``state_save.*``
#: fire inside :func:`repro.core.state_io.save_state`.
FAULT_POINTS = frozenset(
    {
        # WAL append path, in execution order.
        "wal.append",        # before any record bytes are written
        "wal.pre_fsync",     # record written to the OS, not yet fsync'd
        "wal.post_fsync",    # record durable, not yet applied in memory
        # Atomic checkpoint write, in execution order.
        "checkpoint.pre_fsync",    # temp file written, not yet fsync'd
        "checkpoint.pre_rename",   # temp durable, final name not swapped
        "checkpoint.post_rename",  # checkpoint live, WAL not yet reset
        # Atomic plain state save (the non-session ``save_state`` path).
        "state_save.pre_fsync",
        "state_save.pre_rename",
        "state_save.post_rename",
        # Shard-executor worker, right before it runs a claimed evidence
        # block (fires in the worker process, never the parent).
        "executor.shard",
    }
)


class SimulatedCrash(RuntimeError):
    """Raised at an armed fault point, modeling the process dying there.

    Carries the point name so harnesses can assert *where* they died.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class FaultInjector:
    """Arms fault points and raises when execution reaches one.

    :meth:`hit` is the production-side call; it is a no-op unless the
    point is armed.  ``skip`` arms the *(skip+1)*-th hit, which lets a
    test crash on e.g. the third WAL append of a workload.
    """

    def __init__(self):
        self._armed = {}
        self.crash_count = 0

    def arm(self, point: str, skip: int = 0) -> None:
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        self._armed[point] = skip

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything (test teardown)."""
        self._armed.clear()
        self.crash_count = 0

    def hit(self, point: str) -> None:
        """Called by durability code at a registered fault point."""
        if point not in self._armed:
            return
        if self._armed[point] > 0:
            self._armed[point] -= 1
            return
        del self._armed[point]
        self.crash_count += 1
        raise SimulatedCrash(point)

    @contextmanager
    def armed(self, point: str, skip: int = 0):
        """Arm ``point`` for the duration of a ``with`` block."""
        self.arm(point, skip=skip)
        try:
            yield self
        finally:
            self.disarm(point)


_INJECTOR = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-global injector (tests arm it, teardown resets it)."""
    return _INJECTOR


def fault_point(name: str) -> None:
    """Production-side hook: crash here iff a test armed this point."""
    if name not in FAULT_POINTS:
        raise ValueError(f"unregistered fault point {name!r}")
    _INJECTOR.hit(name)
