"""The pessimistic disk model behind crash tests.

A :class:`~repro.durability.faults.SimulatedCrash` kills the pipeline
in-process, but the files it leaves behind still reflect everything the
process ever wrote — including bytes that were never fsync'd and that a
real power cut could lose.  :func:`simulate_power_loss` converts the
on-disk session directory into the *worst admissible* post-crash image:

- the WAL is truncated to its last fsync'd byte boundary (un-synced
  appends vanish; this is what makes ``wal.pre_fsync`` crashes lose the
  batch deterministically rather than depending on page-cache luck);
- un-renamed ``*.tmp`` files are deleted (an un-renamed temp was either
  not yet fsync'd or not yet the real file — in both cases recovery must
  not need it).

Renamed files are kept intact: the atomic writer fsyncs the temp before
``os.replace`` and the directory after, so once a rename is observed the
full new content is durable.  Anything the recovery path survives under
this model it also survives under real power loss, because every real
outcome preserves at least as much data.
"""

from __future__ import annotations

import os

from repro.durability.atomic import TMP_SUFFIX


def discard_unsynced_tail(wal_path, durable_size: int) -> int:
    """Truncate the WAL to its last fsync'd boundary; returns bytes cut."""
    try:
        actual = os.path.getsize(wal_path)
    except OSError:
        return 0
    if actual <= durable_size:
        return 0
    with open(wal_path, "rb+") as handle:
        handle.truncate(durable_size)
    return actual - durable_size

def drop_tmp_files(directory) -> list:
    """Delete in-flight temp files under ``directory`` (recursively)."""
    dropped = []
    for root, _dirs, names in os.walk(os.fspath(directory)):
        for name in names:
            if name.endswith(TMP_SUFFIX):
                path = os.path.join(root, name)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                dropped.append(path)
    return dropped
