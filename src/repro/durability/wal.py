"""The write-ahead update log: durable insert/delete batches.

A :class:`WriteAheadLog` is an append-only file of framed JSON records
(:mod:`repro.durability.framing`), one per update batch.  The durability
contract is *log-before-apply*: :meth:`append` returns only after the
record is fsync'd, so by the time the in-memory discoverer touches a
batch, recovery can always replay it.  Conversely, a batch whose record
never reached disk never happened — recovery lands on the state before
it, which is also a state an uninterrupted run could have produced.

Records carry a monotonically increasing ``seq`` that survives log
resets: a checkpoint stores the ``seq`` it incorporates, and replay
skips records at or below it, which makes the checkpoint→WAL-reset pair
crash-safe in both orders (a crash between the checkpoint rename and
the reset only leaves already-incorporated records, which are skipped).

The log tracks its *durable size* — the byte length at the last fsync —
so the power-loss simulator (:mod:`repro.durability.crashsim`) can
discard exactly the bytes a real power cut could lose.  Opening an
existing log first truncates it to its valid prefix: a torn tail a real
power cut left behind must be cut off before new records are appended,
or everything appended after it would be unreachable at replay.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.durability.atomic import canonical_json_bytes
from repro.durability.faults import fault_point
from repro.durability.framing import (
    decode_envelopes,
    decode_frames,
    encode_record,
)
from repro.observability import flight, tracectx
from repro.observability.probe import get_probe


class WriteAheadLog:
    """Append-only, checksum-framed, fsync'd update log."""

    def __init__(self, path):
        self.path = os.fspath(path)
        # A real power cut can leave a torn frame at the tail that no
        # simulator cleaned up.  Truncate to the valid prefix *before*
        # positioning the append handle: appending after garbage would
        # make every later record — fsync'd and acknowledged — invisible
        # to replay, which stops at the first bad frame.
        _, good_size = self.read_records(self.path)
        self._handle = open(self.path, "ab")
        if self._handle.tell() > good_size:
            self._handle.truncate(good_size)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._size = good_size
        #: Byte length known to be on disk (updated after each fsync).
        self.durable_size = self._size

    # -- writing ---------------------------------------------------------

    def append(
        self,
        record: dict,
        trace_id: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Frame, write, and fsync one record; crash-safe by contract.

        ``trace_id`` stamps the frame with the writing batch cycle's
        trace (see :mod:`repro.durability.framing`); when omitted, the
        thread's active trace context — the batch cycle, in the serving
        layer — is used.  ``epoch`` stamps the writer's commit epoch
        into the envelope (the fleet's fencing token); when omitted the
        pre-epoch frame layouts are written unchanged, so logs from
        sessions that never joined a fleet stay byte-identical.
        """
        if trace_id is None:
            context = tracectx.current()
            if context is not None:
                trace_id = context.trace_id
        with flight.trace_span("durability.wal_append") as span:
            fault_point("wal.append")
            frame = encode_record(
                canonical_json_bytes(record), trace_id, epoch=epoch
            )
            self._handle.write(frame)
            self._handle.flush()
            fault_point("wal.pre_fsync")
            os.fsync(self._handle.fileno())
            self._size += len(frame)
            self.durable_size = self._size
            probe = get_probe()
            if probe is not None:
                probe.inc("durability.wal_records")
                probe.inc("durability.wal_bytes", len(frame))
                probe.inc("durability.fsyncs")
            if span is not None:
                span["attrs"]["bytes"] = len(frame)
                span["attrs"]["seq"] = record.get("seq")
            fault_point("wal.post_fsync")

    def append_frame(self, frame: bytes, seq: Optional[int] = None) -> None:
        """Write and fsync one *pre-framed* record verbatim.

        The replication apply path: a follower appends the primary's
        frame bytes unchanged (trace id included), so the follower's log
        is byte-for-byte the stream the primary acknowledged and any
        offline frame-level tooling reads both the same way.  The bytes
        must decode to exactly one valid frame — a follower must never
        persist what it could not replay.
        """
        decoded, good_size = decode_frames(frame)
        if len(decoded) != 1 or good_size != len(frame):
            raise ValueError(
                "append_frame requires exactly one complete valid frame"
            )
        with flight.trace_span("durability.wal_append") as span:
            fault_point("wal.append")
            self._handle.write(frame)
            self._handle.flush()
            fault_point("wal.pre_fsync")
            os.fsync(self._handle.fileno())
            self._size += len(frame)
            self.durable_size = self._size
            probe = get_probe()
            if probe is not None:
                probe.inc("durability.wal_records")
                probe.inc("durability.wal_bytes", len(frame))
                probe.inc("durability.fsyncs")
            if span is not None:
                span["attrs"]["bytes"] = len(frame)
                span["attrs"]["seq"] = seq
                span["attrs"]["replicated"] = True
            fault_point("wal.post_fsync")

    def reset(self) -> None:
        """Truncate the log to empty (after a checkpoint incorporated it).

        Safe at any crash instant: until the truncate is durable the old
        records survive, and replay skips them by ``seq``.
        """
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._size = 0
        self.durable_size = 0
        probe = get_probe()
        if probe is not None:
            probe.inc("durability.wal_resets")
            probe.inc("durability.fsyncs")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    @property
    def is_open(self) -> bool:
        return not self._handle.closed

    # -- reading ---------------------------------------------------------

    @staticmethod
    def read_records(path) -> Tuple[list, int]:
        """Decode ``(records, good_size)`` of the log's valid prefix.

        Corruption past the valid prefix — a torn tail, a flipped byte,
        an empty file — is normal after a crash and silently truncates
        the result; it never raises.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], 0
        envelopes, _ = decode_envelopes(data)
        records = []
        good_size = 0
        for envelope in envelopes:
            try:
                record = json.loads(envelope.payload)
            except ValueError:
                # A frame whose checksum holds but whose payload is not
                # JSON was never written by us: stop trusting the log.
                break
            records.append(record)
            good_size += envelope.size
        return records, good_size

    @staticmethod
    def read_traced_records(path) -> List[Tuple[dict, Optional[str]]]:
        """``(record, trace id or None)`` pairs of the log's valid prefix.

        Read-only (no truncation, no append handle) — safe against a log
        another process is writing; the doctor bundle uses this to join
        WAL contents with recorded traces.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return []
        frames, _ = decode_frames(data)
        records = []
        for payload, trace_id in frames:
            try:
                record = json.loads(payload)
            except ValueError:
                break
            records.append((record, trace_id))
        return records

    def replay(self, after_seq: int = -1) -> Iterator[dict]:
        """Valid records with ``seq > after_seq``, oldest first."""
        records, _ = self.read_records(self.path)
        for record in records:
            if record.get("seq", -1) > after_seq:
                yield record

    @property
    def size(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path!r}, {self._size} bytes)"


#: How many of the newest consumed WAL bytes a :class:`WALReader`
#: fingerprints to detect in-place truncate-then-append rewrites whose
#: sizes alias with plain appends.
_TAIL_PROBE = 64


class TailFrame(NamedTuple):
    """One decoded frame from a :class:`WALReader` poll."""

    record: dict
    raw: bytes
    trace_id: Optional[str]
    #: Commit epoch of the writer (None for pre-epoch frame layouts).
    epoch: Optional[int] = None


class WALReader:
    """Tail-follow a live WAL without reopening it per poll.

    Keeps one read handle and a byte offset; :meth:`poll` reads only the
    bytes appended since the previous call and returns the newly
    completed frames.  A torn tail — a frame whose header landed but
    whose body has not (yet) — stays buffered until its continuation
    arrives, so a reader polling mid-append sees nothing rather than
    garbage, and the rest of the frame on the next poll
    (*torn-tail-then-continue*).

    The one discontinuity an append-only log allows is in-place
    truncation: a checkpoint resetting the WAL, or a recovering writer
    cutting a crash-torn tail.  A truncation that leaves the file
    *smaller* than the consumed offset is visible in ``fstat`` alone —
    but a truncate-then-append that grows the file back past the old
    offset is not (the sizes alias).  :meth:`poll` therefore also
    fingerprints the last :data:`_TAIL_PROBE` consumed bytes and
    re-reads them every poll: an append-only writer never changes bytes
    below the offset, while any rewrite does (replacement frames carry
    strictly larger ``seq`` values, so the bytes cannot repeat).
    Either signal triggers a rescan from the start with ``reset=True``;
    frames re-read after a reset may repeat, and it is the caller's job
    (the replication feed's) to dedup by ``seq``.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._handle = None
        #: Bytes consumed from the file (buffered bytes included).
        self._offset = 0
        #: Undecodable tail bytes awaiting their continuation.
        self._buffer = b""
        #: Fingerprint of the newest consumed bytes (reset detection).
        self._tail_mark = b""
        #: How many in-place truncations this reader has survived.
        self.resets = 0

    def poll(self) -> Tuple[List[TailFrame], bool]:
        """``(new_frames, reset)`` appended since the previous poll."""
        reset = False
        if self._handle is None:
            try:
                self._handle = open(self.path, "rb")
            except FileNotFoundError:
                return [], False
        try:
            size = os.fstat(self._handle.fileno()).st_size
        except OSError:
            return [], False
        if size < self._offset:
            reset = True
        elif self._tail_mark:
            self._handle.seek(self._offset - len(self._tail_mark))
            if self._handle.read(len(self._tail_mark)) != self._tail_mark:
                reset = True
        if reset:
            self.resets += 1
            self._buffer = b""
            self._offset = 0
            self._tail_mark = b""
        if size > self._offset:
            self._handle.seek(self._offset)
            chunk = self._handle.read(size - self._offset)
            self._offset += len(chunk)
            self._buffer += chunk
            self._tail_mark = (self._tail_mark + chunk)[-_TAIL_PROBE:]
        frames: List[TailFrame] = []
        decoded, good_size = decode_envelopes(self._buffer)
        consumed = 0
        for envelope in decoded:
            raw = self._buffer[consumed : consumed + envelope.size]
            try:
                record = json.loads(envelope.payload)
            except ValueError:
                # Checksum-valid but not JSON: never written by us.
                # Stop trusting the stream (mirrors read_records).
                break
            frames.append(
                TailFrame(record, raw, envelope.trace_id, envelope.epoch)
            )
            consumed += envelope.size
        self._buffer = self._buffer[consumed:]
        return frames, reset

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "WALReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WALReader({self.path!r}, offset={self._offset}, "
            f"{len(self._buffer)} buffered)"
        )
