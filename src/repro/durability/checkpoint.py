"""Atomic, checksummed, rotated checkpoints of serialized discoverer state.

A checkpoint file is canonical JSON::

    {"format": "3dc-checkpoint", "version": 1,
     "wal_seq": <last WAL seq incorporated>,
     "checksum": "<crc32 hex of the canonical state encoding>",
     "state": {...state_to_dict() payload...}}

written via the atomic replace sequence (:mod:`repro.durability.atomic`)
under the name ``ckpt-<wal_seq, zero-padded>.json``; recency order is
the *numeric* order of the seq parsed back out of the name (zero-padding
exists only for human-friendly ``ls`` output — it runs out at 10 digits
and is never relied on).  Recovery scans newest→oldest and takes the first file
whose header *and* checksum validate — a half-written or bit-rotted
checkpoint silently falls back to its predecessor rather than killing
the session (the WAL still has everything since that predecessor).

Retention keeps the newest ``retain`` checkpoints; rotation deletes only
after a successful write, so there is always at least one valid
checkpoint on disk from the moment a session is created.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Optional, Tuple

from repro.durability.atomic import (
    TMP_SUFFIX,
    atomic_write_bytes,
    canonical_json_bytes,
)
from repro.observability.probe import get_probe

CHECKPOINT_FORMAT = "3dc-checkpoint"
CHECKPOINT_VERSION = 1
_PREFIX = "ckpt-"
_SUFFIX = ".json"


class CheckpointError(ValueError):
    """A checkpoint file failed structural or checksum validation."""


def checkpoint_name(wal_seq: int) -> str:
    return f"{_PREFIX}{wal_seq:010d}{_SUFFIX}"


def state_checksum(state_payload: dict) -> str:
    """crc32 (hex) of the canonical encoding of a state payload."""
    return format(zlib.crc32(canonical_json_bytes(state_payload)), "08x")


def write_checkpoint(directory, wal_seq: int, state_payload: dict) -> str:
    """Atomically write one checkpoint; returns its path."""
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "wal_seq": wal_seq,
        "checksum": state_checksum(state_payload),
        "state": state_payload,
    }
    path = os.path.join(os.fspath(directory), checkpoint_name(wal_seq))
    data = canonical_json_bytes(document)
    atomic_write_bytes(path, data, fault_prefix="checkpoint")
    probe = get_probe()
    if probe is not None:
        probe.inc("durability.checkpoints")
        probe.inc("durability.checkpoint_bytes", len(data))
    return path


def validate_checkpoint(document: dict) -> dict:
    """Return the state payload of a structurally valid checkpoint."""
    if not isinstance(document, dict):
        raise CheckpointError("checkpoint is not a JSON object")
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"not a {CHECKPOINT_FORMAT} document")
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {document.get('version')!r}"
        )
    state = document.get("state")
    if state is None or "wal_seq" not in document:
        raise CheckpointError("checkpoint missing state or wal_seq")
    if document.get("checksum") != state_checksum(state):
        raise CheckpointError("checkpoint state checksum mismatch")
    return state


def parse_checkpoint_seq(name: str) -> Optional[int]:
    """The ``wal_seq`` encoded in a checkpoint file name, else ``None``."""
    if (
        not name.startswith(_PREFIX)
        or not name.endswith(_SUFFIX)
        or name.endswith(TMP_SUFFIX)
    ):
        return None
    seq_text = name[len(_PREFIX) : -len(_SUFFIX)]
    try:
        return int(seq_text)
    except ValueError:
        return None


def list_checkpoints(directory) -> list:
    """Checkpoint paths in the directory, newest (highest seq) first.

    Ordering parses the seq out of each name and compares numerically:
    zero-padding makes lexical order *usually* agree, but a seq past
    10**10 outgrows the padding and lexical order would then prefer an
    older checkpoint.
    """
    directory = os.fspath(directory)
    entries = []
    for name in os.listdir(directory):
        seq = parse_checkpoint_seq(name)
        if seq is not None:
            entries.append((seq, name))
    entries.sort(reverse=True)
    return [os.path.join(directory, name) for _seq, name in entries]


def load_latest_checkpoint(directory) -> Optional[Tuple[int, dict, str]]:
    """``(wal_seq, state_payload, path)`` of the newest valid checkpoint.

    Invalid candidates (truncated write that somehow got renamed, flipped
    bytes, foreign files matching the name pattern) are skipped, not
    fatal; ``None`` means no valid checkpoint exists at all.
    """
    for path in list_checkpoints(directory):
        try:
            with open(path, "rb") as handle:
                document = json.load(handle)
            state = validate_checkpoint(document)
        except (OSError, ValueError):
            continue
        return document["wal_seq"], state, path
    return None


def apply_retention(directory, retain: int) -> list:
    """Delete all but the newest ``retain`` checkpoints; returns deleted
    paths.  ``retain < 1`` is coerced to 1 — the durability contract
    requires a checkpoint to exist at all times."""
    retain = max(1, retain)
    doomed = list_checkpoints(directory)[retain:]
    for path in doomed:
        try:
            os.unlink(path)
        except OSError:
            pass
    return doomed
