"""Durable dynamic-discovery sessions: WAL + checkpoints around a discoverer.

A :class:`DurableSession` owns a directory::

    <dir>/session.json       manifest (format, checkpoint cadence, retention)
    <dir>/wal.log            write-ahead update log (framed, fsync'd)
    <dir>/checkpoints/       rotated atomic checkpoints (ckpt-<seq>.json)

and wraps a fitted :class:`~repro.core.discoverer.DCDiscoverer` so that
every ``insert``/``delete``/``update`` batch is durably logged *before*
it touches in-memory state, and the full serialized state is periodically
checkpointed atomically.  After a crash at any instant,
:meth:`DurableSession.recover` loads the newest valid checkpoint and
replays the WAL tail, landing on exactly the state an uninterrupted run
over the durably-logged batch prefix would have produced — byte for byte
(the crash matrix in ``tests/test_crash_matrix.py`` proves this for
every registered fault point).

Batches are validated *before* they are logged: a record that reaches
the WAL must be replayable, otherwise recovery would re-raise the same
error forever.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.discoverer import DCDiscoverer
    from repro.core.results import UpdateResult

# NOTE: repro.core is imported lazily inside methods, not here: core's
# state_io routes its saves through repro.durability.atomic, so a
# module-level import in either direction would be circular.  durability
# below core, session on top — the lazy import keeps the package
# importable from both ends.
from repro.durability.atomic import atomic_write_json
from repro.durability.checkpoint import (
    apply_retention,
    list_checkpoints,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.durability.crashsim import discard_unsynced_tail, drop_tmp_files
from repro.durability.wal import WriteAheadLog
from repro.observability import get_logger
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema

logger = get_logger(__name__)

MANIFEST_NAME = "session.json"
WAL_NAME = "wal.log"
CHECKPOINT_DIR = "checkpoints"
MANIFEST_FORMAT = "3dc-session"
MANIFEST_VERSION = 1

DEFAULT_CHECKPOINT_EVERY = 8
DEFAULT_RETAIN = 3

#: Epoch a session is minted at (and the epoch every pre-fleet manifest
#: implicitly carries — legacy manifests without an ``epoch`` field
#: recover at this value).
INITIAL_EPOCH = 1


class SessionError(RuntimeError):
    """The session directory is missing, malformed, or unrecoverable."""


class SessionFencedError(SessionError):
    """A write reached a session whose commit epoch has been fenced.

    The fleet promoted a successor: every epoch below ``fenced_below``
    is dead, and this session's epoch is one of them.  The node must
    rejoin as a follower (which discards its unreplicated tail) before
    it can make progress again.
    """

    def __init__(self, epoch: int, fenced_below: int):
        super().__init__(
            f"session epoch {epoch} is fenced (epochs < {fenced_below} "
            f"are dead); rejoin as a follower to continue"
        )
        self.epoch = epoch
        self.fenced_below = fenced_below


def read_manifest(directory) -> dict:
    """Best-effort read of a session manifest (``{}`` when unreadable).

    Read-only helper for fleet tooling (replication sources report the
    upstream's epoch from it); never raises on a missing or torn file.
    """
    try:
        with open(os.path.join(os.fspath(directory), MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return {}
    return manifest if isinstance(manifest, dict) else {}


def _coerce_rows(schema: Schema, rows: Iterable[Sequence]) -> list:
    """Undo JSON's numeric lossiness for replayed/logged rows (a float
    column's integral values come back as ints)."""
    columns = list(schema)
    return [
        tuple(
            float(value)
            if column.ctype is ColumnType.FLOAT and isinstance(value, int)
            else value
            for value, column in zip(row, columns)
        )
        for row in rows
    ]


class DurableSession:
    """Crash-safe wrapper around one discoverer's update stream.

    Use :meth:`create` for a fresh session and :meth:`recover` (or its
    alias :meth:`open`) to resume one — never the constructor directly.
    """

    def __init__(
        self,
        directory,
        discoverer: DCDiscoverer,
        wal: WriteAheadLog,
        checkpoint_every: int,
        retain: int,
        next_seq: int,
        checkpoint_seq: int,
        pending_records: int = 0,
        replayed_records: int = 0,
        epoch: int = INITIAL_EPOCH,
        fenced_below: int = 0,
    ):
        self.directory = os.fspath(directory)
        self.discoverer = discoverer
        self.checkpoint_every = checkpoint_every
        self.retain = retain
        self._wal = wal
        self._next_seq = next_seq
        self._checkpoint_seq = checkpoint_seq
        self._pending_records = pending_records
        #: WAL records replayed by the most recent recovery (0 for create).
        self.replayed_records = replayed_records
        self._epoch = epoch
        self._fenced_below = fenced_below

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls,
        discoverer: DCDiscoverer,
        directory,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        retain: int = DEFAULT_RETAIN,
    ) -> "DurableSession":
        """Initialize a session directory around a discoverer.

        Fits the discoverer if needed, writes the initial checkpoint,
        and only then the manifest — the manifest is the commit point,
        so a session is recoverable from the moment this returns, and a
        crash mid-create leaves a directory ``create`` can simply retry
        (never one that both ``create`` and ``recover`` refuse).
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        directory = os.fspath(directory)
        checkpoint_dir = os.path.join(directory, CHECKPOINT_DIR)
        os.makedirs(checkpoint_dir, exist_ok=True)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise SessionError(f"session already exists in {directory}")
        if not discoverer._fitted:
            discoverer.fit()
        from repro.core.state_io import state_to_dict

        with discoverer.instrumentation.activate():
            write_checkpoint(checkpoint_dir, 0, state_to_dict(discoverer))
        atomic_write_json(
            os.path.join(directory, MANIFEST_NAME),
            {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "checkpoint_every": checkpoint_every,
                "retain": retain,
                "epoch": INITIAL_EPOCH,
            },
            fault_prefix="checkpoint",
        )
        wal = WriteAheadLog(os.path.join(directory, WAL_NAME))
        logger.debug("created durable session in %s", directory)
        return cls(
            directory,
            discoverer,
            wal,
            checkpoint_every=checkpoint_every,
            retain=retain,
            next_seq=1,
            checkpoint_seq=0,
        )

    @classmethod
    def recover(cls, directory) -> "DurableSession":
        """Resume a session: newest valid checkpoint + WAL tail replay."""
        directory = os.fspath(directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SessionError(
                f"no readable session manifest in {directory}"
            ) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise SessionError(f"not a {MANIFEST_FORMAT} directory")
        checkpoint_dir = os.path.join(directory, CHECKPOINT_DIR)
        loaded = load_latest_checkpoint(checkpoint_dir)
        if loaded is None:
            raise SessionError(f"no valid checkpoint in {checkpoint_dir}")
        from repro.core.state_io import state_from_dict

        checkpoint_seq, state_payload, path = loaded
        discoverer = state_from_dict(state_payload)

        wal = WriteAheadLog(os.path.join(directory, WAL_NAME))
        schema = discoverer.relation.schema
        last_seq = checkpoint_seq
        replayed = 0
        with discoverer.instrumentation.activate():
            for record in wal.replay(after_seq=checkpoint_seq):
                op = record.get("op")
                if op == "insert":
                    discoverer.insert(_coerce_rows(schema, record["rows"]))
                elif op == "delete":
                    discoverer.delete(record["rids"])
                else:
                    raise SessionError(f"unknown WAL op {op!r}")
                last_seq = record["seq"]
                replayed += 1
        instrumentation = discoverer.instrumentation
        if instrumentation.enabled:
            instrumentation.inc("durability.recovery_replayed", replayed)
        logger.debug(
            "recovered session from %s (+%d WAL records)", path, replayed
        )
        return cls(
            directory,
            discoverer,
            wal,
            checkpoint_every=manifest.get(
                "checkpoint_every", DEFAULT_CHECKPOINT_EVERY
            ),
            retain=manifest.get("retain", DEFAULT_RETAIN),
            next_seq=last_seq + 1,
            checkpoint_seq=checkpoint_seq,
            pending_records=replayed,
            replayed_records=replayed,
            epoch=int(manifest.get("epoch", INITIAL_EPOCH)),
            fenced_below=int(manifest.get("fenced_below", 0)),
        )

    #: Alias: resuming and recovering are the same code path by design.
    open = recover

    # -- commit epoch and fencing ----------------------------------------

    @property
    def epoch(self) -> int:
        """The session's commit epoch: minted at create, bumped by every
        promotion, stamped into each WAL frame's envelope."""
        return self._epoch

    @property
    def fenced_below(self) -> int:
        """Epochs below this value are dead (0 = never fenced)."""
        return self._fenced_below

    @property
    def is_fenced(self) -> bool:
        """Whether this session's own epoch has been fenced off."""
        return self._epoch < self._fenced_below

    def _write_manifest(self) -> None:
        """Atomically rewrite the manifest with the live epoch/fence.

        The manifest is the commit point for epoch transitions exactly as
        it is for session creation: a promotion is durable — and frames
        may carry the new epoch — only after this rename lands.
        """
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "checkpoint_every": self.checkpoint_every,
            "retain": self.retain,
            "epoch": self._epoch,
        }
        if self._fenced_below:
            manifest["fenced_below"] = self._fenced_below
        atomic_write_json(
            os.path.join(self.directory, MANIFEST_NAME),
            manifest,
            fault_prefix="checkpoint",
        )

    def bump_epoch(self, new_epoch: Optional[int] = None) -> int:
        """Move to a strictly higher epoch (a promotion), durably.

        The manifest write happens *before* the in-memory epoch flips, so
        no frame can ever carry an epoch the directory does not yet
        admit.  Returns the new epoch.
        """
        if new_epoch is None:
            new_epoch = self._epoch + 1
        if new_epoch <= self._epoch:
            raise SessionError(
                f"epoch must increase: {new_epoch} <= current {self._epoch}"
            )
        previous, self._epoch = self._epoch, new_epoch
        try:
            self._write_manifest()
        except BaseException:
            self._epoch = previous
            raise
        logger.debug(
            "session %s epoch %d -> %d", self.directory, previous, new_epoch
        )
        return new_epoch

    def adopt_epoch(self, epoch: int) -> bool:
        """Adopt a higher epoch observed on the replication stream.

        Followers call this when their upstream's frames carry a newer
        epoch than their own — the normal way promotion knowledge spreads
        down a replication chain.  Idempotent; returns True if the epoch
        moved.  Adopting an epoch at or above ``fenced_below`` clears the
        fence (the node rejoined the live timeline).
        """
        if epoch <= self._epoch:
            return False
        self.bump_epoch(epoch)
        return True

    def fence(self, below_epoch: int) -> bool:
        """Record that every epoch below ``below_epoch`` is dead.

        The failover orchestrator's hammer: a session whose own epoch is
        fenced refuses writes with :class:`SessionFencedError` until it
        rejoins as a follower at a live epoch.  Durable (a restarted
        zombie stays fenced) and idempotent; returns True if the fence
        moved.
        """
        if below_epoch <= self._fenced_below:
            return False
        previous, self._fenced_below = self._fenced_below, below_epoch
        try:
            self._write_manifest()
        except BaseException:
            self._fenced_below = previous
            raise
        logger.debug(
            "session %s fenced below epoch %d (own epoch %d)",
            self.directory,
            below_epoch,
            self._epoch,
        )
        return True

    def _check_not_fenced(self) -> None:
        if self.is_fenced:
            raise SessionFencedError(self._epoch, self._fenced_below)

    # -- update stream ---------------------------------------------------

    def insert(self, rows: Iterable[Sequence]) -> UpdateResult:
        """Durably log, then apply, one insert batch."""
        self._check_not_fenced()
        materialized = [list(row) for row in rows]
        self._validate_insert(materialized)
        self._log({"op": "insert", "rows": materialized})
        result = self.discoverer.insert(
            _coerce_rows(self.discoverer.relation.schema, materialized)
        )
        self._maybe_checkpoint()
        return result

    def delete(self, rids: Iterable[int]) -> UpdateResult:
        """Durably log, then apply, one delete batch."""
        self._check_not_fenced()
        rid_list = sorted(int(rid) for rid in rids)
        self._validate_delete(rid_list)
        self._log({"op": "delete", "rids": rid_list})
        result = self.discoverer.delete(rid_list)
        self._maybe_checkpoint()
        return result

    def update(
        self, delete_rids: Iterable[int], insert_rows: Iterable[Sequence]
    ) -> Tuple[UpdateResult, UpdateResult]:
        """Mixed update as delete-then-insert — two WAL records, matching
        the discoverer's (and the paper's) decomposition."""
        return self.delete(delete_rids), self.insert(insert_rows)

    def validate_insert_rows(self, rows: Iterable[Sequence]) -> list:
        """Check an insert batch against the schema *without* applying it.

        Returns the materialized rows.  The service layer uses this for
        per-request admission before merging requests into one batch (a
        bad row must fail its own request, not the whole cycle).
        """
        materialized = [list(row) for row in rows]
        self._validate_insert(materialized)
        return materialized

    def validate_delete_rids(self, rids: Iterable[int]) -> list:
        """Check a delete batch (alive, duplicate-free) without applying.

        Returns the sorted rid list.
        """
        rid_list = sorted(int(rid) for rid in rids)
        self._validate_delete(rid_list)
        return rid_list

    def _validate_insert(self, rows: list) -> None:
        # A record must be replayable before it may be logged.
        schema = self.discoverer.relation.schema
        width = len(schema)
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row of {len(row)} values for {width} columns"
                )
            for value, column in zip(row, schema):
                Relation._check_value(value, column.ctype, column.name)

    def _validate_delete(self, rid_list: list) -> None:
        if len(set(rid_list)) != len(rid_list):
            raise ValueError("duplicate rids in delete batch")
        for rid in rid_list:
            if not self.discoverer.relation.is_alive(rid):
                raise KeyError(f"rid {rid} is not an alive row")

    def _log(self, record: dict) -> None:
        record["seq"] = self._next_seq
        instrumentation = self.discoverer.instrumentation
        with instrumentation.activate():
            with instrumentation.tracer.span("durability.wal_append"):
                self._wal.append(record, epoch=self._epoch)
        self._next_seq += 1
        self._pending_records += 1

    # -- replication (follower apply path) -------------------------------

    def apply_replicated(self, record: dict, raw: bytes) -> None:
        """Durably append a primary-framed record, then apply it.

        The follower-side twin of :meth:`insert`/:meth:`delete`: same
        log-before-apply contract, but the WAL frame is the primary's
        bytes verbatim (:meth:`WriteAheadLog.append_frame`) instead of a
        re-encoding, so the follower's log is byte-identical to the
        acknowledged primary stream.  The record must be the next seq —
        gaps mean the caller skipped history and must re-seed from a
        checkpoint instead (:meth:`install_checkpoint`).
        """
        seq = record.get("seq")
        if seq != self._next_seq:
            raise SessionError(
                f"replicated record seq {seq!r} does not follow "
                f"last applied seq {self.last_applied_seq}"
            )
        op = record.get("op")
        if op not in ("insert", "delete"):
            raise SessionError(f"unknown WAL op {op!r}")
        instrumentation = self.discoverer.instrumentation
        with instrumentation.activate():
            with instrumentation.tracer.span("durability.wal_append"):
                self._wal.append_frame(raw, seq=seq)
            self._next_seq += 1
            self._pending_records += 1
            if op == "insert":
                self.discoverer.insert(
                    _coerce_rows(self.discoverer.relation.schema, record["rows"])
                )
            else:
                self.discoverer.delete(record["rids"])
        self._maybe_checkpoint()

    def install_checkpoint(
        self, wal_seq: int, state_payload: dict, force: bool = False
    ) -> int:
        """Adopt a replicated checkpoint wholesale (follower catch-up).

        Writes the checkpoint locally, resets the WAL (every local record
        is at or below ``wal_seq`` and therefore incorporated), and swaps
        in the rebuilt state.  The live instrumentation is transplanted
        onto the new discoverer so metric streams survive the swap.

        ``force=True`` admits a checkpoint at or *below* the local seq —
        the rejoin-as-follower path for a fenced zombie, whose WAL tail
        past the new primary's history diverged and must be discarded
        wholesale.  Returns how many local records were discarded that
        way (0 on an ordinary catch-up).
        """
        discarded = 0
        if wal_seq <= self.last_applied_seq:
            if not force:
                raise SessionError(
                    f"checkpoint at seq {wal_seq} is not ahead of "
                    f"last applied seq {self.last_applied_seq}"
                )
            discarded = self.last_applied_seq - wal_seq
        from repro.core.state_io import state_from_dict

        checkpoint_dir = os.path.join(self.directory, CHECKPOINT_DIR)
        instrumentation = self.discoverer.instrumentation
        with instrumentation.activate():
            with instrumentation.tracer.span("durability.install_checkpoint"):
                discoverer = state_from_dict(state_payload)
                discoverer.instrumentation = instrumentation
                if force:
                    # A rebase rewrites history: any local checkpoint
                    # *past* the installed seq describes the diverged
                    # tail being discarded, and retention (which keeps
                    # the newest seqs) would otherwise preserve it for
                    # the next recovery to resurrect.
                    from repro.durability.checkpoint import (
                        parse_checkpoint_seq,
                    )

                    for path in list_checkpoints(checkpoint_dir):
                        seq = parse_checkpoint_seq(os.path.basename(path))
                        if seq is not None and seq > wal_seq:
                            try:
                                os.unlink(path)
                            except OSError:  # pragma: no cover - defensive
                                pass
                write_checkpoint(checkpoint_dir, wal_seq, state_payload)
                self._wal.reset()
                apply_retention(checkpoint_dir, self.retain)
        self.discoverer = discoverer
        self._next_seq = wal_seq + 1
        self._checkpoint_seq = wal_seq
        self._pending_records = 0
        if discarded:
            logger.debug(
                "installed checkpoint at seq %d, discarding %d diverged "
                "local records",
                wal_seq,
                discarded,
            )
        else:
            logger.debug("installed replicated checkpoint at seq %d", wal_seq)
        return discarded

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self) -> str:
        """Write a checkpoint now; resets the WAL and applies retention.

        Returns the checkpoint path.  Crash-safe at every instant: until
        the atomic rename lands, recovery uses the previous checkpoint
        plus the intact WAL; after it, replay skips the incorporated
        records by seq even if the WAL reset never happened.
        """
        from repro.core.state_io import state_to_dict

        checkpoint_dir = os.path.join(self.directory, CHECKPOINT_DIR)
        last_seq = self._next_seq - 1
        instrumentation = self.discoverer.instrumentation
        with instrumentation.activate():
            with instrumentation.tracer.span("durability.checkpoint") as span:
                path = write_checkpoint(
                    checkpoint_dir, last_seq, state_to_dict(self.discoverer)
                )
                self._checkpoint_seq = last_seq
                self._pending_records = 0
                self._wal.reset()
                apply_retention(checkpoint_dir, self.retain)
                span.attrs["wal_seq"] = last_seq
        if instrumentation.enabled:
            instrumentation.observe(
                "durability.checkpoint_seconds", span.duration
            )
        logger.debug("checkpoint at seq %d -> %s", last_seq, path)
        return path

    def _maybe_checkpoint(self) -> None:
        if self._pending_records >= self.checkpoint_every:
            self.checkpoint()

    # -- introspection and shutdown --------------------------------------

    @property
    def last_applied_seq(self) -> int:
        """WAL seq of the most recently applied record (0 = none yet)."""
        return self._next_seq - 1

    def export_gauges(self) -> None:
        """Publish the session's state as ``durability.*`` gauges.

        Lands the same numbers :meth:`status` reports in the metrics
        registry, so ``session status --metrics-out`` and the serving
        layer's ``/metrics`` endpoint expose one consistent stream.
        """
        instrumentation = self.discoverer.instrumentation
        checkpoint_dir = os.path.join(self.directory, CHECKPOINT_DIR)
        instrumentation.set_gauge("durability.next_seq", self._next_seq)
        instrumentation.set_gauge(
            "durability.checkpoint_seq", self._checkpoint_seq
        )
        instrumentation.set_gauge(
            "durability.pending_wal_records", self._pending_records
        )
        instrumentation.set_gauge("durability.wal_bytes", self._wal.size)
        instrumentation.set_gauge(
            "durability.checkpoints_on_disk",
            len(list_checkpoints(checkpoint_dir)),
        )
        instrumentation.set_gauge("durability.epoch", self._epoch)
        instrumentation.set_gauge(
            "durability.fenced", 1 if self.is_fenced else 0
        )
        self.discoverer._record_state_gauges()

    def status(self) -> dict:
        """Machine-readable session status (backs ``session status``)."""
        checkpoint_dir = os.path.join(self.directory, CHECKPOINT_DIR)
        return {
            "directory": self.directory,
            "rows": len(self.discoverer.relation),
            "dcs": len(self.discoverer.dc_masks),
            "evidence_distinct": len(self.discoverer.evidence_set),
            "next_seq": self._next_seq,
            "checkpoint_seq": self._checkpoint_seq,
            "pending_wal_records": self._pending_records,
            "wal_bytes": self._wal.size,
            "checkpoints": [
                os.path.basename(p) for p in list_checkpoints(checkpoint_dir)
            ],
            "checkpoint_every": self.checkpoint_every,
            "retain": self.retain,
            "replayed_on_recovery": self.replayed_records,
            "epoch": self._epoch,
            "fenced": self.is_fenced,
            "fenced_below": self._fenced_below,
        }

    def close(self) -> None:
        self._wal.close()

    def simulate_power_loss(self) -> None:
        """Collapse the directory to its worst admissible post-crash image
        (see :mod:`repro.durability.crashsim`) and close the session.

        Test-harness API: call after catching a
        :class:`~repro.durability.faults.SimulatedCrash`, then
        :meth:`recover` a fresh session from the directory.
        """
        durable = self._wal.durable_size
        self._wal.close()
        discard_unsynced_tail(os.path.join(self.directory, WAL_NAME), durable)
        drop_tmp_files(self.directory)

    def __enter__(self) -> "DurableSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableSession({self.directory!r}, seq={self._next_seq}, "
            f"{self._pending_records} pending)"
        )
