"""Length+checksum framing of write-ahead-log records.

Each record on disk is::

    MAGIC(4) | payload_length(4, LE) | crc32(payload)(4, LE) | payload

A reader walking the file can therefore always classify the tail: a
frame whose magic, declared length, or checksum does not hold marks the
end of the valid prefix — exactly what a torn write at power loss
produces.  Decoding is deliberately forgiving at the tail and strict
before it: corruption *followed by more valid-looking frames* is still
truncated at the first bad frame, because after an overwrite-free append
log loses bytes, nothing after the loss point is trustworthy.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Tuple

MAGIC = b"3DCW"
_HEADER = struct.Struct("<4sII")
HEADER_SIZE = _HEADER.size

#: Refuse to trust absurd declared lengths (a corrupt length field would
#: otherwise make the reader wait for gigabytes that never existed).
MAX_RECORD_SIZE = 1 << 30


def encode_record(payload: bytes) -> bytes:
    """Frame one payload for appending to the log."""
    if len(payload) > MAX_RECORD_SIZE:
        raise ValueError(f"record of {len(payload)} bytes exceeds frame limit")
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_records(data: bytes) -> Tuple[list, int]:
    """Decode the valid prefix of a log image.

    Returns ``(payloads, good_size)`` where ``good_size`` is the byte
    offset of the first invalid/truncated frame (== ``len(data)`` for a
    fully valid log).  Never raises on corruption — a damaged tail is an
    expected input, not an error.
    """
    payloads = []
    offset = 0
    total = len(data)
    while offset + HEADER_SIZE <= total:
        magic, length, checksum = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_RECORD_SIZE:
            break
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            break  # torn tail: header landed, payload did not
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        payloads.append(payload)
        offset = end
    return payloads, offset


def iter_records(data: bytes) -> Iterator[bytes]:
    """The payloads of the valid prefix of ``data``."""
    payloads, _ = decode_records(data)
    return iter(payloads)
