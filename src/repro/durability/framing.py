"""Length+checksum framing of write-ahead-log records.

Each record on disk is::

    MAGIC(4) | body_length(4, LE) | crc32(body)(4, LE) | body

Two magics select the body layout: ``3DCW`` frames carry the payload
alone, ``3DCT`` frames prefix it with the 16-byte binary trace id of the
batch cycle that wrote them (``body = trace_id(16) | payload``), so a
request trace can be joined against the WAL offline.  The trace id sits
*inside* the checksummed, length-covered body — torn-write detection is
identical for both layouts, and a pre-tracing reader rejecting the
unknown magic truncates at the frame boundary, exactly the forgiving
behaviour it has for any unrecognized tail.

A reader walking the file can therefore always classify the tail: a
frame whose magic, declared length, or checksum does not hold marks the
end of the valid prefix — exactly what a torn write at power loss
produces.  Decoding is deliberately forgiving at the tail and strict
before it: corruption *followed by more valid-looking frames* is still
truncated at the first bad frame, because after an overwrite-free append
log loses bytes, nothing after the loss point is trustworthy.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

MAGIC = b"3DCW"
#: Frames whose body is prefixed with a 16-byte batch-cycle trace id.
MAGIC_TRACED = b"3DCT"
TRACE_ID_BYTES = 16
_HEADER = struct.Struct("<4sII")
HEADER_SIZE = _HEADER.size

#: Refuse to trust absurd declared lengths (a corrupt length field would
#: otherwise make the reader wait for gigabytes that never existed).
MAX_RECORD_SIZE = 1 << 30


def encode_record(payload: bytes, trace_id: Optional[str] = None) -> bytes:
    """Frame one payload for appending to the log.

    ``trace_id`` (32 hex chars) selects the traced layout; None keeps the
    original untraced frame byte-for-byte.
    """
    if len(payload) > MAX_RECORD_SIZE:
        raise ValueError(f"record of {len(payload)} bytes exceeds frame limit")
    if trace_id is None:
        return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload
    body = bytes.fromhex(trace_id) + payload
    if len(body) - len(payload) != TRACE_ID_BYTES:
        raise ValueError(f"trace id must be {TRACE_ID_BYTES} bytes of hex")
    return _HEADER.pack(MAGIC_TRACED, len(body), zlib.crc32(body)) + body


def decode_frames(data: bytes) -> Tuple[List[Tuple[bytes, Optional[str]]], int]:
    """Decode the valid prefix of a log image, keeping trace ids.

    Returns ``(frames, good_size)`` where each frame is ``(payload,
    trace_id hex or None)`` and ``good_size`` is the byte offset of the
    first invalid/truncated frame (== ``len(data)`` for a fully valid
    log).  Never raises on corruption — a damaged tail is an expected
    input, not an error.
    """
    frames: List[Tuple[bytes, Optional[str]]] = []
    offset = 0
    total = len(data)
    while offset + HEADER_SIZE <= total:
        magic, length, checksum = _HEADER.unpack_from(data, offset)
        if magic not in (MAGIC, MAGIC_TRACED) or length > MAX_RECORD_SIZE:
            break
        if magic == MAGIC_TRACED and length < TRACE_ID_BYTES:
            break
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            break  # torn tail: header landed, body did not
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            break
        if magic == MAGIC_TRACED:
            frames.append((body[TRACE_ID_BYTES:], body[:TRACE_ID_BYTES].hex()))
        else:
            frames.append((body, None))
        offset = end
    return frames, offset


def decode_records(data: bytes) -> Tuple[list, int]:
    """Decode the valid prefix of a log image to bare payloads.

    The trace-agnostic view of :func:`decode_frames`, kept for callers
    (replay, recovery) that only need the record contents.
    """
    frames, good_size = decode_frames(data)
    return [payload for payload, _ in frames], good_size


def iter_records(data: bytes) -> Iterator[bytes]:
    """The payloads of the valid prefix of ``data``."""
    payloads, _ = decode_records(data)
    return iter(payloads)
