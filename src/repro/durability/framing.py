"""Length+checksum framing of write-ahead-log records.

Each record on disk is::

    MAGIC(4) | body_length(4, LE) | crc32(body)(4, LE) | body

Three magics select the body layout: ``3DCW`` frames carry the payload
alone, ``3DCT`` frames prefix it with the 16-byte binary trace id of the
batch cycle that wrote them (``body = trace_id(16) | payload``), and
``3DCE`` frames additionally carry the writer's 8-byte commit epoch
(``body = epoch(8, LE) | trace_id(16) | payload``, an all-zero trace id
meaning "untraced") so the replication fleet can fence frames from a
deposed primary.  Every extension sits *inside* the checksummed,
length-covered body — torn-write detection is identical for all layouts,
and an older reader rejecting an unknown magic truncates at the frame
boundary, exactly the forgiving behaviour it has for any unrecognized
tail.  Pre-epoch logs decode unchanged (``epoch=None``).

A reader walking the file can therefore always classify the tail: a
frame whose magic, declared length, or checksum does not hold marks the
end of the valid prefix — exactly what a torn write at power loss
produces.  Decoding is deliberately forgiving at the tail and strict
before it: corruption *followed by more valid-looking frames* is still
truncated at the first bad frame, because after an overwrite-free append
log loses bytes, nothing after the loss point is trustworthy.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, NamedTuple, Optional, Tuple

MAGIC = b"3DCW"
#: Frames whose body is prefixed with a 16-byte batch-cycle trace id.
MAGIC_TRACED = b"3DCT"
#: Frames whose body is prefixed with an 8-byte commit epoch *and* the
#: 16-byte trace id (all-zero = untraced).
MAGIC_EPOCH = b"3DCE"
TRACE_ID_BYTES = 16
_HEADER = struct.Struct("<4sII")
_EPOCH = struct.Struct("<Q")
HEADER_SIZE = _HEADER.size
EPOCH_BYTES = _EPOCH.size

#: Refuse to trust absurd declared lengths (a corrupt length field would
#: otherwise make the reader wait for gigabytes that never existed).
MAX_RECORD_SIZE = 1 << 30

_ZERO_TRACE = b"\x00" * TRACE_ID_BYTES


class FrameEnvelope(NamedTuple):
    """One decoded frame with everything its envelope carried."""

    payload: bytes
    trace_id: Optional[str]
    epoch: Optional[int]
    #: Total on-disk frame length (header + body) — callers computing
    #: valid-prefix offsets sum these instead of re-deriving per-magic
    #: body overheads.
    size: int


def encode_record(
    payload: bytes,
    trace_id: Optional[str] = None,
    epoch: Optional[int] = None,
) -> bytes:
    """Frame one payload for appending to the log.

    ``trace_id`` (32 hex chars) selects the traced layout; ``epoch``
    selects the epoch-stamped layout (which embeds the trace id too).
    With both ``None`` the original untraced frame is byte-for-byte
    unchanged, so pre-epoch fixtures and tools keep round-tripping.
    """
    if len(payload) > MAX_RECORD_SIZE:
        raise ValueError(f"record of {len(payload)} bytes exceeds frame limit")
    if epoch is not None:
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        trace = bytes.fromhex(trace_id) if trace_id else _ZERO_TRACE
        if len(trace) != TRACE_ID_BYTES:
            raise ValueError(f"trace id must be {TRACE_ID_BYTES} bytes of hex")
        body = _EPOCH.pack(epoch) + trace + payload
        return _HEADER.pack(MAGIC_EPOCH, len(body), zlib.crc32(body)) + body
    if trace_id is None:
        return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload
    body = bytes.fromhex(trace_id) + payload
    if len(body) - len(payload) != TRACE_ID_BYTES:
        raise ValueError(f"trace id must be {TRACE_ID_BYTES} bytes of hex")
    return _HEADER.pack(MAGIC_TRACED, len(body), zlib.crc32(body)) + body


def decode_envelopes(data: bytes) -> Tuple[List[FrameEnvelope], int]:
    """Decode the valid prefix of a log image, keeping every envelope.

    Returns ``(envelopes, good_size)`` where ``good_size`` is the byte
    offset of the first invalid/truncated frame (== ``len(data)`` for a
    fully valid log).  Never raises on corruption — a damaged tail is an
    expected input, not an error.  Legacy ``3DCW``/``3DCT`` frames come
    back with ``epoch=None``.
    """
    envelopes: List[FrameEnvelope] = []
    offset = 0
    total = len(data)
    while offset + HEADER_SIZE <= total:
        magic, length, checksum = _HEADER.unpack_from(data, offset)
        if magic not in (MAGIC, MAGIC_TRACED, MAGIC_EPOCH):
            break
        if length > MAX_RECORD_SIZE:
            break
        if magic == MAGIC_TRACED and length < TRACE_ID_BYTES:
            break
        if magic == MAGIC_EPOCH and length < EPOCH_BYTES + TRACE_ID_BYTES:
            break
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            break  # torn tail: header landed, body did not
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            break
        size = HEADER_SIZE + length
        if magic == MAGIC_EPOCH:
            (epoch,) = _EPOCH.unpack_from(body)
            trace = body[EPOCH_BYTES : EPOCH_BYTES + TRACE_ID_BYTES]
            trace_id = None if trace == _ZERO_TRACE else trace.hex()
            payload = body[EPOCH_BYTES + TRACE_ID_BYTES :]
            envelopes.append(FrameEnvelope(payload, trace_id, epoch, size))
        elif magic == MAGIC_TRACED:
            envelopes.append(
                FrameEnvelope(
                    body[TRACE_ID_BYTES:],
                    body[:TRACE_ID_BYTES].hex(),
                    None,
                    size,
                )
            )
        else:
            envelopes.append(FrameEnvelope(body, None, None, size))
        offset = end
    return envelopes, offset


def decode_frames(data: bytes) -> Tuple[List[Tuple[bytes, Optional[str]]], int]:
    """Decode the valid prefix of a log image, keeping trace ids.

    The epoch-agnostic view of :func:`decode_envelopes`: each frame is
    ``(payload, trace_id hex or None)`` and ``good_size`` is the byte
    offset of the first invalid/truncated frame.
    """
    envelopes, good_size = decode_envelopes(data)
    return [(env.payload, env.trace_id) for env in envelopes], good_size


def decode_records(data: bytes) -> Tuple[list, int]:
    """Decode the valid prefix of a log image to bare payloads.

    The trace-agnostic view of :func:`decode_frames`, kept for callers
    (replay, recovery) that only need the record contents.
    """
    frames, good_size = decode_frames(data)
    return [payload for payload, _ in frames], good_size


def iter_records(data: bytes) -> Iterator[bytes]:
    """The payloads of the valid prefix of ``data``."""
    payloads, _ = decode_records(data)
    return iter(payloads)
