"""Durability subsystem: WAL, atomic checkpoints, crash-safe sessions.

3DC's value is *long-lived* incremental state — the evidence multiset
and DC antichain carried across update batches (paper Sections V–VI).
This package makes that state survive crashes:

- :mod:`~repro.durability.framing` — length+crc32 record framing whose
  reader classifies any torn tail instead of raising;
- :mod:`~repro.durability.wal` — the append-only, fsync'd write-ahead
  update log (log-before-apply);
- :mod:`~repro.durability.atomic` — write-temp/fsync/rename/fsync-dir
  file replacement (the only save path in the repo);
- :mod:`~repro.durability.checkpoint` — checksummed, rotated checkpoints
  of the serialized discoverer state;
- :mod:`~repro.durability.session` — :class:`DurableSession`, the
  opt-in wrapper tying it together around a discoverer, with a recovery
  path that lands byte-identical to an uninterrupted run;
- :mod:`~repro.durability.faults` / :mod:`~repro.durability.crashsim` —
  the deterministic fault-injection layer and pessimistic power-loss
  model backing the crash matrix (``tests/test_crash_matrix.py``).

See docs/durability.md for the on-disk formats, the recovery algorithm,
and how to write a crash test.
"""

from repro.durability.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
)
from repro.durability.checkpoint import (
    CheckpointError,
    apply_retention,
    list_checkpoints,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.durability.faults import (
    FAULT_POINTS,
    FaultInjector,
    SimulatedCrash,
    fault_point,
    get_injector,
)
from repro.durability.framing import (
    FrameEnvelope,
    decode_envelopes,
    decode_records,
    encode_record,
    iter_records,
)
from repro.durability.session import (
    INITIAL_EPOCH,
    DurableSession,
    SessionError,
    SessionFencedError,
    read_manifest,
)
from repro.durability.wal import TailFrame, WALReader, WriteAheadLog

__all__ = [
    "DurableSession",
    "FrameEnvelope",
    "INITIAL_EPOCH",
    "SessionError",
    "SessionFencedError",
    "TailFrame",
    "WALReader",
    "WriteAheadLog",
    "CheckpointError",
    "FAULT_POINTS",
    "FaultInjector",
    "SimulatedCrash",
    "apply_retention",
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json_bytes",
    "decode_envelopes",
    "decode_records",
    "encode_record",
    "fault_point",
    "get_injector",
    "iter_records",
    "list_checkpoints",
    "load_latest_checkpoint",
    "read_manifest",
    "write_checkpoint",
]
