"""The sweep-and-probe DC verification kernel.

Given a DC ``φ = ¬(p₁ ∧ … ∧ pₘ)``, the kernel picks one predicate as the
**sweep** and derives, per block of tuples sharing a left-hand value, the
bit pattern of partners satisfying that predicate:

- ``=``  — one block per distinct value, partners via one hash probe of
  the partner column's index (a hash join over rid bitmaps);
- ``<, ≤, >, ≥`` — blocks in value order, partners as a *cumulative*
  union maintained by a sorted merge over the two
  :class:`~repro.evidence.indexes.RangeIndex` value lists, so the total
  union work is linear in the number of distinct values instead of
  quadratic;
- ``≠``  — one block per distinct value, partners as the complement of
  one equality probe.

The remaining predicates are refined per tuple, but only for tuples whose
sweep block is non-empty, with early exit once the partner set drains and
a per-scan probe cache keyed ``(position, op, value)`` — tuples sharing
values share probes.  A single-predicate DC needs no per-tuple work at
all: each block contributes ``|T|·|B| − |T∩B|`` ordered violating pairs
by pure popcount arithmetic.

NaN follows the engine-wide total order (NaN = NaN, NaN greater than
every number), mirroring
:meth:`~repro.predicates.space.PredicateSpace.evidence_of_pair` and the
NaN side-bitmaps of :class:`~repro.evidence.indexes.RangeIndex`, so the
kernel agrees with the evidence pipeline on every pair (the differential
suite in ``tests/test_verification.py`` asserts exactly that).

Work accounting: every scan tallies ``verification.*`` counters both on
the active probe (when a discoverer operation is running) and on the
verifier's own :attr:`Verifier.counters`, so benchmarks can compare the
kernel's probe operations against the per-tuple IncDC plan without any
instrumentation plumbing.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.dcs.denial_constraint import DenialConstraint
from repro.dcs.violations import partners_satisfying
from repro.evidence.indexes import ColumnIndexes
from repro.observability.probe import get_probe
from repro.predicates.operator import Operator
from repro.relational.relation import Relation

Pair = Tuple[int, int]

#: Plan kinds, in preference order: equality blocks are the most
#: selective, order sweeps amortize to linear, a ≠ sweep still skips the
#: sweep predicate's per-tuple probes.
_PLAN_EQ = "eq-sweep"
_PLAN_ORDER = "order-sweep"
_PLAN_NE = "ne-sweep"
_PLAN_PROBE = "probe-sweep"
_PLAN_TRIVIAL = "trivial"


class VerificationResult:
    """Outcome of one :meth:`Verifier.verify` call."""

    __slots__ = ("mask", "dc", "holds", "n_violations", "truncated", "pairs", "plan")

    def __init__(self, mask, dc, n_violations, truncated, pairs, plan):
        self.mask = mask
        self.dc = dc
        self.holds = n_violations == 0
        self.n_violations = n_violations
        #: True when counting stopped at ``limit`` before the scan
        #: finished — ``n_violations`` is then a lower bound.
        self.truncated = truncated
        self.pairs = pairs
        self.plan = plan

    def __repr__(self) -> str:
        verdict = "holds" if self.holds else f"{self.n_violations} violations"
        return f"VerificationResult({self.dc}, {verdict}, plan={self.plan})"


class Verifier:
    """Near-linear DC checking over one relation and its column indexes.

    The verifier is read-only: it probes the indexes exactly like the
    serving layer does and never mutates relation, indexes, or evidence.
    ``space`` is only needed for the mask-based entry points
    (:meth:`has_violation`, :meth:`is_minimal`).
    """

    def __init__(
        self,
        relation: Relation,
        indexes: ColumnIndexes,
        space=None,
    ):
        self.relation = relation
        self.indexes = indexes
        self.space = space
        #: Cumulative ``verification.*`` work counters of this instance.
        self.counters: dict = {}

    # -- public API -------------------------------------------------------

    def verify(
        self,
        dc: DenialConstraint,
        limit: Optional[int] = None,
        sample: Optional[int] = 0,
    ) -> VerificationResult:
        """Check ``dc``; count violating ordered pairs up to ``limit``.

        :param limit: stop counting once this many violations are found
            (``None`` = exact count).  The validity verdict is always
            exact — a DC only *holds* when the full sweep finds nothing.
        :param sample: collect at most this many violating pairs into the
            result (``None`` = all counted pairs; default 0 = none).
        """
        return self._scan(dc, limit=limit, sample=sample)

    def holds(self, dc: DenialConstraint) -> bool:
        """Decision variant: first violation wins, one-sided early exit."""
        return self._scan(dc, limit=1, sample=0).holds

    def count_violations(self, dc: DenialConstraint, limit: Optional[int] = None) -> int:
        """Number of ordered violating pairs (exact when ``limit`` is None)."""
        return self._scan(dc, limit=limit, sample=0).n_violations

    def violating_pairs(
        self, dc: DenialConstraint, limit: Optional[int] = None
    ) -> List[Pair]:
        """The ordered violating pairs themselves, up to ``limit``."""
        return self._scan(dc, limit=limit, sample=None).pairs

    def has_violation(self, mask: int, dc=None) -> bool:
        """Mask-based decision (the enumeration-pruning entry point).

        The empty mask denies every tuple pair, so it is violated exactly
        when an ordered pair exists at all.
        """
        constraint = dc if dc is not None else self._constraint_of(mask)
        return not self._scan(constraint, limit=1, sample=0).holds

    def is_minimal(self, mask: int) -> bool:
        """Whether a *valid* DC is minimal: every one-predicate-removed
        subset must itself be violated (otherwise the subset is a valid,
        strictly more general DC)."""
        self._tally({"minimality_checks": 1})
        bits = mask
        while bits:
            low = bits & -bits
            bits ^= low
            if not self.has_violation(mask & ~low):
                return False
        return True

    def probe_operations(self) -> int:
        """Total probe-equivalent work so far: index probes plus sweep
        merge steps (the unit ``benchmarks/bench_verification.py``
        compares against the per-tuple plan's index probes)."""
        return self.counters.get("verification.index_probes", 0) + self.counters.get(
            "verification.sweep_steps", 0
        )

    # -- plan selection ---------------------------------------------------

    def _constraint_of(self, mask: int) -> DenialConstraint:
        if self.space is None:
            raise ValueError("mask-based verification needs a predicate space")
        return DenialConstraint(mask, self.space)

    def _distinct(self, position: int) -> int:
        range_index = self.indexes.ranges[position]
        if range_index is not None:
            return len(range_index)
        return len(self.indexes.equality[position])

    def _select_plan(self, predicates) -> Tuple[str, object]:
        equalities = [p for p in predicates if p.op is Operator.EQ]
        if equalities:
            # The most selective equality (most distinct lhs values →
            # smallest blocks) minimizes per-tuple refinement work.
            return _PLAN_EQ, max(
                equalities, key=lambda p: self._distinct(p.lhs_position)
            )
        orders = [
            p
            for p in predicates
            if p.op.is_order
            and self.indexes.ranges[p.lhs_position] is not None
            and self.indexes.ranges[p.rhs_position] is not None
        ]
        if orders:
            return _PLAN_ORDER, orders[0]
        inequalities = [p for p in predicates if p.op is Operator.NE]
        if inequalities:
            return _PLAN_NE, inequalities[0]
        # Degenerate (e.g. an order predicate whose range index is gone):
        # still sweep distinct values, partner sets via one generic probe.
        return _PLAN_PROBE, predicates[0]

    # -- sweep block generators -------------------------------------------
    #
    # Each yields ``(tuple_bits, partner_bits, probe_cost)``: the rids
    # sharing one sweep value, the rids satisfying the sweep predicate
    # against that value, and the index work the block cost.  Tuple sets
    # are disjoint and cover every alive row, so each ordered violating
    # pair is found exactly once (in the block of its first tuple).

    def _eq_blocks(self, predicate) -> Iterator[Tuple[int, int, int]]:
        lhs, rhs = predicate.lhs_position, predicate.rhs_position
        a_range = self.indexes.ranges[lhs]
        b_range = self.indexes.ranges[rhs]
        if a_range is not None and b_range is not None:
            entries = b_range.entries
            for value in a_range.values:
                yield a_range.entries[value], entries.get(value, 0), 1
            if a_range.nan_bits:
                yield a_range.nan_bits, b_range.nan_bits, 1
        else:
            a_eq = self.indexes.equality[lhs]
            b_eq = self.indexes.equality[rhs]
            for value in sorted(a_eq.entries):
                yield a_eq.entries[value], b_eq.probe(value), 1

    def _ne_blocks(self, predicate) -> Iterator[Tuple[int, int, int]]:
        lhs, rhs = predicate.lhs_position, predicate.rhs_position
        indexed = self.indexes.indexed_bits
        a_range = self.indexes.ranges[lhs]
        b_range = self.indexes.ranges[rhs]
        if a_range is not None and b_range is not None:
            entries = b_range.entries
            for value in a_range.values:
                yield a_range.entries[value], indexed & ~entries.get(value, 0), 1
            if a_range.nan_bits:
                yield a_range.nan_bits, indexed & ~b_range.nan_bits, 1
        else:
            a_eq = self.indexes.equality[lhs]
            b_eq = self.indexes.equality[rhs]
            for value in sorted(a_eq.entries):
                yield a_eq.entries[value], indexed & ~b_eq.probe(value), 1

    def _generic_blocks(self, predicate) -> Iterator[Tuple[int, int, int]]:
        """Fallback sweep: one :func:`partners_satisfying` probe per
        distinct lhs value (correct for every operator, linear probes)."""
        lhs, rhs = predicate.lhs_position, predicate.rhs_position
        converse = predicate.op.converse
        a_range = self.indexes.ranges[lhs]
        if a_range is not None:
            for value in a_range.values:
                yield a_range.entries[value], partners_satisfying(
                    self.indexes, rhs, converse, value
                ), 1
            if a_range.nan_bits:
                yield a_range.nan_bits, partners_satisfying(
                    self.indexes, rhs, converse, float("nan")
                ), 1
        else:
            a_eq = self.indexes.equality[lhs]
            for value in sorted(a_eq.entries):
                yield a_eq.entries[value], partners_satisfying(
                    self.indexes, rhs, converse, value
                ), 1

    def _order_blocks(self, predicate) -> Iterator[Tuple[int, int, int]]:
        op = predicate.op
        a = self.indexes.ranges[predicate.lhs_position]
        b = self.indexes.ranges[predicate.rhs_position]
        indexed = self.indexes.indexed_bits
        b_values = b.values
        b_entries = b.entries
        n = len(b_values)
        if op in (Operator.GT, Operator.GE):
            # Partner must be strictly smaller (GT) / no greater (GE):
            # ascending sweep, cumulative union of smaller partner values.
            cumulative = 0
            j = 0
            for value in a.values:
                steps = 1
                while j < n and b_values[j] < value:
                    cumulative |= b_entries[b_values[j]]
                    j += 1
                    steps += 1
                partners = cumulative
                if op is Operator.GE:
                    partners |= b_entries.get(value, 0)
                    steps += 1
                yield a.entries[value], partners, steps
            if a.nan_bits:
                # u.B < NaN ⇔ u.B is a number; u.B ≤ NaN ⇔ always.
                partners = indexed if op is Operator.GE else indexed & ~b.nan_bits
                yield a.nan_bits, partners, 1
        else:  # LT, LE: descending sweep; NaN partners are greater than all
            cumulative = b.nan_bits
            k = n - 1
            for value in reversed(a.values):
                steps = 1
                while k >= 0 and b_values[k] > value:
                    cumulative |= b_entries[b_values[k]]
                    k -= 1
                    steps += 1
                partners = cumulative
                if op is Operator.LE:
                    partners |= b_entries.get(value, 0)
                    steps += 1
                yield a.entries[value], partners, steps
            if a.nan_bits:
                # u.B > NaN ⇔ never; u.B ≥ NaN ⇔ u.B is NaN.
                yield a.nan_bits, b.nan_bits if op is Operator.LE else 0, 1

    # -- the scan ---------------------------------------------------------

    def _scan(self, dc, limit: Optional[int], sample: Optional[int]) -> VerificationResult:
        predicates = dc.predicates
        if not predicates:
            return self._scan_trivial(dc, limit, sample)
        plan_kind, sweep = self._select_plan(predicates)
        rest = tuple(p for p in predicates if p is not sweep)
        if plan_kind == _PLAN_EQ:
            blocks = self._eq_blocks(sweep)
        elif plan_kind == _PLAN_ORDER:
            blocks = self._order_blocks(sweep)
        elif plan_kind == _PLAN_NE:
            blocks = self._ne_blocks(sweep)
        else:
            blocks = self._generic_blocks(sweep)

        tally = {
            "checks": 1,
            "sweep_blocks": 0,
            "sweep_steps": 0,
            "index_probes": 0,
            "probe_cache_hits": 0,
            "tuples_refined": 0,
        }
        relation = self.relation
        probe_cache: dict = {}
        count = 0
        truncated = False
        pairs: List[Pair] = []
        collect_all = sample is None

        for tuple_bits, partner_bits, cost in blocks:
            tally["sweep_blocks"] += 1
            tally["sweep_steps"] += cost
            if not tuple_bits or not partner_bits:
                continue
            if not rest and not collect_all and len(pairs) >= (sample or 0):
                # Pure arithmetic: no pairs wanted from this block.
                block_count = (
                    tuple_bits.bit_count() * partner_bits.bit_count()
                    - (tuple_bits & partner_bits).bit_count()
                )
                count += block_count
                if limit is not None and count >= limit:
                    truncated = True
                    count = limit
                    break
                continue
            bits = tuple_bits
            stop = False
            while bits:
                low = bits & -bits
                bits ^= low
                partners = partner_bits & ~low
                if partners and rest:
                    tally["tuples_refined"] += 1
                    row = relation.row(low.bit_length() - 1)
                    for predicate in rest:
                        key = (
                            predicate.rhs_position,
                            predicate.op,
                            row[predicate.lhs_position],
                        )
                        cached = probe_cache.get(key)
                        if cached is None:
                            cached = partners_satisfying(
                                self.indexes,
                                predicate.rhs_position,
                                predicate.op.converse,
                                row[predicate.lhs_position],
                            )
                            probe_cache[key] = cached
                            tally["index_probes"] += 1
                        else:
                            tally["probe_cache_hits"] += 1
                        partners &= cached
                        if not partners:
                            break
                if not partners:
                    continue
                count += partners.bit_count()
                if collect_all or len(pairs) < sample:
                    rid = low.bit_length() - 1
                    partner_bits_left = partners
                    while partner_bits_left:
                        partner_low = partner_bits_left & -partner_bits_left
                        partner_bits_left ^= partner_low
                        pairs.append((rid, partner_low.bit_length() - 1))
                        if not collect_all and len(pairs) >= sample:
                            break
                if limit is not None and count >= limit:
                    truncated = True
                    count = limit
                    stop = True
                    break
            if stop:
                break

        tally["violations_found"] = count
        self._tally(tally)
        if collect_all or (sample and len(pairs) > count):
            pairs = pairs[:count]
        return VerificationResult(
            dc.mask, dc, count, truncated, pairs, f"{plan_kind}({sweep})"
        )

    def _scan_trivial(self, dc, limit: Optional[int], sample: Optional[int]) -> VerificationResult:
        """The empty predicate set: every ordered pair is a violation."""
        n = len(self.relation)
        total = n * (n - 1)
        count = total if limit is None else min(total, limit)
        truncated = limit is not None and total > limit
        wanted = count if sample is None else min(sample, count)
        pairs: List[Pair] = []
        if wanted:
            rids = list(self.relation.rids())
            for rid_t in rids:
                for rid_u in rids:
                    if rid_t != rid_u:
                        pairs.append((rid_t, rid_u))
                        if len(pairs) >= wanted:
                            break
                if len(pairs) >= wanted:
                    break
        self._tally({"checks": 1, "violations_found": count})
        return VerificationResult(dc.mask, dc, count, truncated, pairs, _PLAN_TRIVIAL)

    # -- accounting -------------------------------------------------------

    def _tally(self, amounts: dict) -> None:
        probe = get_probe()
        counters = self.counters
        for name, amount in amounts.items():
            if not amount:
                continue
            key = f"verification.{name}"
            counters[key] = counters.get(key, 0) + amount
            if probe is not None:
                probe.inc(key, amount)
