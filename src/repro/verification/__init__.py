"""Verification-first fast path: near-linear DC checking (Rapidash [PAPERS]).

Evidence construction is inherently pairwise, but deciding "does DC φ
hold on r" — and counting or enumerating its violating pairs — does not
have to be: one predicate of φ is *swept* through the column indexes the
evidence engine already maintains (one block per distinct value, order
predicates via a sorted merge with cumulative bitmap unions), and the
remaining predicates are refined per tuple only inside non-empty blocks.

:mod:`repro.verification.kernel` implements the sweep-and-probe
:class:`Verifier`; :mod:`repro.verification.rowcheck` provides the
memoizing :class:`ProbeCache` that deduplicates index probes across the
DCs of one admission check (``POST /check``).  See docs/verification.md.
"""

from repro.verification.kernel import VerificationResult, Verifier
from repro.verification.rowcheck import ProbeCache

__all__ = ["ProbeCache", "VerificationResult", "Verifier"]
