"""Memoized index probing for admission checks.

``POST /check`` evaluates one candidate row against *every* tracked DC.
DCs overlap heavily in their predicates (a minimal cover shares columns
by construction), so the same ``(column, operator, value)`` probe is
issued many times per check.  :class:`ProbeCache` deduplicates them for
the duration of one check: probes are pure reads of an immutable snapshot,
so memoizing is safe and the cache is simply dropped afterwards.
"""

from __future__ import annotations

from repro.dcs.violations import partners_satisfying
from repro.evidence.indexes import ColumnIndexes


class ProbeCache:
    """Per-check memo of :func:`~repro.dcs.violations.partners_satisfying`.

    Bind one instance per admission check and pass its :meth:`partners`
    as the ``probes`` callable of
    :func:`~repro.dcs.violations.violating_partners_for_row`; all DCs of
    the check then share one probe per distinct key.
    """

    __slots__ = ("indexes", "_cache", "lookups", "misses")

    def __init__(self, indexes: ColumnIndexes):
        self.indexes = indexes
        self._cache: dict = {}
        #: Total probe requests routed through the cache.
        self.lookups = 0
        #: Requests that actually hit the indexes (unique probe keys).
        self.misses = 0

    def partners(self, position: int, op, value) -> int:
        """Rid bits satisfying ``column[position] op value``, memoized."""
        self.lookups += 1
        key = (position, op, value)
        bits = self._cache.get(key)
        if bits is None:
            bits = partners_satisfying(self.indexes, position, op, value)
            self._cache[key] = bits
            self.misses += 1
        return bits
