"""The fleet-aware client: route writes to the primary, reads anywhere.

A :class:`FleetClient` wraps one :class:`~repro.service.client.ServiceClient`
per node and adds the routing decisions a single-node client cannot
make:

- **discovery** — the topology comes from a coordinator's aggregated
  ``GET /topology`` (``repro-dc fleet --listen``) or, seeded with node
  URLs, from asking each node directly; it is re-discovered whenever
  routing evidence goes stale (a 421 from the supposed primary, a
  fenced 409, a dead socket);
- **write routing** — writes go to the believed primary, chase 421
  redirect hints through at most two hops (loop guard), and are retried
  across a failover until ``failover_timeout_s`` runs out.  Only safe
  because the protocol is idempotent per request *outcome*: a write
  whose first attempt died with the connection is retried against the
  new primary, and the zero-acknowledged-write-loss guarantee of the
  control plane (docs/fleet.md) means an acknowledged first attempt
  survived the failover — the retry then fails validation or lands as
  a new batch, exactly as a human operator retrying would see;
- **read routing** — reads round-robin across live followers (falling
  back to the primary when there are none), each carrying the
  read-your-writes ``min_seq`` token of the client's last acknowledged
  write; a follower that cannot reach it in time answers 409 and the
  read falls back to the primary.
"""

from __future__ import annotations

import itertools
import json
import time
import urllib.request
from typing import Iterable, List, Optional, Sequence
from urllib.error import URLError

from repro.observability import get_logger
from repro.service.client import (
    FencedError,
    NotPrimaryError,
    ServiceClient,
    ServiceError,
    ServiceStaleError,
    ServiceUnavailableError,
)

logger = get_logger(__name__)

#: Maximum 421 redirect hops per logical write (the loop guard).
MAX_WRITE_HOPS = 2


class NoPrimaryError(RuntimeError):
    """The client could not find (or reach) any primary in time."""


class FleetClient:
    """Application-facing client for a replicated fleet."""

    def __init__(
        self,
        seeds: List[str],
        coordinator_url: Optional[str] = None,
        timeout: float = 10.0,
        failover_timeout_s: float = 10.0,
        retry_backoff_s: float = 0.1,
    ):
        if not seeds and coordinator_url is None:
            raise ValueError("pass node seed URLs or a coordinator URL")
        self.seeds = list(seeds)
        self.coordinator_url = coordinator_url
        self.timeout = timeout
        #: How long a write keeps retrying across a failover window.
        self.failover_timeout_s = failover_timeout_s
        self.retry_backoff_s = retry_backoff_s
        self._clients: dict = {}
        self.primary_url: Optional[str] = None
        self.follower_urls: List[str] = []
        #: Read-your-writes token: seq of the last acknowledged write.
        self.last_seq = 0
        self.discoveries_total = 0
        self.write_retries_total = 0
        self._read_cycle = itertools.count()

    # -- discovery ---------------------------------------------------------

    def _client(self, url: str) -> ServiceClient:
        client = self._clients.get(url)
        if client is None:
            client = ServiceClient(base_url=url, timeout=self.timeout)
            self._clients[url] = client
        return client

    def _coordinator_topology(self) -> Optional[dict]:
        if self.coordinator_url is None:
            return None
        try:
            with urllib.request.urlopen(
                f"{self.coordinator_url}/topology", timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except (OSError, URLError, ValueError):
            return None

    def discover(self) -> None:
        """Refresh the routing table from the coordinator or the nodes."""
        self.discoveries_total += 1
        primary: Optional[str] = None
        followers: List[str] = []
        aggregated = self._coordinator_topology()
        if aggregated is not None:
            primary = aggregated.get("primary_url")
            for entry in aggregated.get("nodes", []):
                payload = entry.get("probe")
                if payload is None:
                    continue
                url = entry.get("url") or payload.get("url")
                if payload.get("role") == "follower" and url:
                    followers.append(url)
                if url and url not in self.seeds:
                    self.seeds.append(url)
        else:
            best_epoch = -1
            for url in self.seeds:
                try:
                    payload = self._client(url).topology()
                except (OSError, ServiceError):
                    continue
                if payload.get("role") == "follower":
                    followers.append(url)
                elif (
                    payload.get("role") == "primary"
                    and not payload.get("fenced")
                    and int(payload.get("epoch") or 0) > best_epoch
                ):
                    best_epoch = int(payload.get("epoch") or 0)
                    primary = url
        self.primary_url = primary
        self.follower_urls = followers
        logger.debug(
            "fleet discovery: primary=%s followers=%s", primary, followers
        )

    # -- writes ------------------------------------------------------------

    def _write(self, op: str, payload) -> dict:
        deadline = time.monotonic() + self.failover_timeout_s
        attempt = 0
        while True:
            if self.primary_url is None:
                self.discover()
            target = self.primary_url
            try:
                if target is None:
                    raise NoPrimaryError("no primary known to the fleet")
                client = self._client(target)
                hops = 0
                while True:
                    try:
                        if op == "insert":
                            outcome = client.insert(payload)
                        else:
                            outcome = client.delete(payload)
                        break
                    except NotPrimaryError as exc:
                        # Follow the redirect hint, but never in a loop:
                        # two hops reach any primary a healthy fleet can
                        # name; more means the hints are stale.
                        if exc.primary_url is None or hops >= MAX_WRITE_HOPS:
                            raise
                        hops += 1
                        self.primary_url = exc.primary_url
                        client = self._client(exc.primary_url)
                self.last_seq = max(self.last_seq, int(outcome.get("seq") or 0))
                return outcome
            except (
                NoPrimaryError,
                NotPrimaryError,
                FencedError,
                ServiceUnavailableError,
                OSError,
            ) as exc:
                # The failover window: the routing table is stale, the
                # old primary is fenced/dead, or no one has the socket
                # yet.  Re-discover and retry until the budget runs out.
                if time.monotonic() >= deadline:
                    raise NoPrimaryError(
                        f"write did not land within "
                        f"{self.failover_timeout_s:.1f}s: {exc}"
                    ) from exc
                attempt += 1
                self.write_retries_total += 1
                self.primary_url = None
                time.sleep(min(self.retry_backoff_s * attempt, 1.0))

    def insert(self, rows: Iterable[Sequence]) -> dict:
        """Insert on the fleet's primary, surviving failovers."""
        return self._write("insert", [list(row) for row in rows])

    def delete(self, rids: Iterable[int]) -> dict:
        """Delete on the fleet's primary, surviving failovers."""
        return self._write("delete", [int(rid) for rid in rids])

    # -- reads -------------------------------------------------------------

    def _read_targets(self) -> List[str]:
        if not self.follower_urls and self.primary_url is None:
            self.discover()
        targets = list(self.follower_urls)
        if targets:
            rotation = next(self._read_cycle) % len(targets)
            targets = targets[rotation:] + targets[:rotation]
        if self.primary_url is not None:
            targets.append(self.primary_url)
        if not targets:
            raise NoPrimaryError("no reachable node to read from")
        return targets

    def _read(self, call) -> dict:
        last_error: Optional[Exception] = None
        for url in self._read_targets():
            try:
                return call(self._client(url))
            except ServiceStaleError as exc:
                # This replica can't reach our min_seq in time; another
                # one (or the primary, last in the rotation) may.
                last_error = exc
            except (OSError, ServiceError) as exc:
                last_error = exc
        self.discover()
        for url in self._read_targets():
            try:
                return call(self._client(url))
            except (OSError, ServiceError) as exc:
                last_error = exc
        raise NoPrimaryError(f"no node could serve the read: {last_error}")

    def dcs(self) -> dict:
        """Current DCs, at least as fresh as our last acknowledged write."""
        return self._read(lambda client: client.dcs(min_seq=self.min_seq))

    def rank(self, top: int = 10) -> dict:
        return self._read(
            lambda client: client.rank(top=top, min_seq=self.min_seq)
        )

    def check(self, row: Sequence, **kwargs) -> dict:
        return self._read(
            lambda client: client.check(row, min_seq=self.min_seq, **kwargs)
        )

    def verify(self, limit: Optional[int] = None) -> dict:
        return self._read(
            lambda client: client.verify(limit=limit, min_seq=self.min_seq)
        )

    @property
    def min_seq(self) -> Optional[int]:
        """The read-your-writes bound (None before any write)."""
        return self.last_seq or None

    def close(self) -> None:
        self._clients.clear()

    def __repr__(self) -> str:
        return (
            f"FleetClient(primary={self.primary_url!r}, "
            f"followers={self.follower_urls!r})"
        )
