"""Failure detection and automatic failover for a replication fleet.

The :class:`FleetMonitor` is a deliberately small state machine driven
by one method, :meth:`FleetMonitor.step`: probe every node, and if the
primary has been unreachable (or fenced) for longer than the suspicion
window, run one failover.  The failover sequence is the safety-critical
part and its ordering is fixed:

1. **choose** the candidate — the reachable follower with the highest
   applied seq (ties break on lowest URL, so concurrent monitors agree);
2. **fence** — install ``new_epoch = highest observed epoch + 1`` as a
   fence on every *other* reachable node, the old primary first.  From
   the moment the fence lands on the old primary it hard-409s every
   write, so no write can be acknowledged on the dead timeline after
   this point;
3. **drain** — give the candidate a bounded window to pull whatever
   acknowledged frames remain reachable (it keeps tailing its upstream
   until promotion, so a fenced-but-alive old primary is drained dry);
4. **promote** the candidate at ``new_epoch``;
5. **repoint** the surviving followers at the new primary.

Writes acknowledged before the fence are in the old primary's WAL and
reachable to the drain; writes attempted after it are refused with the
fenced 409.  That pincer is the zero-acknowledged-write-loss argument —
docs/fleet.md walks through it, and the zombie-primary matrix in
``tests/test_fleet.py`` checks it at every replication fault point.

The monitor is intentionally *not* consensus: it is a single
coordinator (plus the epoch arithmetic that makes a deposed primary
harmless even if the coordinator was wrong about its death).  Running
two monitors against one fleet is safe for the data — fencing is
monotonic — but can ping-pong primaries; run one.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from repro.observability import get_logger
from repro.observability.probe import get_probe

logger = get_logger(__name__)

#: Default suspicion window: how long the primary must stay unreachable
#: before the monitor declares it dead and fails over.
DEFAULT_SUSPICION_S = 2.0

#: Default bound on the post-fence drain wait (step 3 above).
DEFAULT_DRAIN_S = 2.0

#: Poll cadence inside the drain wait.
_DRAIN_POLL_S = 0.05


class FleetError(RuntimeError):
    """The monitor cannot make progress (e.g. no promotable follower)."""


class NodeHandle:
    """How the monitor talks to one node.

    The default implementation (:class:`HTTPNode`) speaks the service's
    HTTP surface; the fleet tests substitute in-process handles wrapping
    live session objects, which makes the failover matrix deterministic
    (no sockets, no timers).  ``url`` doubles as the node's identity.
    """

    url: str

    def probe(self) -> Optional[dict]:
        """The node's ``/topology`` payload, or None if unreachable."""
        raise NotImplementedError

    def fence(self, epoch: int) -> bool:
        """Install a fence; True if it landed (False: unreachable)."""
        raise NotImplementedError

    def promote(self, epoch: int) -> bool:
        """Promote to primary at ``epoch``; True if it landed."""
        raise NotImplementedError

    def follow(self, url: str) -> bool:
        """Repoint at a new upstream; True if it landed."""
        raise NotImplementedError


class HTTPNode(NodeHandle):
    """A :class:`NodeHandle` over the service's HTTP endpoints."""

    def __init__(self, url: str, timeout: float = 5.0):
        from repro.service.client import ServiceClient

        self.url = url
        self._client = ServiceClient(base_url=url, timeout=timeout)

    def probe(self) -> Optional[dict]:
        from repro.service.client import ServiceError

        try:
            return self._client.topology()
        except (OSError, ServiceError):
            return None

    def fence(self, epoch: int) -> bool:
        from repro.service.client import ServiceError

        try:
            self._client.fence(epoch)
            return True
        except (OSError, ServiceError):
            return False

    def promote(self, epoch: int) -> bool:
        from repro.service.client import ServiceError

        try:
            payload = self._client.promote(epoch=epoch)
            return payload.get("role") == "primary"
        except (OSError, ServiceError):
            return False

    def follow(self, url: str) -> bool:
        from repro.service.client import ServiceError

        try:
            self._client.follow(url)
            return True
        except (OSError, ServiceError):
            return False

    def __repr__(self) -> str:
        return f"HTTPNode({self.url!r})"


def choose_candidate(probes: Dict[str, Optional[dict]]) -> Optional[str]:
    """The URL of the follower that must win: highest applied seq.

    Ties break on lowest URL so that any two observers of the same
    probe set pick the same node.  Only reachable, serving followers
    are eligible; a *fenced* follower stays eligible because promotion
    at the fence epoch clears its fence (it rejoins the live timeline
    as its head).
    """
    eligible = [
        (-int(payload.get("seq") or 0), url)
        for url, payload in probes.items()
        if payload is not None
        and payload.get("role") == "follower"
        and payload.get("serving", True)
    ]
    if not eligible:
        return None
    _, url = min(eligible)
    return url


class FleetMonitor:
    """Poll a fleet; fail over when the primary stays dead too long.

    Deterministic core: :meth:`probe` and :meth:`maybe_failover` take no
    wall-clock decisions of their own beyond the injected ``clock``, so
    tests drive the whole state machine with a fake clock.  :meth:`run`
    wraps them in the obvious loop for the CLI.
    """

    def __init__(
        self,
        nodes: List[NodeHandle],
        suspicion_s: float = DEFAULT_SUSPICION_S,
        drain_s: float = DEFAULT_DRAIN_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        self.nodes = {node.url: node for node in nodes}
        self.suspicion_s = suspicion_s
        self.drain_s = drain_s
        self.clock = clock
        #: URL of the node currently believed primary (None: unknown).
        self.primary_url: Optional[str] = None
        #: Highest commit epoch observed anywhere in the fleet.
        self.epoch = 0
        #: Last probe payload per node URL (None = unreachable).
        self.last_probes: Dict[str, Optional[dict]] = {}
        #: When the primary was last seen healthy (clock units).
        self._primary_seen_at: Optional[float] = None
        self.failovers_total = 0
        self.probes_total = 0
        #: Timeline of the most recent failover (docs/fleet.md fields:
        #: detected/fenced/promoted/repointed + the chosen URLs).
        self.last_failover: Optional[dict] = None

    # -- probing -----------------------------------------------------------

    def probe(self) -> Dict[str, Optional[dict]]:
        """Poll every node once and update the fleet picture."""
        now = self.clock()
        probes: Dict[str, Optional[dict]] = {}
        for url, node in self.nodes.items():
            payload = node.probe()
            probes[url] = payload
            if payload is not None:
                self.epoch = max(self.epoch, int(payload.get("epoch") or 0))
        self.last_probes = probes
        self.probes_total += 1
        primary = self._pick_primary(probes)
        if primary is not None:
            if primary != self.primary_url:
                logger.debug("fleet primary is %s (epoch %d)", primary, self.epoch)
            self.primary_url = primary
            self._primary_seen_at = now
        self._export_gauges(probes)
        return probes

    def _pick_primary(self, probes: Dict[str, Optional[dict]]) -> Optional[str]:
        """The live, unfenced primary with the highest epoch, if any."""
        primaries = [
            (int(payload.get("epoch") or 0), url)
            for url, payload in probes.items()
            if payload is not None
            and payload.get("role") == "primary"
            and not payload.get("fenced")
            and payload.get("serving", True)
        ]
        if not primaries:
            return None
        _, url = max(primaries)
        return url

    def _export_gauges(self, probes: Dict[str, Optional[dict]]) -> None:
        probe = get_probe()
        if probe is None:
            return
        up = sum(1 for payload in probes.values() if payload is not None)
        probe.set_gauge("fleet.nodes_total", len(self.nodes))
        probe.set_gauge("fleet.nodes_up", up)
        probe.set_gauge("fleet.monitor_epoch", self.epoch)
        probe.set_gauge("fleet.failovers", self.failovers_total)

    # -- failover ----------------------------------------------------------

    @property
    def primary_suspect_for(self) -> float:
        """Seconds the believed primary has been unhealthy (0 = healthy)."""
        if self.primary_url is None or self._primary_seen_at is None:
            return 0.0
        payload = self.last_probes.get(self.primary_url)
        if (
            payload is not None
            and payload.get("role") == "primary"
            and not payload.get("fenced")
            and payload.get("serving", True)
        ):
            return 0.0
        return max(0.0, self.clock() - self._primary_seen_at)

    def maybe_failover(self) -> Optional[dict]:
        """Run one failover if the suspicion window has elapsed.

        Returns the failover record (also kept in ``last_failover``) or
        None if the primary is healthy / still within suspicion / there
        is nothing to promote.  Uses the *last* probe results — call
        :meth:`probe` first (or use :meth:`step`).
        """
        if self.primary_url is None:
            # Never seen a primary: adopt one if the fleet is all
            # followers (cold start against an already-failed primary).
            if self.last_probes and all(
                payload is None or payload.get("role") == "follower"
                for payload in self.last_probes.values()
            ):
                return self._failover(reason="no primary observed")
            return None
        suspect_for = self.primary_suspect_for
        if suspect_for == 0.0 or suspect_for < self.suspicion_s:
            return None
        return self._failover(
            reason=f"primary {self.primary_url} unhealthy for "
            f"{suspect_for:.3f}s"
        )

    def _failover(self, reason: str) -> Optional[dict]:
        detected_at = self.clock()
        candidate_url = choose_candidate(self.last_probes)
        if candidate_url is None:
            logger.warning("failover wanted (%s) but no candidate", reason)
            return None
        new_epoch = self.epoch + 1
        record = {
            "reason": reason,
            "old_primary": self.primary_url,
            "new_primary": candidate_url,
            "epoch": new_epoch,
            "detected_at": detected_at,
            "fenced": [],
        }
        # Fence everything that is not the candidate, the (suspected
        # dead, possibly zombie) old primary first: after this no write
        # can be acknowledged on any epoch below new_epoch.
        others = [self.primary_url] if self.primary_url else []
        others += [
            url
            for url in self.nodes
            if url != candidate_url and url not in others
        ]
        for url in others:
            if self.nodes[url].fence(new_epoch):
                record["fenced"].append(url)
        record["fenced_at"] = self.clock()
        # Drain: the candidate keeps tailing until promoted; give it a
        # bounded window to reach the newest seq any reachable node
        # still holds (a dead primary's frames are gone with it — the
        # fence guarantees nothing NEW gets acknowledged, and whatever
        # was acknowledged before the crash either replicated already
        # or sits on a node we can still read).
        self._await_drain(candidate_url)
        record["drained_at"] = self.clock()
        if not self.nodes[candidate_url].promote(new_epoch):
            logger.error("promotion of %s failed", candidate_url)
            return None
        record["promoted_at"] = self.clock()
        for url in self.nodes:
            if url in (candidate_url,):
                continue
            payload = self.last_probes.get(url)
            if payload is not None and payload.get("role") == "follower":
                self.nodes[url].follow(candidate_url)
        record["repointed_at"] = self.clock()
        self.epoch = new_epoch
        self.primary_url = candidate_url
        self._primary_seen_at = self.clock()
        self.failovers_total += 1
        self.last_failover = record
        probe = get_probe()
        if probe is not None:
            probe.inc("fleet.failovers_total")
        logger.warning(
            "failover: %s -> %s at epoch %d (%s)",
            record["old_primary"],
            candidate_url,
            new_epoch,
            reason,
        )
        return record

    def _await_drain(self, candidate_url: str) -> None:
        """Wait (bounded) until the candidate stops gaining frames."""
        deadline = self.clock() + self.drain_s
        last_seq = -1
        while self.clock() < deadline:
            payload = self.nodes[candidate_url].probe()
            if payload is None:
                break
            seq = int(payload.get("seq") or 0)
            lag = payload.get("lag_seq")
            if seq == last_seq and (lag in (0, None)):
                break
            last_seq = seq
            time.sleep(_DRAIN_POLL_S)

    # -- driving -----------------------------------------------------------

    def step(self) -> Optional[dict]:
        """One probe plus at most one failover; the embeddable unit."""
        self.probe()
        return self.maybe_failover()

    def run(
        self,
        interval_s: float = 0.5,
        stop: Optional[threading.Event] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        """Loop :meth:`step` forever (the ``repro-dc fleet`` main loop)."""
        stop = stop or threading.Event()
        steps = 0
        while not stop.is_set():
            self.step()
            steps += 1
            if max_steps is not None and steps >= max_steps:
                return
            stop.wait(interval_s)

    def topology_payload(self) -> dict:
        """The coordinator's aggregated fleet view (``GET /topology``)."""
        return {
            "primary_url": self.primary_url,
            "epoch": self.epoch,
            "failovers": self.failovers_total,
            "nodes": [
                {"url": url, "probe": payload}
                for url, payload in sorted(self.last_probes.items())
            ],
        }


class CoordinatorServer:
    """A tiny HTTP face for a :class:`FleetMonitor`.

    Serves the aggregated ``GET /topology`` that
    :class:`~repro.fleet.client.FleetClient` discovers routing from,
    so clients need one well-known address instead of the node list.
    """

    def __init__(self, monitor: FleetMonitor, host: str = "127.0.0.1", port: int = 0):
        self.monitor = monitor
        handler = _make_coordinator_handler(monitor)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return (
            f"http://{self._httpd.server_address[0]}:"
            f"{self._httpd.server_port}"
        )

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="fleet-coordinator-http",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


def _make_coordinator_handler(monitor: FleetMonitor):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            logger.debug("%s %s", self.address_string(), format % args)

        def do_GET(self):  # noqa: N802 - stdlib casing
            if self.path.split("?")[0] not in ("/topology", "/status"):
                body = json.dumps({"error": "not_found"}).encode()
                self.send_response(404)
            else:
                body = json.dumps(monitor.topology_payload()).encode()
                self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler
