"""The fleet control plane: failure detection, failover, routing.

The replication layer (:mod:`repro.replication`) gives every node the
*mechanisms* of a serving fleet — WAL shipping, promotion, epoch
fencing — but leaves the *decisions* to an operator: who is primary,
when a primary is dead, which follower takes over, where clients should
send what.  This package is that decision layer:

- :class:`~repro.fleet.monitor.FleetMonitor` — the failure detector and
  failover orchestrator.  Polls every node's ``/topology``, declares
  the primary dead after a configurable suspicion window, and drives
  the fence → drain → promote → repoint sequence that moves primary
  duty without losing an acknowledged write (docs/fleet.md proves the
  ordering).  Embeddable (deterministic ``step()``), or run as the
  ``repro-dc fleet`` coordinator.
- :class:`~repro.fleet.monitor.HTTPNode` /
  :class:`~repro.fleet.monitor.NodeHandle` — how the monitor talks to
  nodes; tests substitute in-process handles for deterministic
  failover matrices.
- :class:`~repro.fleet.client.FleetClient` — the fleet-aware client:
  discovers the topology, sends writes to the primary (following 421
  redirects with a loop guard), spreads reads across followers while
  honoring read-your-writes ``min_seq`` tokens, and transparently
  retries in-flight requests across a failover.

Epoch fencing is the safety backbone throughout: every promotion mints
a higher commit epoch, every frame carries its writer's epoch, and
anything from a dead epoch is rejected wherever it shows up — see
docs/fleet.md for the lifecycle, the failover timeline, and the
split-brain guarantees and their limits.
"""

from repro.fleet.client import FleetClient, NoPrimaryError
from repro.fleet.monitor import (
    FleetMonitor,
    HTTPNode,
    NodeHandle,
    choose_candidate,
)

__all__ = [
    "FleetClient",
    "FleetMonitor",
    "HTTPNode",
    "NodeHandle",
    "NoPrimaryError",
    "choose_candidate",
]
