"""Pure-Python roaring bitmap.

Values are split into a 16-bit *high* part selecting a container and a
16-bit *low* part stored inside it.  Containers adapt to density:

- ``'a'`` array container — sorted ``array('H')`` of low parts, used while
  the chunk holds at most :data:`ARRAY_MAX` values;
- ``'b'`` bitmap container — a 65536-bit Python ``int``, used for dense
  chunks;
- ``'r'`` run container — list of ``(start, length)`` runs, produced by
  :meth:`RoaringBitmap.run_optimize` for highly sequential data.

Set algebra is performed container-by-container; run containers are
materialized to bitmap ints on demand, which keeps the operation matrix
small at the cost of some speed for run-heavy operands.  The class mirrors
the :class:`repro.bitmaps.intbitset.IntBitset` interface so the evidence
engine can switch backends via configuration.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator

from repro.observability.probe import get_probe

_KIND_NAMES = {"a": "array", "b": "bitmap", "r": "run"}

ARRAY_MAX = 4096
_CHUNK_BITS = 1 << 16
_CHUNK_MASK = _CHUNK_BITS - 1
_FULL_CHUNK = (1 << _CHUNK_BITS) - 1


def _array_to_bits(values: array) -> int:
    bits = 0
    for value in values:
        bits |= 1 << value
    return bits


def _bits_to_array(bits: int) -> array:
    out = array("H")
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def _runs_to_bits(runs: list) -> int:
    bits = 0
    for start, length in runs:
        bits |= ((1 << length) - 1) << start
    return bits


def _container_bits(container) -> int:
    """Materialize any container to a 65536-bit int."""
    kind, payload = container
    if kind == "b":
        return payload
    if kind == "a":
        return _array_to_bits(payload)
    return _runs_to_bits(payload)


def _container_from_bits(bits: int):
    """Pick the best array/bitmap representation for ``bits``."""
    cardinality = bits.bit_count()
    if cardinality == 0:
        return None
    if cardinality <= ARRAY_MAX:
        return ("a", _bits_to_array(bits))
    return ("b", bits)


def _container_len(container) -> int:
    kind, payload = container
    if kind == "a":
        return len(payload)
    if kind == "b":
        return payload.bit_count()
    return sum(length for _, length in payload)


def _container_iter(container) -> Iterator[int]:
    kind, payload = container
    if kind == "a":
        yield from payload
    elif kind == "b":
        bits = payload
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low
    else:
        for start, length in payload:
            yield from range(start, start + length)


def _container_contains(container, low: int) -> bool:
    kind, payload = container
    if kind == "a":
        pos = bisect_left(payload, low)
        return pos < len(payload) and payload[pos] == low
    if kind == "b":
        return (payload >> low) & 1 == 1
    return any(start <= low < start + length for start, length in payload)


class RoaringBitmap:
    """A compressed set of non-negative integers with adaptive containers."""

    __slots__ = ("_containers",)

    def __init__(self, _containers=None):
        # Mapping: high 16 bits -> container tuple.  Never exposes empties.
        self._containers = _containers if _containers is not None else {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_iterable(cls, items: Iterable[int]) -> "RoaringBitmap":
        bitmap = cls()
        for item in items:
            bitmap.add(item)
        return bitmap

    @classmethod
    def full(cls, n: int) -> "RoaringBitmap":
        """Return the bitmap {0, 1, ..., n-1}."""
        if n < 0:
            raise ValueError("n must be non-negative")
        containers = {}
        high = 0
        remaining = n
        while remaining > 0:
            span = min(remaining, _CHUNK_BITS)
            bits = (1 << span) - 1
            container = _container_from_bits(bits)
            if container is not None:
                containers[high] = container
            remaining -= span
            high += 1
        return cls(containers)

    def copy(self) -> "RoaringBitmap":
        copied = {}
        for high, (kind, payload) in self._containers.items():
            if kind == "a":
                copied[high] = ("a", array("H", payload))
            elif kind == "r":
                copied[high] = ("r", list(payload))
            else:
                copied[high] = ("b", payload)
        return RoaringBitmap(copied)

    # -- element operations ------------------------------------------------

    def add(self, item: int) -> None:
        if item < 0:
            raise ValueError("RoaringBitmap holds non-negative ints only")
        high, low = item >> 16, item & _CHUNK_MASK
        container = self._containers.get(high)
        if container is None:
            self._containers[high] = ("a", array("H", [low]))
            return
        kind, payload = container
        if kind == "a":
            pos = bisect_left(payload, low)
            if pos < len(payload) and payload[pos] == low:
                return
            if len(payload) >= ARRAY_MAX:
                self._containers[high] = ("b", _array_to_bits(payload) | (1 << low))
            else:
                insort(payload, low)
        elif kind == "b":
            self._containers[high] = ("b", payload | (1 << low))
        else:
            bits = _runs_to_bits(payload) | (1 << low)
            self._containers[high] = _container_from_bits(bits)

    def discard(self, item: int) -> None:
        if item < 0:
            return
        high, low = item >> 16, item & _CHUNK_MASK
        container = self._containers.get(high)
        if container is None:
            return
        kind, payload = container
        if kind == "a":
            pos = bisect_left(payload, low)
            if pos < len(payload) and payload[pos] == low:
                del payload[pos]
                if not payload:
                    del self._containers[high]
        else:
            bits = _container_bits(container) & ~(1 << low)
            replacement = _container_from_bits(bits)
            if replacement is None:
                del self._containers[high]
            else:
                self._containers[high] = replacement

    def __contains__(self, item: int) -> bool:
        if item < 0:
            return False
        container = self._containers.get(item >> 16)
        if container is None:
            return False
        return _container_contains(container, item & _CHUNK_MASK)

    # -- set algebra ---------------------------------------------------------

    def _binary(self, other: "RoaringBitmap", op: str) -> "RoaringBitmap":
        probe = get_probe()
        if probe is not None:
            probe.inc(f"bitmap.{op}_ops")
        result = {}
        if op == "and":
            highs = self._containers.keys() & other._containers.keys()
        elif op == "andnot":
            highs = self._containers.keys()
        else:
            highs = self._containers.keys() | other._containers.keys()
        for high in highs:
            left = self._containers.get(high)
            right = other._containers.get(high)
            left_bits = _container_bits(left) if left is not None else 0
            right_bits = _container_bits(right) if right is not None else 0
            if op == "and":
                bits = left_bits & right_bits
            elif op == "or":
                bits = left_bits | right_bits
            elif op == "xor":
                bits = left_bits ^ right_bits
            else:
                bits = left_bits & ~right_bits
            container = _container_from_bits(bits)
            if container is not None:
                result[high] = container
        return RoaringBitmap(result)

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "and")

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "or")

    def __xor__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "xor")

    def __sub__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self._binary(other, "andnot")

    def __iand__(self, other):
        self._containers = (self & other)._containers
        return self

    def __ior__(self, other):
        self._containers = (self | other)._containers
        return self

    def __ixor__(self, other):
        self._containers = (self ^ other)._containers
        return self

    def __isub__(self, other):
        self._containers = (self - other)._containers
        return self

    def intersects(self, other: "RoaringBitmap") -> bool:
        for high in self._containers.keys() & other._containers.keys():
            if _container_bits(self._containers[high]) & _container_bits(
                other._containers[high]
            ):
                return True
        return False

    def issubset(self, other: "RoaringBitmap") -> bool:
        for high, container in self._containers.items():
            other_container = other._containers.get(high)
            if other_container is None:
                return False
            bits = _container_bits(container)
            if bits & ~_container_bits(other_container):
                return False
        return True

    def issuperset(self, other: "RoaringBitmap") -> bool:
        return other.issubset(self)

    # -- inspection ----------------------------------------------------------

    def container_stats(self) -> Dict[str, int]:
        """Container-type mix: ``{"array": n, "bitmap": n, "run": n}``.

        The mix is the roaring format's central adaptive decision; the
        observability layer exports it as gauges so compression behaviour
        across workloads stays visible.
        """
        stats = {"array": 0, "bitmap": 0, "run": 0}
        for kind, _ in self._containers.values():
            stats[_KIND_NAMES[kind]] += 1
        return stats

    def __len__(self) -> int:
        return sum(_container_len(c) for c in self._containers.values())

    def __bool__(self) -> bool:
        return bool(self._containers)

    def __iter__(self) -> Iterator[int]:
        for high in sorted(self._containers):
            base = high << 16
            for low in _container_iter(self._containers[high]):
                yield base + low

    def min(self) -> int:
        if not self._containers:
            raise ValueError("min() of empty bitmap")
        high = min(self._containers)
        return (high << 16) + next(_container_iter(self._containers[high]))

    def max(self) -> int:
        if not self._containers:
            raise ValueError("max() of empty bitmap")
        high = max(self._containers)
        container = self._containers[high]
        kind, payload = container
        if kind == "a":
            return (high << 16) + payload[-1]
        if kind == "b":
            return (high << 16) + payload.bit_length() - 1
        start, length = payload[-1]
        return (high << 16) + start + length - 1

    def run_optimize(self) -> None:
        """Convert containers dominated by long runs to run containers."""
        for high, container in list(self._containers.items()):
            bits = _container_bits(container)
            runs = []
            position = 0
            while bits:
                trailing_zeros = (bits & -bits).bit_length() - 1
                bits >>= trailing_zeros
                position += trailing_zeros
                run_length = ((bits + 1) & -(bits + 1)).bit_length() - 1
                runs.append((position, run_length))
                bits >>= run_length
                position += run_length
            # A run costs ~2 words; prefer runs when clearly cheaper than
            # both the array and the bitmap representation.
            cardinality = _container_len(container)
            if runs and 2 * len(runs) < min(cardinality, ARRAY_MAX):
                self._containers[high] = ("r", runs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        if self._containers.keys() != other._containers.keys():
            return False
        return all(
            _container_bits(self._containers[high])
            == _container_bits(other._containers[high])
            for high in self._containers
        )

    def __hash__(self) -> int:
        return hash(
            tuple(
                (high, _container_bits(self._containers[high]))
                for high in sorted(self._containers)
            )
        )

    def __repr__(self) -> str:
        size = len(self)
        if size > 12:
            head = ", ".join(str(v) for _, v in zip(range(12), iter(self)))
            return f"RoaringBitmap({{{head}, ...}} len={size})"
        return f"RoaringBitmap({{{', '.join(map(str, self))}}})"
