"""Bitmap substrate used for rid (row id) sets and column-index entries.

The paper stores evidence-context rid sets and index entries as compressed
bitmaps and performs the reconciliation of Algorithm 1 with logical
operations on them (Section V-D).  This package provides two interchangeable
backends behind one protocol:

``IntBitset``
    A thin, fast wrapper around an arbitrary-precision Python ``int``.
    CPython evaluates ``&``, ``|``, ``^`` and ``bit_count`` over machine
    words in C, which makes this the default backend.

``RoaringBitmap``
    A pure-Python roaring bitmap (sorted array / bitmap / run containers,
    16-bit chunking) mirroring the compressed-bitmap design the paper cites
    [13].  Used by the ablation benchmarks to quantify the backend choice.

Use :func:`get_backend` to resolve a backend class by name.
"""

from repro.bitmaps.intbitset import IntBitset
from repro.bitmaps.roaring import RoaringBitmap

_BACKENDS = {
    "int": IntBitset,
    "roaring": RoaringBitmap,
}


def get_backend(name):
    """Return the bitmap class registered under ``name``.

    :param name: ``"int"`` or ``"roaring"``.
    :raises KeyError: for unknown backend names, listing the valid ones.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown bitmap backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None


__all__ = ["IntBitset", "RoaringBitmap", "get_backend"]
